"""Fast FHE backends: batched bookkeeping over the same packed semantics.

The reference :class:`~repro.fhe.context.FheContext` spends most of its
wall-clock on *bookkeeping*, not bits: every operation allocates a DAG
node, a frozen noise dataclass, and a validated ciphertext wrapper.
Those structures buy analyses (work/span scheduling, noninterference
traces) that production serving never reads — the serve pipeline consumes
only per-phase operation counts and the final bits.

:class:`VectorFheContext` is the ``"vector"`` backend: bit-identical
results and noise-*failure*-identical semantics with batched
bookkeeping —

* a :class:`~repro.fhe.tracker.CountingTracker` (per-phase counts and
  exact multiplicative depth, no per-op node objects),
* flyweight noise states — slack is accounted in integer thousandths of
  a level, and each distinct ``(level, slack)`` pair is materialized
  once and shared by every ciphertext that reaches it (the capacity
  check runs when a state is first minted, so cache hits skip it),
* allocation-light ciphertext wrapping (:meth:`Ciphertext._make`), and
* no per-slot Python loops anywhere on the hot path (rotation is a
  two-slice concatenate; decryption returns the numpy payload).

:class:`PlaintextFheContext` is the ``"plaintext"`` debug backend: the
same fast ops with the noise budget lifted entirely, so circuits deeper
than the modulus chain still execute (for debugging logic independently
of parameter selection).  Key checks and operation counts are kept.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import (
    KeyMismatchError,
    NoiseBudgetExceededError,
    SlotCapacityError,
)
from repro.fhe.backend import fold_balanced, register_backend_if_missing
from repro.fhe.ciphertext import Ciphertext, PlainVector
from repro.fhe.context import FheContext
from repro.fhe.keys import PublicKey
from repro.fhe.noise import (
    ADD_SLACK,
    CONST_ADD_SLACK,
    CONST_MULT_SLACK,
    NoiseModel,
    NoiseState,
    ROTATE_SLACK,
)
from repro.fhe.params import EncryptionParams
from repro.fhe.tracker import CountingTracker, OpKind, OpTracker

#: Slack increments in integer thousandths of a level.  These mirror the
#: float constants of :mod:`repro.fhe.noise` exactly (every float there
#: is a multiple of 0.001), which is what makes integer accounting agree
#: with the reference backend's float accounting at every threshold.
_ADD_MILLIS = round(ADD_SLACK * 1000)
_CONST_ADD_MILLIS = round(CONST_ADD_SLACK * 1000)
_CONST_MULT_MILLIS = round(CONST_MULT_SLACK * 1000)
_ROTATE_MILLIS = round(ROTATE_SLACK * 1000)
_BOOTSTRAP_MILLIS = 100  # NoiseState(level=0, slack=0.1)


@dataclass(frozen=True)
class _FastNoise(NoiseState):
    """A :class:`NoiseState` carrying its slack in integer thousandths.

    ``slack`` stays populated (``millis / 1000``) so every reference
    consumer — ``describe``, ``check_decryptable``, depth headroom —
    works unchanged; the integer twin makes combination exact and cheap.
    """

    millis: int = 0

    @property
    def effective_depth(self) -> int:
        return self.level + self.millis // 1000


class VectorFheContext(FheContext):
    """The ``"vector"`` backend: fast ops, aggregate bookkeeping."""

    backend_name = "vector"
    noise_fidelity = "aggregate"

    def __init__(
        self,
        params: Optional[EncryptionParams] = None,
        tracker: Optional[OpTracker] = None,
        backend: Optional[str] = None,
    ):
        super().__init__(params, tracker, backend)
        self._capacity = self.noise_model.capacity
        self._noise_cache: Dict[Tuple[int, int], _FastNoise] = {}
        self._ones_cache: Dict[int, PlainVector] = {}

    def _make_tracker(self) -> OpTracker:
        return CountingTracker()

    # ------------------------------------------------------------------
    # Flyweight noise states
    # ------------------------------------------------------------------

    @staticmethod
    def _millis(state: NoiseState) -> int:
        if type(state) is _FastNoise:
            return state.millis
        return int(round(state.slack * 1000))

    def _state(self, level: int, millis: int, op_name: str) -> _FastNoise:
        state = self._noise_cache.get((level, millis))
        if state is None:
            if level + millis // 1000 > self._capacity:
                raise NoiseBudgetExceededError(
                    f"homomorphic {op_name} would reach effective depth "
                    f"{level + millis // 1000}, exceeding the "
                    f"modulus-chain capacity of {self._capacity} levels "
                    f"({self.params.describe()}); increase `bits` or "
                    f"reduce the circuit's multiplicative depth"
                )
            state = _FastNoise(
                level=level, slack=millis / 1000.0, millis=millis
            )
            self._noise_cache[(level, millis)] = state
        return state

    def _after2(
        self,
        a: NoiseState,
        b: NoiseState,
        extra_level: int,
        extra_millis: int,
        op_name: str,
    ) -> _FastNoise:
        level = a.level if a.level >= b.level else b.level
        ma = self._millis(a)
        mb = self._millis(b)
        millis = ma if ma >= mb else mb
        return self._state(level + extra_level, millis + extra_millis, op_name)

    def _after1(
        self, a: NoiseState, extra_millis: int, op_name: str
    ) -> _FastNoise:
        return self._state(
            a.level, self._millis(a) + extra_millis, op_name
        )

    # ------------------------------------------------------------------
    # Fast wrapping (also picked up by inherited truncate/decrypt)
    # ------------------------------------------------------------------

    def _wrap(self, data: np.ndarray, key_id, noise, node_id) -> Ciphertext:
        return Ciphertext._make(data, data.size, key_id, noise, node_id)

    def adopt(self, ct: Ciphertext) -> Ciphertext:
        """Re-register a foreign ciphertext (see the reference docstring).

        The payload is shared, not copied: no operation ever mutates a
        ciphertext's slots (every op allocates its result), so the
        adopted view is as immutable as the original.  The serve path
        adopts the whole cached model once per batch, which makes this
        the difference between O(model) copying and O(1) re-tagging.
        """
        self._check_width(ct._length)
        node_id = self.tracker.record(OpKind.LOAD)
        return Ciphertext._make(
            ct._slots[: ct._length], ct._length, ct._key_id, ct._noise, node_id
        )

    def adopt_many(self, vectors):
        """Bulk :meth:`adopt`: one tracker call for a whole model load.

        The serve path re-registers ~a hundred cached model planes into
        a fresh per-batch context; one :meth:`adopt` at a time pays a
        Python round-trip per ciphertext for bookkeeping this backend
        can predict outright — a ``CountingTracker``'s node ids are
        depths, and a ``LOAD`` leaf's depth is always 0.  Observable
        semantics match ``[adopt(v) for v in vectors]`` exactly: the
        same ``LOAD`` count deltas (on the error path too — loads up to
        the offending ciphertext land, then the same width refusal),
        the same node ids, the same shared-payload immutability.  A
        plane whose wrapper already carries node id 0 and an
        exact-length payload needs no re-wrap at all and is returned as
        is.  Plain vectors pass through untouched, mirroring the serve
        loop's treatment; a context fitted with a foreign tracker falls
        back to per-ciphertext adoption.
        """
        if type(self.tracker) is not CountingTracker:
            return [
                self.adopt(v) if isinstance(v, Ciphertext) else v
                for v in vectors
            ]
        supports = self.params.supports_width
        make = Ciphertext._make
        record_fused = self.tracker.record_fused
        out = []
        append = out.append
        loads = 0
        for v in vectors:
            if not isinstance(v, Ciphertext):
                append(v)
                continue
            length = v._length
            if not supports(length):
                if loads:
                    record_fused({OpKind.LOAD: loads})
                self._check_width(length)  # raises the canonical error
            loads += 1
            slots = v._slots
            if v._node_id == 0 and slots.shape[0] == length:
                append(v)
            else:
                append(make(slots[:length], length, v._key_id, v._noise, 0))
        if loads:
            record_fused({OpKind.LOAD: loads})
        return out

    def _check_pair(self, a: Ciphertext, b: Ciphertext) -> None:
        if a._key_id != b._key_id or a._length != b._length:
            self._check_compatible(a, b)  # raises with the full message

    # ------------------------------------------------------------------
    # Primitive homomorphic operations (fast bodies, same semantics)
    # ------------------------------------------------------------------

    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        self._check_pair(a, b)
        noise = self._after2(a._noise, b._noise, 0, _ADD_MILLIS, "add")
        data = np.bitwise_xor(a._slots[: a._length], b._slots[: b._length])
        node_id = self.tracker.record(OpKind.ADD, (a._node_id, b._node_id))
        return Ciphertext._make(data, a._length, a._key_id, noise, node_id)

    def const_add(self, a: Ciphertext, plain: PlainVector) -> Ciphertext:
        if a._length != plain.length:
            self._check_plain_length(a, plain)
        noise = self._after1(a._noise, _CONST_ADD_MILLIS, "constant add")
        data = np.bitwise_xor(a._slots[: a._length], plain._slots)
        node_id = self.tracker.record(OpKind.CONST_ADD, (a._node_id,))
        return Ciphertext._make(data, a._length, a._key_id, noise, node_id)

    def multiply(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        self._check_pair(a, b)
        noise = self._after2(a._noise, b._noise, 1, 0, "multiply")
        data = np.bitwise_and(a._slots[: a._length], b._slots[: b._length])
        node_id = self.tracker.record(
            OpKind.MULTIPLY, (a._node_id, b._node_id)
        )
        return Ciphertext._make(data, a._length, a._key_id, noise, node_id)

    def const_mult(self, a: Ciphertext, plain: PlainVector) -> Ciphertext:
        if a._length != plain.length:
            self._check_plain_length(a, plain)
        noise = self._after1(a._noise, _CONST_MULT_MILLIS, "constant multiply")
        data = np.bitwise_and(a._slots[: a._length], plain._slots)
        node_id = self.tracker.record(OpKind.CONST_MULT, (a._node_id,))
        return Ciphertext._make(data, a._length, a._key_id, noise, node_id)

    def rotate(self, a: Ciphertext, amount: int) -> Ciphertext:
        if amount == 0:
            return a
        noise = self._after1(a._noise, _ROTATE_MILLIS, "rotate")
        n = a._length
        k = amount % n
        arr = a._slots[:n]
        data = np.concatenate((arr[k:], arr[:k]))
        node_id = self.tracker.record(OpKind.ROTATE, (a._node_id,))
        return Ciphertext._make(data, n, a._key_id, noise, node_id)

    def bootstrap(self, a: Ciphertext) -> Ciphertext:
        self.noise_model.check_decryptable(a._noise)
        data = a._slots[: a._length].copy()
        node_id = self.tracker.record(OpKind.BOOTSTRAP, (a._node_id,))
        return Ciphertext._make(
            data,
            a._length,
            a._key_id,
            self._state(0, _BOOTSTRAP_MILLIS, "bootstrap"),
            node_id,
        )

    def cyclic_extend(self, a: Ciphertext, length: int) -> Ciphertext:
        if length == a._length:
            return a
        if length < a._length:
            raise SlotCapacityError(
                f"cyclic_extend target {length} is shorter than the vector "
                f"({a._length}); use truncate instead"
            )
        self._check_width(length)
        reps = -(-length // a._length)
        data = np.tile(a._slots[: a._length], reps)[:length]
        noise = self._after1(a._noise, _ROTATE_MILLIS, "rotate")
        node_id = self.tracker.record(OpKind.ROTATE, (a._node_id,))
        return Ciphertext._make(data, length, a._key_id, noise, node_id)

    def ones(self, length: int) -> PlainVector:
        cached = self._ones_cache.get(length)
        if cached is None:
            cached = super().ones(length)
            self._ones_cache[length] = cached
        return cached

    # ------------------------------------------------------------------
    # Fused kernels (the optional ``fused_ops`` capability)
    # ------------------------------------------------------------------

    @property
    def fused_ops(self):
        """The fused-kernel capability (see :mod:`repro.fhe.backend`).

        Available only with this backend's native
        :class:`~repro.fhe.tracker.CountingTracker`: fused kernels
        record their constituent operations in bulk, which a DAG
        tracker cannot represent — a caller-supplied full tracker gets
        the (bit-identical) de-fused execution path instead.
        """
        if type(self.tracker) is not CountingTracker:
            return None
        ops = self.__dict__.get("_fused_ops")
        if ops is None:
            ops = self.__dict__["_fused_ops"] = VectorFusedOps(self)
        return ops

    @property
    def megakernel_ops(self):
        """The whole-tape megakernel capability (see :mod:`repro.fhe.backend`).

        Gated like :attr:`fused_ops`, and for the same reason: the
        megakernel records an entire tape's bookkeeping in one
        :meth:`~repro.fhe.tracker.CountingTracker.record_fused` call,
        which a DAG tracker cannot represent — a caller-supplied full
        tracker gets the (bit-identical) tape loop instead.
        """
        if type(self.tracker) is not CountingTracker:
            return None
        ops = self.__dict__.get("_megakernel_ops")
        if ops is None:
            ops = self.__dict__["_megakernel_ops"] = VectorMegakernelOps(self)
        return ops


class VectorFusedOps:
    """Fused tape kernels for the vector backend.

    Each kernel executes a whole XOR-accumulation group — the tape's
    ``rotate-mask-xor`` / ``mask-mult-accumulate`` instructions — as a
    handful of batched numpy operations plus *one* bookkeeping pass,
    instead of one full simulated op per term.  Observable semantics are
    byte-identical to the de-fused sequence: the same primitive-op
    counts land in the tracker (via
    :meth:`~repro.fhe.tracker.CountingTracker.record_fused`), the noise
    state is folded through the exact same flyweight combinators in the
    exact same order (so a budget overflow raises at the identical
    term), and key mismatches raise the same errors term-by-term.
    """

    __slots__ = ("_ctx",)

    def __init__(self, ctx: "VectorFheContext"):
        self._ctx = ctx

    def execute(self, spec, regs) -> Ciphertext:
        """Dispatch one fused instruction (spec from the tape compiler)."""
        if spec.kind == "rmx":
            return self.rotate_mask_xor(spec, regs)
        return self.mask_mult_accumulate(spec, regs)

    def _fold_add(self, states):
        """Balanced XOR fold over noise states (the canonical shape)."""
        ctx = self._ctx
        return fold_balanced(
            states,
            lambda a, b: ctx._after2(a, b, 0, _ADD_MILLIS, "add"),
        )

    def _fold_keys(self, sources):
        """Replay the de-fused XOR fold's compatibility checks.

        Each term value inherits its source's key (rotation and the
        per-term multiply — whose operand is already checked against
        its own source — never change it), so folding the source
        ciphertexts through the same balanced shape raises the same
        key-mismatch error, on the same pair, as the de-fused
        ``ctx.add`` fold would."""
        ctx = self._ctx

        def check(a, b):
            if a._key_id != b._key_id or a._length != b._length:
                ctx._check_compatible(a, b)  # raises with the full message
            return a

        return fold_balanced(sources, check)._key_id

    def rotate_mask_xor(self, spec, regs) -> Ciphertext:
        """``XOR_k rot(src, a_k) & mask_k`` over one source, one pass.

        The rotations become a single fancy-indexed gather over a
        precomputed index matrix, the masks one stacked AND, the
        accumulation one ``xor.reduce`` — k simulated operations in
        three numpy calls.
        """
        ctx = self._ctx
        src = regs[spec.terms[0][1]]
        n = src._length
        idx, maskmat = spec.gather_arrays(n)
        gathered = src._slots[:n][idx]
        if maskmat is not None:
            np.bitwise_and(gathered, maskmat, out=gathered)
        data = np.bitwise_xor.reduce(gathered, axis=0)

        base = src._noise
        states = []
        for amount, _, operand in spec.terms:
            state = base
            if amount:
                state = ctx._after1(state, _ROTATE_MILLIS, "rotate")
            if operand is not None:
                state = ctx._after1(
                    state, _CONST_MULT_MILLIS, "constant multiply"
                )
            states.append(state)
        noise = self._fold_add(states)
        node_id = ctx.tracker.record_fused(spec.op_counts, src._node_id)
        return Ciphertext._make(data, n, src._key_id, noise, node_id)

    def mask_mult_accumulate(self, spec, regs) -> Ciphertext:
        """``XOR_k rot(src_k, a_k) [& operand_k]`` over many sources.

        The Halevi-Shoup combine: per term one slice-rotate and one AND
        (ciphertext diagonal or plaintext mask), accumulated in place —
        with a single bulk bookkeeping pass for the whole group.
        """
        ctx = self._ctx
        n = spec.width
        acc = None
        states = []
        depth = 0
        sources = []
        for amount, src_slot, operand in spec.terms:
            src = regs[src_slot]
            sources.append(src)
            arr = src._slots[:n]
            if amount:
                arr = np.concatenate((arr[amount:], arr[:amount]))
            state = src._noise
            term_id = src._node_id
            if amount:
                state = ctx._after1(state, _ROTATE_MILLIS, "rotate")
            if operand is None:
                data = arr if amount else None
            elif isinstance(operand, int):
                other = regs[operand]
                if other._key_id != src._key_id or other._length != n:
                    ctx._check_compatible(src, other)  # raises
                data = np.bitwise_and(arr, other._slots[:n])
                state = ctx._after2(state, other._noise, 1, 0, "multiply")
                other_id = other._node_id
                term_id = (term_id if term_id >= other_id else other_id) + 1
            else:
                data = np.bitwise_and(arr, operand._slots)
                state = ctx._after1(
                    state, _CONST_MULT_MILLIS, "constant multiply"
                )
            states.append(state)
            if term_id > depth:
                depth = term_id
            if data is None:  # bare unrotated term: arr is a view
                data = arr
                if acc is None:
                    acc = arr.copy()
                    continue
            if acc is None:
                acc = data
            else:
                np.bitwise_xor(acc, data, out=acc)
        key_id = self._fold_keys(sources)
        noise = self._fold_add(states)
        node_id = ctx.tracker.record_fused(spec.op_counts, depth)
        return Ciphertext._make(acc, n, key_id, noise, node_id)


class VectorMegakernelOps:
    """Whole-tape megakernel support for the vector backend.

    The megakernel (:mod:`repro.ir.megakernel`) needs exactly one thing
    from the backend it cannot get through the arithmetic protocol: a
    **scratch context** — same backend class, same parameters, fresh
    tracker — on which it runs the tape loop once per input signature
    to capture op counts, depth, and output noise/key metadata.  The
    capture is faithful precisely because the scratch context *is* this
    backend: the same flyweight noise combinators, the same capacity
    checks, the same fused kernels.
    """

    __slots__ = ("_ctx",)

    def __init__(self, ctx: "VectorFheContext"):
        self._ctx = ctx

    def scratch_context(self) -> "VectorFheContext":
        """A fresh same-backend, same-params context for bookkeeping capture."""
        return type(self._ctx)(self._ctx.params)


class _UncheckedNoiseModel(NoiseModel):
    """A noise model whose budget can never be exhausted (debugging)."""

    #: Effectively infinite depth capacity; finite so headroom arithmetic
    #: stays in plain ints.
    UNBOUNDED = 1 << 30

    def __init__(self, params: EncryptionParams):
        super().__init__(params)
        self._capacity = self.UNBOUNDED


class PlaintextFheContext(VectorFheContext):
    """The ``"plaintext"`` backend: fast ops with the noise budget lifted.

    Levels and slack are still *tracked* (so noise introspection keeps
    working) but no operation, decryption, or bootstrap ever raises
    :class:`~repro.errors.NoiseBudgetExceededError` — the point of the
    backend is running circuits the parameters could not support, while
    debugging compiler or runtime logic.  Key identity is still checked:
    decrypting with the wrong key stays an error even in debug runs.
    """

    backend_name = "plaintext"
    noise_fidelity = "none"
    #: The debug backend runs tapes de-fused (per-op, like reference):
    #: when chasing a miscompile you want one simulated op per primitive,
    #: not batched kernels hiding the step that went wrong.  The same
    #: holds a fortiori for the whole-tape megakernel.
    fused_ops = None
    megakernel_ops = None

    def __init__(
        self,
        params: Optional[EncryptionParams] = None,
        tracker: Optional[OpTracker] = None,
        backend: Optional[str] = None,
    ):
        super().__init__(params, tracker, backend)
        self.noise_model = _UncheckedNoiseModel(self.params)
        self._capacity = self.noise_model.capacity


def _register_builtins() -> None:
    """Idempotent registration hook (import time + on-demand restore)."""
    register_backend_if_missing(
        "vector",
        VectorFheContext,
        description="fast vectorized simulator: counts-only tracking, "
        "flyweight noise states, identical bits and noise failures",
    )
    register_backend_if_missing(
        "plaintext",
        PlaintextFheContext,
        description="debug backend: noise budget lifted, circuits deeper "
        "than the modulus chain still run",
    )


_register_builtins()
