"""Noise-budget accounting for the BGV-style simulator.

BGV is a *leveled* scheme: the modulus chain is consumed as the circuit
multiplies.  Every ciphertext multiplication performs a modulus switch that
eats one level; additions, constant operations and rotations are almost free
but not quite — key switching after a rotation and the additive noise of
XORs nibble at the budget too.  When the consumed depth reaches the
capacity implied by the parameters, decryption fails.

The simulator models this with a :class:`NoiseState` per ciphertext:

* ``level`` — integer count of multiplicative levels consumed,
* ``slack`` — fractional budget consumed by cheap operations; every full
  unit of slack costs one additional level.

The *effective depth* of a ciphertext is ``level + floor(slack)``.  The
:class:`NoiseModel` combines states for each operation kind and raises
:class:`~repro.errors.NoiseBudgetExceededError` the moment an operation
would push the effective depth past the capacity — the deterministic
analogue of a decryption failure in real BGV.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import NoiseBudgetExceededError
from repro.fhe.params import EncryptionParams

#: Fractional level consumed by a homomorphic addition (XOR).
ADD_SLACK = 0.002

#: Fractional level consumed by adding a plaintext constant.
CONST_ADD_SLACK = 0.001

#: Fractional level consumed by multiplying with a plaintext constant
#: (no relinearization, so far cheaper than a ciphertext multiply).
CONST_MULT_SLACK = 0.05

#: Fractional level consumed by the key switch that follows a rotation.
ROTATE_SLACK = 0.01


@dataclass(frozen=True)
class NoiseState:
    """Noise bookkeeping attached to every ciphertext."""

    level: int = 0
    slack: float = 0.0

    @property
    def effective_depth(self) -> int:
        """Multiplicative levels consumed, counting accumulated slack."""
        return self.level + int(math.floor(self.slack + 1e-9))

    def describe(self) -> str:
        return f"level={self.level} slack={self.slack:.3f}"


class NoiseModel:
    """Combines :class:`NoiseState` values according to BGV-style rules."""

    def __init__(self, params: EncryptionParams):
        self._params = params
        self._capacity = params.depth_capacity

    @property
    def capacity(self) -> int:
        """Maximum effective depth the modulus chain supports."""
        return self._capacity

    # ------------------------------------------------------------------
    # State constructors / combinators
    # ------------------------------------------------------------------

    def fresh(self) -> NoiseState:
        """Noise of a freshly encrypted ciphertext."""
        return NoiseState(level=0, slack=0.0)

    def after_add(self, a: NoiseState, b: NoiseState) -> NoiseState:
        state = NoiseState(
            level=max(a.level, b.level),
            slack=max(a.slack, b.slack) + ADD_SLACK,
        )
        return self._check(state, "add")

    def after_const_add(self, a: NoiseState) -> NoiseState:
        state = NoiseState(level=a.level, slack=a.slack + CONST_ADD_SLACK)
        return self._check(state, "constant add")

    def after_const_mult(self, a: NoiseState) -> NoiseState:
        state = NoiseState(level=a.level, slack=a.slack + CONST_MULT_SLACK)
        return self._check(state, "constant multiply")

    def after_rotate(self, a: NoiseState) -> NoiseState:
        state = NoiseState(level=a.level, slack=a.slack + ROTATE_SLACK)
        return self._check(state, "rotate")

    def after_multiply(self, a: NoiseState, b: NoiseState) -> NoiseState:
        # A ciphertext-ciphertext multiply consumes one level of the chain
        # (relinearize + modulus switch); the deeper operand dominates.
        state = NoiseState(
            level=max(a.level, b.level) + 1,
            slack=max(a.slack, b.slack),
        )
        return self._check(state, "multiply")

    # ------------------------------------------------------------------

    def check_decryptable(self, state: NoiseState) -> None:
        """Raise if a ciphertext in this state would fail to decrypt."""
        if state.effective_depth > self._capacity:
            raise NoiseBudgetExceededError(
                f"ciphertext at effective depth {state.effective_depth} "
                f"exceeds the modulus-chain capacity of {self._capacity} "
                f"levels ({self._params.describe()})"
            )

    def _check(self, state: NoiseState, op_name: str) -> NoiseState:
        if state.effective_depth > self._capacity:
            raise NoiseBudgetExceededError(
                f"homomorphic {op_name} would reach effective depth "
                f"{state.effective_depth}, exceeding the modulus-chain "
                f"capacity of {self._capacity} levels "
                f"({self._params.describe()}); increase `bits` or reduce "
                f"the circuit's multiplicative depth"
            )
        return state
