"""Key material for the simulated FHE scheme.

Keys carry no actual lattice material — the simulator's ciphertexts keep
their payload internally — but the *discipline* of asymmetric keys is
enforced: every ciphertext records the identifier of the public key that
encrypted it, homomorphic operations refuse to combine ciphertexts under
different keys, and decryption demands the matching secret key.  This is
what lets the test suite exercise the protocol errors of Section 7 of the
paper (e.g. Sally must not be able to decrypt).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

_KEY_COUNTER = itertools.count(1)


def _next_key_id() -> int:
    return next(_KEY_COUNTER)


@dataclass(frozen=True)
class PublicKey:
    """Public encryption key.  Safe to hand to any party."""

    key_id: int
    security: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PublicKey(id={self.key_id}, security={self.security})"


@dataclass(frozen=True)
class SecretKey:
    """Secret decryption key.  Only the key owner should hold this."""

    key_id: int
    security: int

    def matches(self, public: PublicKey) -> bool:
        """Whether this secret key decrypts ciphertexts under ``public``."""
        return self.key_id == public.key_id

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SecretKey(id={self.key_id}, <redacted>)"


@dataclass(frozen=True)
class KeyPair:
    """A matched public/secret key pair produced by key generation."""

    public: PublicKey
    secret: SecretKey = field(repr=False)

    @staticmethod
    def generate(security: int) -> "KeyPair":
        """Generate a fresh key pair at the given security level."""
        key_id = _next_key_id()
        return KeyPair(
            public=PublicKey(key_id=key_id, security=security),
            secret=SecretKey(key_id=key_id, security=security),
        )

    @property
    def key_id(self) -> int:
        return self.public.key_id
