"""Bit-slicing helpers: the "transposed" fixed-point representation.

Section 4.1.2 of the paper: a vector of ``k`` fixed-point values with
precision ``p`` is stored as ``p`` bitvectors of length ``k``, where
bitvector ``i`` holds the ``i``-th bit of every element.  We store planes
most-significant-bit first, so lexicographic comparison of the planes is
numeric comparison of the (unsigned) values — exactly what SecComp needs.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import DomainError


def to_bitplanes(values: Sequence[int], precision: int) -> np.ndarray:
    """Transpose unsigned integers into MSB-first bit planes.

    Returns a ``(precision, k)`` uint8 array whose row ``i`` is the
    ``(precision - 1 - i)``-th bit of each value: row 0 is the MSB plane.

    Raises :class:`~repro.errors.DomainError` if any value does not fit in
    ``precision`` unsigned bits.
    """
    if precision <= 0:
        raise DomainError(f"precision must be positive, got {precision}")
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim != 1 or arr.size == 0:
        raise DomainError("expected a non-empty 1-D integer vector")
    if np.any(arr < 0):
        raise DomainError("bit-sliced values must be unsigned")
    limit = 1 << precision
    if np.any(arr >= limit):
        too_big = int(arr[arr >= limit][0])
        raise DomainError(
            f"value {too_big} does not fit in {precision} unsigned bits"
        )
    planes = np.empty((precision, arr.size), dtype=np.uint8)
    for i in range(precision):
        shift = precision - 1 - i
        planes[i] = (arr >> shift) & 1
    return planes


def from_bitplanes(planes: np.ndarray) -> List[int]:
    """Inverse of :func:`to_bitplanes`: reassemble the integer vector."""
    arr = np.asarray(planes, dtype=np.int64)
    if arr.ndim != 2:
        raise DomainError(f"expected a 2-D plane array, got shape {arr.shape}")
    precision, _ = arr.shape
    values = np.zeros(arr.shape[1], dtype=np.int64)
    for i in range(precision):
        shift = precision - 1 - i
        values |= (arr[i] & 1) << shift
    return [int(v) for v in values]


def replicate(values: Sequence[int], multiplicity: int) -> List[int]:
    """Replicate each element ``multiplicity`` times, preserving order.

    This is Diane's Step 0 preprocessing: ``[x, y]`` with multiplicity 3
    becomes ``[x, x, x, y, y, y]``.
    """
    if multiplicity <= 0:
        raise DomainError(f"multiplicity must be positive, got {multiplicity}")
    out: List[int] = []
    for v in values:
        out.extend([v] * multiplicity)
    return out
