"""The ``FheBackend`` protocol and the backend registry.

Every layer of the COPSE stack — the eager runtime, the IR executor, the
batched serve pipeline, the benchmark harness — drives the FHE substrate
through the ~20-operation surface documented here, never through a
concrete class.  A *backend* is any object implementing the protocol;
the registry maps short names to backend factories so callers select an
engine with a string::

    from repro.fhe import FheContext

    ctx = FheContext(backend="vector")        # fast aggregate bookkeeping
    ctx = FheContext(backend="reference")     # full DAG + noise fidelity
    ctx = FheContext(backend="plaintext")     # debug: no noise accounting

Built-in backends
-----------------

``reference``
    The original simulator (:class:`~repro.fhe.context.FheContext`
    itself): per-operation noise states, a full dependency-DAG tracker
    (work/span, multiplicative depth, noninterference traces).  The
    fidelity baseline every other backend must agree with bit-for-bit.

``vector``
    :class:`~repro.fhe.vector.VectorFheContext`: identical bit semantics
    and noise-*failure* semantics, but batched bookkeeping — a
    counts-only tracker (no DAG nodes), flyweight noise states, and
    allocation-light ciphertext wrapping with no per-slot Python loops.
    ~2x wall-clock on serving workloads; loses DAG-level analyses
    (span, traces).

``plaintext``
    :class:`~repro.fhe.vector.PlaintextFheContext`: a debugging backend
    that never exhausts the noise budget, so circuits deeper than the
    modulus chain still run.  Bit semantics and key checks are kept.

Third-party backends register with :func:`register_backend`; a factory is
typically a :class:`~repro.fhe.context.FheContext` subclass (inheriting
the combinators for free) but any callable returning a protocol
implementation works.  See ``examples/custom_backend.py``.

The process-wide default backend is ``reference`` unless the
``REPRO_BACKEND`` environment variable names another registered backend
(the CI matrix uses this to replay the whole differential suite under
``vector``).
"""

from __future__ import annotations

import os
import threading
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Union,
    runtime_checkable,
)

import numpy as np

from repro.errors import ParameterError

#: Environment variable naming the process-wide default backend.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: The fidelity baseline backend (and the fallback default).
REFERENCE_BACKEND = "reference"


@runtime_checkable
class FheBackend(Protocol):
    """The operation surface every FHE backend must provide.

    This is exactly the contract :class:`~repro.fhe.context.FheContext`
    pioneered; extracting it lets the executor, runtime, and serve
    layers dispatch over *any* engine — a faster simulator, a debugging
    stub, or (one day) bindings to a real FHE library.

    Implementations must preserve the reference backend's observable
    semantics: identical result bits for identical programs, identical
    error types for protocol violations (key mismatch, slot capacity,
    plaintext domain), and — unless the backend documents
    ``noise_fidelity == "none"`` — identical noise-budget failures.
    """

    # -- identity ---------------------------------------------------------
    #: Registry name of this backend ("reference", "vector", ...).
    backend_name: str
    #: "exact" (reference-identical noise states), "aggregate" (same
    #: failure points, batched bookkeeping), or "none" (never fails).
    noise_fidelity: str

    # -- owned state ------------------------------------------------------
    params: "EncryptionParams"
    tracker: "OpTracker"
    noise_model: "NoiseModel"

    # -- keys, encoding, encryption --------------------------------------
    def keygen(self) -> "KeyPair": ...
    def encode(self, bits) -> "PlainVector": ...
    def encrypt(self, bits, public_key) -> "Ciphertext": ...
    def encrypt_plain(self, plain, public_key) -> "Ciphertext": ...
    def decrypt(self, ct, secret_key) -> np.ndarray: ...
    def decrypt_bits(self, ct, secret_key) -> List[int]: ...
    def adopt(self, ct) -> "Ciphertext": ...

    # -- primitive homomorphic operations --------------------------------
    def add(self, a, b) -> "Ciphertext": ...
    def const_add(self, a, plain) -> "Ciphertext": ...
    def multiply(self, a, b) -> "Ciphertext": ...
    def const_mult(self, a, plain) -> "Ciphertext": ...
    def rotate(self, a, amount: int) -> "Ciphertext": ...
    def bootstrap(self, a) -> "Ciphertext": ...
    def depth_headroom(self, a) -> int: ...

    # -- shape helpers ----------------------------------------------------
    def cyclic_extend(self, a, length: int) -> "Ciphertext": ...
    def truncate(self, a, length: int) -> "Ciphertext": ...

    # -- mixed plain/cipher dispatch and combinators ---------------------
    def xor_any(self, a, b): ...
    def and_any(self, a, b): ...
    def rotate_any(self, a, amount: int): ...
    def multiply_all(self, vectors: Sequence): ...
    def xor_all(self, vectors: Sequence): ...
    def ones(self, length: int) -> "PlainVector": ...
    def zeros(self, length: int) -> "PlainVector": ...
    def negate(self, a): ...

    # -- optional capabilities --------------------------------------------
    # ``fused_ops`` is an *optional* capability surface, discovered with
    # ``getattr(ctx, "fused_ops", None)`` rather than declared here (so
    # backends that predate it remain protocol-conformant).  A non-None
    # value must expose ``execute(spec, regs) -> Ciphertext`` consuming
    # the fused-instruction specs of :mod:`repro.ir.tape`
    # (``rotate-mask-xor`` single-source gathers and
    # ``mask-mult-accumulate`` product accumulations), with observable
    # semantics — result bits, noise evolution and failure points,
    # tracker op counts, error types — byte-identical to executing the
    # spec's recorded de-fused op sequence on the same backend.  The
    # vector backend implements it
    # (:class:`~repro.fhe.vector.VectorFusedOps`); the reference and
    # plaintext backends leave it ``None`` and take the de-fused path.
    #
    # ``megakernel_ops`` is the second optional capability, discovered
    # the same way (``getattr(ctx, "megakernel_ops", None)``) by the
    # whole-tape megakernel of :mod:`repro.ir.megakernel`.  A non-None
    # value must expose ``scratch_context() -> ctx`` returning a fresh
    # context of the same backend class and parameters (fresh tracker),
    # on which the megakernel runs the tape loop once per input
    # signature to capture bulk bookkeeping.  Backends leaving it
    # ``None`` make ``engine="megakernel"`` run the tape loop directly —
    # same bits, same counts, only the dispatch cost differs.
    #
    # ``adopt_many`` is the third optional capability, discovered by the
    # serve layer's per-batch model adoption
    # (``getattr(ctx, "adopt_many", None)``).  A non-None value must
    # accept a sequence of mixed plain/cipher vectors and behave exactly
    # like adopting each ciphertext in order (plain vectors pass
    # through): identical ``LOAD`` count deltas — including partial
    # counts before a width refusal — identical node ids, identical
    # error types.  The vector backend implements it with one bulk
    # tracker record per list; backends without it are adopted one
    # ciphertext at a time.


def fold_balanced(items, combine):
    """The canonical balanced pairwise fold of the fused-ops contract.

    The single definition of the pairing shape shared by ``xor_all`` /
    ``multiply_all`` style reductions, the tape compiler, the fused
    kernels, and their de-fused fallbacks: items combine pairwise per
    layer, an odd tail carries to the next layer.  Fused bookkeeping and
    de-fused execution folding in exactly this shape is what keeps their
    noise evolution — including the term at which a budget overflow
    raises — byte-identical.
    """
    layer = list(items)
    while len(layer) > 1:
        nxt = []
        for i in range(0, len(layer) - 1, 2):
            nxt.append(combine(layer[i], layer[i + 1]))
        if len(layer) % 2 == 1:
            nxt.append(layer[-1])
        layer = nxt
    return layer[0]


#: A backend factory: called as ``factory(params, tracker)`` (both
#: optional) and returning an :class:`FheBackend`.  FheContext
#: subclasses satisfy this directly.
BackendFactory = Callable[..., FheBackend]

_REGISTRY: Dict[str, BackendFactory] = {}
_DESCRIPTIONS: Dict[str, str] = {}
_REGISTRY_LOCK = threading.Lock()
_BUILTIN_NAMES = frozenset(("reference", "vector", "plaintext"))


def register_backend(
    name: str,
    factory: BackendFactory,
    description: str = "",
    replace: bool = False,
) -> None:
    """Register ``factory`` under ``name``.

    Names are case-sensitive, non-empty strings.  Re-registering an
    existing name raises unless ``replace=True`` (so a typo cannot
    silently shadow a built-in engine).
    """
    if not name or not isinstance(name, str):
        raise ParameterError("a backend needs a non-empty string name")
    if not callable(factory):
        raise ParameterError(
            f"backend factory for {name!r} must be callable, "
            f"got {type(factory).__name__}"
        )
    with _REGISTRY_LOCK:
        if name in _REGISTRY and not replace:
            raise ParameterError(
                f"a backend named {name!r} is already registered; "
                f"pass replace=True to override it"
            )
        _REGISTRY[name] = factory
        _DESCRIPTIONS[name] = description


def register_backend_if_missing(
    name: str, factory: BackendFactory, description: str = ""
) -> None:
    """Register ``factory`` unless ``name`` is already taken.

    The idempotent flavor the built-in modules use, both at import time
    and when :func:`_ensure_builtins` restores an unregistered built-in
    — a user's deliberate ``replace=True`` override is never clobbered.
    """
    if not name or not isinstance(name, str):
        raise ParameterError("a backend needs a non-empty string name")
    if not callable(factory):
        raise ParameterError(
            f"backend factory for {name!r} must be callable, "
            f"got {type(factory).__name__}"
        )
    with _REGISTRY_LOCK:
        if name in _REGISTRY:
            return
        _REGISTRY[name] = factory
        _DESCRIPTIONS[name] = description


def unregister_backend(name: str) -> None:
    """Remove a registered backend (built-ins re-register on demand)."""
    with _REGISTRY_LOCK:
        _REGISTRY.pop(name, None)
        _DESCRIPTIONS.pop(name, None)


def _ensure_builtins() -> None:
    """Make sure every built-in backend is registered.

    The built-in modules register themselves at import time (lazy
    imports here avoid a cycle — context.py imports this module at load
    time); re-invoking their idempotent registration hooks additionally
    restores any built-in a caller unregistered, without touching names
    a user replaced.
    """
    with _REGISTRY_LOCK:
        if _BUILTIN_NAMES <= _REGISTRY.keys():
            return
    import repro.fhe.context as _context
    import repro.fhe.vector as _vector

    _context._register_builtin()
    _vector._register_builtins()


def get_backend(name: str) -> BackendFactory:
    """Look up a backend factory by name; raises on unknown names."""
    _ensure_builtins()
    with _REGISTRY_LOCK:
        factory = _REGISTRY.get(name)
    if factory is None:
        known = ", ".join(available_backends()) or "none"
        raise ParameterError(
            f"unknown FHE backend {name!r} (registered: {known})"
        )
    return factory


def available_backends() -> List[str]:
    """Sorted names of every registered backend."""
    _ensure_builtins()
    with _REGISTRY_LOCK:
        return sorted(_REGISTRY)


def backend_description(name: str) -> str:
    """The one-line description a backend registered with."""
    get_backend(name)  # raise on unknown names
    with _REGISTRY_LOCK:
        return _DESCRIPTIONS.get(name, "")


def default_backend() -> str:
    """The process-wide default: ``$REPRO_BACKEND`` or ``reference``."""
    return os.environ.get(BACKEND_ENV_VAR) or REFERENCE_BACKEND


def resolve_backend(name: Optional[str] = None) -> BackendFactory:
    """Resolve ``name`` (or the process default) to a backend factory."""
    return get_backend(name if name is not None else default_backend())


def canonical_backend_name(name: Optional[str] = None) -> str:
    """Validate ``name`` (or the process default) and return it.

    Used by layers that *store* a backend choice (the serve registry,
    runner configs) so an unknown name fails at selection time, not at
    the first batch evaluation.
    """
    resolved = name if name is not None else default_backend()
    get_backend(resolved)
    return resolved
