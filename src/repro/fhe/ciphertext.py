"""Packed ciphertext and plaintext-vector types.

A :class:`Ciphertext` is the simulator's analogue of an HElib ``Ctxt``: a
single object holding an entire packed vector of GF(2) slots.  The payload
is private (``_slots``); user code is expected to go through
:class:`~repro.fhe.context.FheContext` for every operation, exactly as it
would with a real FHE library.  ``repr`` never shows the payload.

A :class:`PlainVector` is an *encoded but unencrypted* packed vector — the
analogue of an HElib ``Ptxt`` — used for constant-operand operations
(constant add / constant multiply) and for plaintext-model inference in the
Maurice-equals-Sally configuration (Section 8.3 of the paper).

Both types carry a ``logical length``: the number of meaningful slots.
Rotations are cyclic over the logical length (see DESIGN.md for how this
deviates from HElib's full-width rotations; the cost model charges for the
real thing).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence, Union

import numpy as np

from repro.errors import DomainError, SlotCapacityError
from repro.fhe.noise import NoiseState

_CT_COUNTER = itertools.count(1)

BitsLike = Union[Sequence[int], np.ndarray]


def coerce_bits(values: BitsLike) -> np.ndarray:
    """Validate and convert a bit sequence to a ``uint8`` numpy array.

    Raises :class:`~repro.errors.DomainError` when any element is not 0/1,
    since the plaintext domain of the packed scheme is GF(2).
    """
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise DomainError(f"expected a 1-D bit vector, got shape {arr.shape}")
    if arr.size == 0:
        raise DomainError("empty bit vectors cannot be packed")
    if arr.dtype == bool:
        return arr.astype(np.uint8)
    if not np.issubdtype(arr.dtype, np.integer):
        raise DomainError(f"bit vectors must be integral, got dtype {arr.dtype}")
    if np.any((arr != 0) & (arr != 1)):
        raise DomainError("plaintext slots must be bits (0 or 1)")
    return arr.astype(np.uint8)


class PlainVector:
    """An encoded plaintext packed vector (the analogue of HElib ``Ptxt``)."""

    __slots__ = ("_slots",)

    def __init__(self, bits: BitsLike):
        self._slots = coerce_bits(bits)
        self._slots.flags.writeable = False

    @property
    def length(self) -> int:
        """Number of meaningful slots."""
        return int(self._slots.size)

    def to_array(self) -> np.ndarray:
        """Return a copy of the slot contents (plaintexts are not secret)."""
        return self._slots.copy()

    def bits(self) -> list:
        return [int(b) for b in self._slots]

    def rotated(self, amount: int) -> "PlainVector":
        """Cyclic left rotation by ``amount`` slots."""
        return PlainVector(np.roll(self._slots, -amount))

    def __len__(self) -> int:
        return self.length

    def __eq__(self, other) -> bool:
        return isinstance(other, PlainVector) and np.array_equal(
            self._slots, other._slots
        )

    def __hash__(self):  # pragma: no cover - plain vectors used in sets rarely
        return hash(self._slots.tobytes())

    def __repr__(self) -> str:
        preview = "".join(str(int(b)) for b in self._slots[:16])
        suffix = "..." if self.length > 16 else ""
        return f"PlainVector(len={self.length}, bits={preview}{suffix})"


class Ciphertext:
    """A packed ciphertext: one encrypted vector of GF(2) slots.

    Instances are immutable.  They must only be created by
    :class:`~repro.fhe.context.FheContext`; the constructor is considered
    package-private.  The payload is deliberately inaccessible except via
    ``FheContext.decrypt`` with the matching secret key.
    """

    __slots__ = ("_slots", "_length", "_key_id", "_noise", "_node_id", "_ct_id")

    def __init__(
        self,
        slots: np.ndarray,
        length: int,
        key_id: int,
        noise: NoiseState,
        node_id: int,
    ):
        if length <= 0 or length > slots.size:
            raise SlotCapacityError(
                f"logical length {length} invalid for {slots.size} slots"
            )
        self._slots = slots
        self._slots.flags.writeable = False
        self._length = length
        self._key_id = key_id
        self._noise = noise
        self._node_id = node_id
        self._ct_id = next(_CT_COUNTER)

    # -- public metadata (all of this is visible to an evaluator in a real
    #    FHE deployment: lengths, key identity, noise estimate) -----------

    @property
    def length(self) -> int:
        """Number of meaningful (logical) slots."""
        return self._length

    @property
    def key_id(self) -> int:
        """Identifier of the public key this ciphertext is under."""
        return self._key_id

    @property
    def noise(self) -> NoiseState:
        """Current noise estimate (evaluators track this in real BGV too)."""
        return self._noise

    @property
    def node_id(self) -> int:
        """Identifier of this ciphertext's node in the operation DAG."""
        return self._node_id

    @property
    def ciphertext_id(self) -> int:
        """Unique identifier of this ciphertext object."""
        return self._ct_id

    def __len__(self) -> int:
        return self._length

    def __repr__(self) -> str:
        return (
            f"Ciphertext(id={self._ct_id}, len={self._length}, "
            f"key={self._key_id}, {self._noise.describe()}, <encrypted>)"
        )

    # -- package-private accessors ---------------------------------------

    def _payload(self) -> np.ndarray:
        """Raw slot contents.  Package-private: only FheContext may call."""
        return self._slots

    @classmethod
    def _make(
        cls,
        slots: np.ndarray,
        length: int,
        key_id: int,
        noise: NoiseState,
        node_id: int,
    ) -> "Ciphertext":
        """Allocation-light construction for backend-internal results.

        Skips the length validation and the read-only flag flip of
        ``__init__`` — safe only for arrays the backend itself just
        produced (fresh numpy results no other code holds), which is why
        this is package-private like ``_payload``.
        """
        ct = object.__new__(cls)
        ct._slots = slots
        ct._length = length
        ct._key_id = key_id
        ct._noise = noise
        ct._node_id = node_id
        ct._ct_id = next(_CT_COUNTER)
        return ct


def iter_bits(values: Iterable[int]):
    """Yield validated bits from an iterable (helper for tests/examples)."""
    for v in values:
        if v not in (0, 1):
            raise DomainError(f"expected a bit, got {v!r}")
        yield int(v)
