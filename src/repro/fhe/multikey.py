"""Threshold (shared-key) FHE: the Section 7.1 extension.

Single-key FHE forces COPSE into two-party deployments: whoever holds the
secret key can decrypt everything under it, so Maurice and Diane cannot
both keep secrets from each other unless they are the same party.  The
paper points at threshold FHE (Asharov et al.) as the fix: a *joint* key
pair whose secret key is additively shared between the data and model
owners, so decryption requires a round of partial decryptions from every
shareholder.

This module provides the simulator's analogue:

* :func:`threshold_keygen` — create a joint public key plus one
  :class:`SecretShare` per shareholder.  No complete secret-key object
  ever exists.
* :func:`partial_decrypt` — a shareholder's decryption contribution for
  one ciphertext: an XOR fragment of the plaintext.
* :func:`combine_partials` — the final reconstruction, requiring a
  partial from *every* share under the matching key.

Ciphertexts under a joint key are ordinary
:class:`~repro.fhe.ciphertext.Ciphertext` objects — homomorphic
evaluation is unchanged, exactly the "wrapper" property the paper
describes; the added cost is protocol rounds, which
:mod:`repro.core.threeparty` tracks.

Like the rest of the FHE simulator, secrecy here is *structural* rather
than cryptographic: the single-key path enforces "wrong key cannot
decrypt" by key-id checks, and the threshold path enforces "no subset of
shareholders can decrypt" by fragment accounting — ``combine_partials``
refuses incomplete share sets, and any strict subset of fragments XORs to
a padded value, not the plaintext.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.errors import KeyMismatchError, RuntimeProtocolError
from repro.fhe.ciphertext import Ciphertext
from repro.fhe.context import FheContext
from repro.fhe.keys import PublicKey
from repro.fhe.tracker import OpKind


@dataclass(frozen=True)
class SecretShare:
    """One additive share of a joint secret key."""

    key_id: int
    index: int
    share_count: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SecretShare(key={self.key_id}, index={self.index}/"
            f"{self.share_count}, <redacted>)"
        )


@dataclass(frozen=True)
class JointKey:
    """A joint key pair: one public key, ``n`` secret shares."""

    public: PublicKey
    shares: List[SecretShare] = field(repr=False)

    @property
    def share_count(self) -> int:
        return len(self.shares)


@dataclass(frozen=True)
class PartialDecryption:
    """One shareholder's decryption contribution for one ciphertext."""

    key_id: int
    share_index: int
    share_count: int
    ciphertext_id: int
    fragment: np.ndarray = field(repr=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PartialDecryption(key={self.key_id}, "
            f"share={self.share_index}/{self.share_count}, "
            f"ct={self.ciphertext_id}, <fragment redacted>)"
        )


def threshold_keygen(ctx: FheContext, share_count: int = 2) -> JointKey:
    """Generate a joint key with ``share_count`` additive secret shares.

    In a real threshold scheme this is an interactive protocol between
    the shareholders; the simulator mints an ordinary context key and
    hands out share handles.
    """
    if share_count < 2:
        raise RuntimeProtocolError(
            f"a threshold key needs at least 2 shares, got {share_count}"
        )
    pair = ctx.keygen()
    shares = [
        SecretShare(key_id=pair.key_id, index=i, share_count=share_count)
        for i in range(share_count)
    ]
    return JointKey(public=pair.public, shares=shares)


def _pad_for(share: SecretShare, ct: Ciphertext, length: int) -> np.ndarray:
    """The pseudorandom pad cancelling between share ``i`` and share 0.

    Models the smudging-noise terms of a real threshold decryption: the
    pads of shares ``1..n-1`` each cancel against the designated share's
    contribution, so only the full set reconstructs.
    """
    digest = hashlib.sha256(
        b"copse-threshold-pad"
        + share.key_id.to_bytes(8, "little")
        + share.index.to_bytes(4, "little")
        + ct.ciphertext_id.to_bytes(8, "little")
    ).digest()
    seed = int.from_bytes(digest[:8], "little")
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, size=length, dtype=np.uint8)


def partial_decrypt(
    ctx: FheContext, ct: Ciphertext, share: SecretShare
) -> PartialDecryption:
    """Produce one shareholder's partial decryption of ``ct``.

    Share ``i > 0`` contributes its pad; share 0 contributes the payload
    XOR-folded under every other share's pad.  XORing all
    ``share_count`` fragments cancels the pads and yields the plaintext;
    any strict subset leaves at least one pad (or omits the payload)
    standing.
    """
    if share.key_id != ct.key_id:
        raise KeyMismatchError(
            f"share for key {share.key_id} cannot open a ciphertext under "
            f"key {ct.key_id}"
        )
    ctx.noise_model.check_decryptable(ct.noise)
    ctx.tracker.record(OpKind.DECRYPT, parents=(ct.node_id,))
    if share.index == 0:
        fragment = ct._payload()[: ct.length].copy()
        for other_index in range(1, share.share_count):
            other = SecretShare(
                key_id=share.key_id,
                index=other_index,
                share_count=share.share_count,
            )
            fragment ^= _pad_for(other, ct, ct.length)
    else:
        fragment = _pad_for(share, ct, ct.length)
    return PartialDecryption(
        key_id=share.key_id,
        share_index=share.index,
        share_count=share.share_count,
        ciphertext_id=ct.ciphertext_id,
        fragment=fragment,
    )


def combine_partials(
    ct: Ciphertext, partials: Sequence[PartialDecryption]
) -> List[int]:
    """Reconstruct the plaintext from a full set of partial decryptions.

    Raises unless exactly one partial per share index is present, all for
    this ciphertext under its key.
    """
    if not partials:
        raise RuntimeProtocolError("no partial decryptions supplied")
    share_count = partials[0].share_count
    seen = {}
    for partial in partials:
        if partial.key_id != ct.key_id:
            raise KeyMismatchError(
                f"partial for key {partial.key_id} does not match the "
                f"ciphertext's key {ct.key_id}"
            )
        if partial.ciphertext_id != ct.ciphertext_id:
            raise RuntimeProtocolError(
                "partial decryption is for a different ciphertext"
            )
        if partial.share_count != share_count:
            raise RuntimeProtocolError(
                "partial decryptions disagree on the share count"
            )
        if partial.share_index in seen:
            raise RuntimeProtocolError(
                f"duplicate partial for share {partial.share_index}"
            )
        seen[partial.share_index] = partial
    missing = set(range(share_count)) - set(seen)
    if missing:
        raise RuntimeProtocolError(
            f"incomplete partial decryptions: missing shares "
            f"{sorted(missing)}; threshold decryption needs every "
            f"shareholder"
        )
    acc = np.zeros(ct.length, dtype=np.uint8)
    for partial in seen.values():
        acc ^= partial.fragment
    return [int(b) for b in acc]
