"""Additively homomorphic encryption (Paillier-style simulator).

Wu et al.'s decision-tree protocol (Section 2.3.1 of the COPSE paper)
does not need fully homomorphic encryption: the server only ever computes
affine functions of the client's encrypted features, so an *additive*
scheme suffices.  This module is the simulator's stand-in for Paillier:

* ciphertexts hold a single integer modulo ``modulus``;
* ``add`` / ``add_plain`` — homomorphic addition;
* ``mul_plain`` — multiplication by a plaintext scalar;

with the same structural key discipline as the packed scheme (wrong-key
decryption raises) and operation recording on the shared tracker, so AHE
work appears in the same cost accounting as FHE work.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.errors import DomainError, KeyMismatchError
from repro.fhe.keys import KeyPair, PublicKey, SecretKey
from repro.fhe.tracker import OpKind, OpTracker

_AHE_CT_COUNTER = itertools.count(1)

#: Default plaintext modulus: comfortably above any blinded difference of
#: fixed-point values (Paillier moduli are thousands of bits; only the
#: arithmetic matters here).
DEFAULT_MODULUS = 1 << 62


@dataclass(frozen=True)
class AheCiphertext:
    """One additively homomorphic ciphertext (a single integer)."""

    _value: int
    key_id: int
    ciphertext_id: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AheCiphertext(id={self.ciphertext_id}, key={self.key_id}, <encrypted>)"


class AheContext:
    """Evaluation context for the additive scheme."""

    def __init__(
        self,
        tracker: Optional[OpTracker] = None,
        modulus: int = DEFAULT_MODULUS,
    ):
        if modulus < 4:
            raise DomainError(f"modulus {modulus} is too small")
        self.tracker = tracker if tracker is not None else OpTracker()
        self.modulus = modulus

    def keygen(self) -> KeyPair:
        return KeyPair.generate(security=128)

    def encrypt(self, value: int, public_key: PublicKey) -> AheCiphertext:
        self.tracker.record(OpKind.AHE_ENCRYPT)
        return AheCiphertext(
            _value=int(value) % self.modulus,
            key_id=public_key.key_id,
            ciphertext_id=next(_AHE_CT_COUNTER),
        )

    def decrypt(self, ct: AheCiphertext, secret_key: SecretKey) -> int:
        if secret_key.key_id != ct.key_id:
            raise KeyMismatchError(
                f"secret key {secret_key.key_id} cannot decrypt an AHE "
                f"ciphertext under key {ct.key_id}"
            )
        self.tracker.record(OpKind.AHE_DECRYPT)
        return ct._value

    def decrypt_signed(self, ct: AheCiphertext, secret_key: SecretKey) -> int:
        """Decrypt into the centered range ``(-m/2, m/2]`` (for signs)."""
        value = self.decrypt(ct, secret_key)
        if value > self.modulus // 2:
            value -= self.modulus
        return value

    # ------------------------------------------------------------------
    # Homomorphic operations
    # ------------------------------------------------------------------

    def add(self, a: AheCiphertext, b: AheCiphertext) -> AheCiphertext:
        if a.key_id != b.key_id:
            raise KeyMismatchError(
                f"cannot add AHE ciphertexts under keys {a.key_id} and "
                f"{b.key_id}"
            )
        self.tracker.record(OpKind.AHE_ADD)
        return AheCiphertext(
            _value=(a._value + b._value) % self.modulus,
            key_id=a.key_id,
            ciphertext_id=next(_AHE_CT_COUNTER),
        )

    def add_plain(self, a: AheCiphertext, value: int) -> AheCiphertext:
        self.tracker.record(OpKind.AHE_ADD)
        return AheCiphertext(
            _value=(a._value + int(value)) % self.modulus,
            key_id=a.key_id,
            ciphertext_id=next(_AHE_CT_COUNTER),
        )

    def mul_plain(self, a: AheCiphertext, scalar: int) -> AheCiphertext:
        self.tracker.record(OpKind.AHE_MUL_PLAIN)
        return AheCiphertext(
            _value=(a._value * int(scalar)) % self.modulus,
            key_id=a.key_id,
            ciphertext_id=next(_AHE_CT_COUNTER),
        )

    def negate(self, a: AheCiphertext) -> AheCiphertext:
        return self.mul_plain(a, -1)
