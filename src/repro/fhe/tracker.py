"""Operation tracking: counts, dependency DAG, and work/span analysis.

The paper characterizes circuits two ways (Section 6): by the *number of
each kind of primitive FHE operation* (the "work") and by the
*multiplicative depth* (the critical path of multiplies).  Its evaluation
additionally reports wall-clock times, single- and multi-threaded.

The tracker records every primitive operation the
:class:`~repro.fhe.context.FheContext` executes:

* per-kind counters, scoped by *phase* (comparison / reshuffle / levels /
  accumulate — the four stages of the COPSE algorithm), which reproduce
  Tables 1 and 2 and the Figure 10 breakdowns;
* a dependency DAG (each produced ciphertext is a node whose parents are
  its operand ciphertexts), from which the cost model derives the *span*
  (critical-path cost) used to simulate multithreaded execution, and the
  multiplicative depth used to validate Table 2's depth formula.

Phases nest via the :meth:`OpTracker.phase` context manager; operations
recorded outside any phase land in the ``"unscoped"`` phase.
"""

from __future__ import annotations

import enum
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


class OpKind(enum.Enum):
    """Primitive FHE operations, matching Section 6 of the paper.

    ``CONST_MULT`` (plaintext-ciphertext multiply) is not listed in the
    paper's Table 1 because the offloading configuration it evaluates most
    encrypts the model; it appears in the Maurice-equals-Sally configuration
    of Section 8.3, where model matrices stay in plaintext.
    """

    ENCRYPT = "encrypt"
    DECRYPT = "decrypt"
    # Re-registration of an already-encrypted ciphertext in a new tracker
    # (the batched service reuses a once-encrypted model across many batch
    # evaluations; loading cached ciphertext is free — no FHE work happens).
    LOAD = "load"
    ADD = "add"
    CONST_ADD = "const_add"
    MULTIPLY = "multiply"
    CONST_MULT = "const_mult"
    ROTATE = "rotate"
    BOOTSTRAP = "bootstrap"
    # Additively-homomorphic (Paillier-style) operations, used by the Wu
    # et al. OT-based protocol (Section 2.3.1).
    AHE_ENCRYPT = "ahe_encrypt"
    AHE_DECRYPT = "ahe_decrypt"
    AHE_ADD = "ahe_add"
    AHE_MUL_PLAIN = "ahe_mul_plain"


@dataclass
class OpNode:
    """One recorded operation in the dependency DAG."""

    node_id: int
    kind: OpKind
    phase: str
    parents: Tuple[int, ...]
    mult_depth: int


@dataclass
class PhaseStats:
    """Aggregated operation counts for one phase."""

    phase: str
    counts: Dict[OpKind, int] = field(default_factory=dict)

    def count(self, kind: OpKind) -> int:
        return self.counts.get(kind, 0)

    @property
    def total_ops(self) -> int:
        return sum(self.counts.values())

    def as_dict(self) -> Dict[str, int]:
        """Counts keyed by operation name (for reports)."""
        return {kind.value: n for kind, n in sorted(
            self.counts.items(), key=lambda kv: kv[0].value)}


UNSCOPED_PHASE = "unscoped"


class OpTracker:
    """Records primitive operations and exposes count / DAG analyses."""

    def __init__(self) -> None:
        self._nodes: List[OpNode] = []
        self._phase_stack: List[str] = []
        self._phase_counts: Dict[str, PhaseStats] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    @property
    def current_phase(self) -> str:
        return self._phase_stack[-1] if self._phase_stack else UNSCOPED_PHASE

    @contextmanager
    def phase(self, name: str):
        """Scope subsequent operations under ``name`` (nestable)."""
        self._phase_stack.append(name)
        try:
            yield self
        finally:
            self._phase_stack.pop()

    def record(self, kind: OpKind, parents: Iterable[int] = ()) -> int:
        """Record one operation; returns the new DAG node id.

        ``parents`` are the node ids of the operand ciphertexts.  Leaf
        operations (encryptions) have no parents.
        """
        parent_ids = tuple(parents)
        depth = 0
        for pid in parent_ids:
            depth = max(depth, self._nodes[pid].mult_depth)
        if kind is OpKind.MULTIPLY:
            depth += 1
        node_id = len(self._nodes)
        phase = self.current_phase
        self._nodes.append(OpNode(node_id, kind, phase, parent_ids, depth))
        stats = self._phase_counts.setdefault(phase, PhaseStats(phase))
        stats.counts[kind] = stats.counts.get(kind, 0) + 1
        return node_id

    # ------------------------------------------------------------------
    # Count queries
    # ------------------------------------------------------------------

    @property
    def phases(self) -> List[str]:
        """Phases in the order they first recorded an operation."""
        return list(self._phase_counts)

    def phase_stats(self, phase: str) -> PhaseStats:
        return self._phase_counts.get(phase, PhaseStats(phase))

    def total_counts(self) -> Dict[OpKind, int]:
        """Operation counts across all phases."""
        totals: Dict[OpKind, int] = {}
        for stats in self._phase_counts.values():
            for kind, n in stats.counts.items():
                totals[kind] = totals.get(kind, 0) + n
        return totals

    def counts_snapshot(self) -> Dict[OpKind, int]:
        """A point-in-time copy of the total counts, safe to diff later.

        The tape profiler (:mod:`repro.obs.profiler`) brackets each
        instruction with two snapshots and stores the delta, so summing
        its samples reconciles exactly with :meth:`total_counts`.
        """
        return self.total_counts()

    def count(self, kind: OpKind, phase: Optional[str] = None) -> int:
        if phase is None:
            return self.total_counts().get(kind, 0)
        return self.phase_stats(phase).count(kind)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    def node(self, node_id: int) -> OpNode:
        return self._nodes[node_id]

    def nodes(self) -> List[OpNode]:
        """All recorded nodes (copy of the internal list)."""
        return list(self._nodes)

    # ------------------------------------------------------------------
    # DAG analyses
    # ------------------------------------------------------------------

    def multiplicative_depth(self) -> int:
        """Longest chain of MULTIPLY operations in the recorded circuit."""
        return max((n.mult_depth for n in self._nodes), default=0)

    def work_and_span(self, cost_of, phases=None) -> Tuple[float, float]:
        """Total work and critical-path span under a cost function.

        ``cost_of`` maps an :class:`OpKind` to a cost (e.g. milliseconds).
        Work is the sum of all operation costs (sequential execution time);
        span is the cost of the most expensive dependency chain (the lower
        bound on parallel execution time with unlimited workers).

        ``phases`` optionally restricts the analysis to a set of phases
        (e.g. the four inference stages, excluding one-time encryption):
        excluded operations contribute no work and their outputs are
        treated as available at time zero.
        """
        include = None if phases is None else set(phases)
        work = 0.0
        span = 0.0
        finish: List[float] = [0.0] * len(self._nodes)
        for node in self._nodes:
            if include is not None and node.phase not in include:
                finish[node.node_id] = 0.0
                continue
            cost = cost_of(node.kind)
            work += cost
            start = 0.0
            for pid in node.parents:
                start = max(start, finish[pid])
            finish[node.node_id] = start + cost
            span = max(span, finish[node.node_id])
        return work, span

    def dag_level_count(self, phases=None) -> int:
        """Number of topological levels in the (phase-restricted) DAG.

        Used by the cost model as the count of synchronization barriers a
        thread-pool executor (NTL-style) would pass through: all operations
        at one level can run concurrently, but each level joins before the
        next begins.
        """
        if not self._nodes:
            return 0
        include = None if phases is None else set(phases)
        level: List[int] = [0] * len(self._nodes)
        deepest = -1
        for node in self._nodes:
            if include is not None and node.phase not in include:
                level[node.node_id] = -1
                continue
            lvl = 0
            for pid in node.parents:
                lvl = max(lvl, level[pid] + 1)
            level[node.node_id] = lvl
            deepest = max(deepest, lvl)
        return deepest + 1

    # ------------------------------------------------------------------
    # Trace extraction (used by the noninterference checker)
    # ------------------------------------------------------------------

    def trace(self) -> List[Tuple[str, str, Tuple[int, ...]]]:
        """The publicly observable execution trace.

        Each entry is ``(op kind, phase, parent ids)`` — everything an
        adversary timing the evaluator could observe.  Noninterference
        demands this trace be identical for all feature inputs of the same
        shape; ``tests/security`` verify that property.
        """
        return [(n.kind.value, n.phase, n.parents) for n in self._nodes]

    def reset(self) -> None:
        """Clear all recorded state (counts, DAG, phases)."""
        self._nodes.clear()
        self._phase_stack.clear()
        self._phase_counts.clear()


class CountingTracker(OpTracker):
    """An :class:`OpTracker` that keeps counts and depth but no DAG.

    The vector backend's tracker: per-phase operation counts (everything
    the cost model's sequential estimates and the serve stats consume)
    and the exact multiplicative depth, without allocating an
    :class:`OpNode` per operation.  The trick making depth exact with no
    node storage: the "node id" returned by :meth:`record` *is* the
    node's multiplicative depth, so a later operation's depth is just
    ``max(parent ids)`` (+1 for a multiply) — the same recurrence the
    full tracker runs over stored nodes.  Node ids only ever flow back
    into the tracker that issued them, so redefining their meaning is
    invisible to callers.

    DAG-shaped analyses degrade explicitly: :meth:`trace` is empty (no
    noninterference checking), and :meth:`work_and_span` reports
    ``span == work`` (no parallelism estimate) since the critical path
    is unknown without the DAG.
    """

    def __init__(self) -> None:
        super().__init__()
        self._max_depth = 0
        self._total = 0
        #: Count dict of the phase currently recording; bound lazily on
        #: the first record of each phase scope, so a phase with no
        #: operations never appears in the stats (matching OpTracker).
        self._active_counts: Optional[Dict[OpKind, int]] = None

    def _counts_for(self, phase: str) -> Dict[OpKind, int]:
        stats = self._phase_counts.get(phase)
        if stats is None:
            stats = PhaseStats(phase)
            self._phase_counts[phase] = stats
        return stats.counts

    @contextmanager
    def phase(self, name: str):
        """Scope subsequent operations under ``name`` (nestable).

        Overridden to keep the active phase's count dict cached, so
        :meth:`record` touches one dict instead of resolving the phase
        stack on every operation.
        """
        self._phase_stack.append(name)
        previous = self._active_counts
        self._active_counts = None
        try:
            yield self
        finally:
            self._phase_stack.pop()
            self._active_counts = previous

    def record(self, kind: OpKind, parents: Iterable[int] = ()) -> int:
        if type(parents) is not tuple:
            parents = tuple(parents)
        depth = max(parents) if parents else 0
        if kind is OpKind.MULTIPLY:
            depth += 1
            if depth > self._max_depth:
                self._max_depth = depth
        counts = self._active_counts
        if counts is None:
            phase = (
                self._phase_stack[-1] if self._phase_stack else UNSCOPED_PHASE
            )
            counts = self._active_counts = self._counts_for(phase)
        counts[kind] = counts.get(kind, 0) + 1
        self._total += 1
        return depth

    def record_fused(self, kinds: Dict[OpKind, int], depth: int = 0) -> int:
        """Record a fused kernel's constituent operations in one call.

        ``kinds`` are the counts of the primitive operations the kernel
        replaces (so count parity with the de-fused sequence is exact);
        ``depth`` is the result's multiplicative depth, which — since
        this tracker's node ids *are* depths — is also the returned node
        id, exactly what the equivalent op sequence would have produced.
        """
        counts = self._active_counts
        if counts is None:
            phase = (
                self._phase_stack[-1] if self._phase_stack else UNSCOPED_PHASE
            )
            counts = self._active_counts = self._counts_for(phase)
        total = 0
        for kind, n in kinds.items():
            counts[kind] = counts.get(kind, 0) + n
            total += n
        self._total += total
        if depth > self._max_depth:
            self._max_depth = depth
        return depth

    @property
    def num_nodes(self) -> int:
        return self._total

    def multiplicative_depth(self) -> int:
        return self._max_depth

    def work_and_span(self, cost_of, phases=None) -> Tuple[float, float]:
        """Work from counts; span degrades to work (no DAG to walk)."""
        include = None if phases is None else set(phases)
        work = 0.0
        for phase, stats in self._phase_counts.items():
            if include is not None and phase not in include:
                continue
            for kind, n in stats.counts.items():
                work += cost_of(kind) * n
        return work, work

    def dag_level_count(self, phases=None) -> int:
        """No DAG, no barrier structure: report zero levels.  Combined
        with ``span == work`` this makes the cost model's multithreaded
        estimate degrade to the sequential time, never below it."""
        return 0

    def trace(self) -> List[Tuple[str, str, Tuple[int, ...]]]:
        return []

    def reset(self) -> None:
        super().reset()
        self._max_depth = 0
        self._total = 0
        self._active_counts = None
