"""Calibrated cost model: operation counts -> simulated milliseconds.

The original COPSE evaluation ran HElib/NTL on a 32-core Xeon E5-4650 and
reported wall-clock medians.  Our substrate executes the same circuits but
in a Python simulator, so raw wall-clock would reflect numpy overheads, not
FHE behaviour.  Instead, each primitive operation is charged a cost
calibrated against published BGV timings (ciphertext multiplies dominate;
rotations cost a key switch; additions are cheap), scaled by the
ciphertext ``size_factor`` of the active parameters.

Sequential time is total work.  Multithreaded time uses the classic
work–span (Brent) bound over the recorded operation DAG, plus a per-barrier
synchronization charge:

    T_P = span + (work - span) / P_eff + sync_ms * barriers

* ``P_eff`` — effective parallelism.  FHE workloads are memory-bandwidth
  bound, so 32 hardware threads do not yield 32x; the paper's own numbers
  imply an effective parallelism in the low tens.  Calibrated to 16.
* ``barriers`` — topological levels of the DAG; an NTL-style thread pool
  joins after each parallel region.

Calibration targets (see EXPERIMENTS.md) are the bar annotations of
Figures 6-9: microbenchmarks ~40-65 ms single-threaded under COPSE,
real-world models 0.3-1.5 s, 5-7x over the Aloufi baseline, parallel
speedups ~4x (micro) and ~9-12x (real-world).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.fhe.params import EncryptionParams
from repro.fhe.tracker import OpKind, OpTracker

#: Per-operation base costs in milliseconds at the reference parameters
#: (security 128, 400 bits, 3 columns).  Ratios follow published BGV
#: microbenchmarks: ct-ct multiply (with relinearization) is the expensive
#: primitive; rotation costs a key switch (~1/4 of a multiply); plaintext
#: multiply avoids relinearization; additions are noise-level cheap.
DEFAULT_OP_COSTS_MS: Dict[OpKind, float] = {
    OpKind.ENCRYPT: 1.8,
    OpKind.DECRYPT: 0.9,
    # Reusing an already-encrypted ciphertext (the serve subsystem's cached
    # model) does no FHE work; it is tracked only to keep the DAG closed.
    OpKind.LOAD: 0.0,
    OpKind.ADD: 0.012,
    OpKind.CONST_ADD: 0.006,
    OpKind.MULTIPLY: 0.30,
    OpKind.CONST_MULT: 0.19,
    # A rotation is a key switch (~a quarter of a multiply), but every
    # rotation in this system rotates the *same* ciphertext by many
    # amounts (the Halevi-Shoup product and the shared branch-vector
    # rotations) — the exact pattern HElib's hoisting optimization
    # amortizes.  0.045 ms reflects the hoisted cost.
    OpKind.ROTATE: 0.045,
    # Homomorphic re-encryption is two orders of magnitude above a
    # multiply — the reason the paper prefers deeper modulus chains over
    # bootstrapping (Section 2.2.1).
    OpKind.BOOTSTRAP: 30.0,
    # Paillier-style AHE primitives (the Wu et al. protocol): encryption
    # and decryption are modular exponentiations; homomorphic addition is
    # a modular multiply; plaintext scaling is an exponentiation.
    OpKind.AHE_ENCRYPT: 0.9,
    OpKind.AHE_DECRYPT: 0.9,
    OpKind.AHE_ADD: 0.004,
    OpKind.AHE_MUL_PLAIN: 0.12,
}

#: Effective parallelism of a 32-thread NTL pool on memory-bound FHE ops.
DEFAULT_EFFECTIVE_PARALLELISM = 16.0

#: Synchronization cost per DAG barrier (thread-pool fork/join), ms.
DEFAULT_SYNC_MS = 0.22


@dataclass(frozen=True)
class TimingEstimate:
    """Simulated timings for one recorded circuit (or circuit phase)."""

    work_ms: float
    span_ms: float
    barriers: int
    sequential_ms: float
    multithreaded_ms: float

    @property
    def parallel_speedup(self) -> float:
        if self.multithreaded_ms <= 0:
            return float("inf")
        return self.sequential_ms / self.multithreaded_ms


@dataclass
class CostModel:
    """Maps recorded operations to simulated execution time."""

    params: EncryptionParams
    op_costs_ms: Dict[OpKind, float] = field(
        default_factory=lambda: dict(DEFAULT_OP_COSTS_MS)
    )
    effective_parallelism: float = DEFAULT_EFFECTIVE_PARALLELISM
    sync_ms: float = DEFAULT_SYNC_MS

    def cost_of(self, kind: OpKind) -> float:
        """Cost of one operation in ms, scaled for the active parameters."""
        return self.op_costs_ms[kind] * self.params.size_factor

    # ------------------------------------------------------------------

    def sequential_ms(self, tracker: OpTracker, phases=None) -> float:
        """Single-threaded execution time: the total work."""
        if phases is not None:
            return sum(self.phase_sequential_ms(tracker, p) for p in phases)
        total = 0.0
        for kind, count in tracker.total_counts().items():
            total += self.cost_of(kind) * count
        return total

    def phase_sequential_ms(self, tracker: OpTracker, phase: str) -> float:
        """Single-threaded time attributed to one algorithm phase."""
        total = 0.0
        for kind, count in tracker.phase_stats(phase).counts.items():
            total += self.cost_of(kind) * count
        return total

    def multithreaded_ms(
        self, tracker: OpTracker, threads: Optional[int] = None, phases=None
    ) -> float:
        """Work-span estimate of multithreaded execution time."""
        estimate = self.estimate(tracker, threads, phases)
        return estimate.multithreaded_ms

    def estimate(
        self,
        tracker: OpTracker,
        threads: Optional[int] = None,
        phases=None,
    ) -> TimingEstimate:
        """Full timing estimate (work, span, and both execution modes).

        ``phases`` restricts the estimate to the named tracker phases —
        the benchmark harness passes the four inference stages so that
        one-time model/data encryption is excluded, as in the paper's
        reported query times.
        """
        p_eff = self.effective_parallelism
        if threads is not None:
            p_eff = min(p_eff, float(threads))
        p_eff = max(p_eff, 1.0)
        work, span = tracker.work_and_span(self.cost_of, phases)
        barriers = tracker.dag_level_count(phases)
        sequential = work
        multithreaded = span + (work - span) / p_eff + self.sync_ms * barriers
        # A thread pool can never beat sequential execution by more than the
        # available work allows, nor lose to it (a 1-thread pool degenerates
        # to sequential execution minus the barrier overhead).
        multithreaded = min(max(multithreaded, span), sequential + self.sync_ms * barriers)
        return TimingEstimate(
            work_ms=work,
            span_ms=span,
            barriers=barriers,
            sequential_ms=sequential,
            multithreaded_ms=multithreaded,
        )
