"""The FHE evaluation context: the simulator's analogue of an HElib context.

A :class:`FheContext` owns the encryption parameters, the noise model, and
an operation tracker, and exposes the primitive operations of Section 6 of
the paper:

* ``encrypt`` / ``decrypt``
* ``add`` (slot-wise XOR of two ciphertexts)
* ``const_add`` (XOR with an encoded plaintext vector)
* ``multiply`` (slot-wise AND of two ciphertexts; costs one level)
* ``const_mult`` (AND with an encoded plaintext vector; no relinearization)
* ``rotate`` (cyclic rotation by a constant number of slots)

plus convenience combinators used throughout the compiler and runtime:
mixed plain/cipher dispatch (``xor_any`` / ``and_any``), cyclic extension
and truncation for the Halevi-Shoup matrix product, and a balanced
``multiply_all`` product tree (log-depth accumulation, Section 4.3).

Every operation validates key consistency and logical lengths, updates the
per-ciphertext noise state (raising the moment the modulus chain would be
exhausted), and records itself in the tracker's dependency DAG.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.errors import (
    DomainError,
    KeyMismatchError,
    ParameterError,
    SlotCapacityError,
)
from repro.fhe.backend import register_backend_if_missing, resolve_backend
from repro.fhe.ciphertext import BitsLike, Ciphertext, PlainVector, coerce_bits
from repro.fhe.keys import KeyPair, PublicKey, SecretKey
from repro.fhe.noise import NoiseModel
from repro.fhe.params import EncryptionParams
from repro.fhe.tracker import OpKind, OpTracker

Vector = Union[Ciphertext, PlainVector]


class FheContext:
    """Evaluation context binding parameters, noise model, and tracker.

    ``FheContext`` is both the **reference backend** — the full-fidelity
    simulator described in this module's docstring — and the
    construction seam for every other backend: ``FheContext(params,
    backend="vector")`` consults the registry of
    :mod:`repro.fhe.backend` and returns that backend's context instead
    (the default is ``$REPRO_BACKEND`` or ``"reference"``).  Built-in
    backends subclass ``FheContext``, so ``isinstance`` checks and the
    shared combinators keep working; a registered factory that is not a
    subclass is simply called as ``factory(params, tracker)``.
    """

    #: Registry name of this backend (the protocol's identity field).
    backend_name = "reference"
    #: Reference noise states are the fidelity baseline.
    noise_fidelity = "exact"
    #: Optional fused-kernel capability (see ``repro.fhe.backend``): the
    #: reference backend executes compiled tapes de-fused, one recorded
    #: primitive at a time, so its DAG tracker and noise states stay the
    #: per-operation fidelity baseline the fused backends are held to.
    #: The whole-tape megakernel capability is declined for the same
    #: reason — a megakernel engine on this backend runs the tape loop.
    fused_ops = None
    megakernel_ops = None

    def __new__(
        cls,
        params: Optional[EncryptionParams] = None,
        tracker: Optional[OpTracker] = None,
        backend: Optional[str] = None,
    ):
        if cls is FheContext:
            impl = resolve_backend(backend)
            if impl is not FheContext:
                if isinstance(impl, type) and issubclass(impl, FheContext):
                    # A subclass: allocate it here and let Python run its
                    # __init__ with our arguments, exactly once.
                    return impl.__new__(impl, params, tracker, backend)
                # A foreign factory: construct the backend fully.  If
                # the factory happens to return an FheContext-derived
                # instance, Python will re-invoke __init__ on it (with
                # our backend alias, which need not match the instance's
                # own backend_name) — flag it so __init__ is a no-op and
                # the factory's construction stands as-is.
                obj = impl(params, tracker)
                if isinstance(obj, FheContext):
                    obj._factory_constructed = True
                return obj
        return super().__new__(cls)

    def __init__(
        self,
        params: Optional[EncryptionParams] = None,
        tracker: Optional[OpTracker] = None,
        backend: Optional[str] = None,
    ):
        if self.__dict__.pop("_factory_constructed", False):
            return  # fully built by a registered factory in __new__
        if backend is not None and backend != type(self).backend_name:
            raise ParameterError(
                f"{type(self).__name__} implements backend "
                f"{type(self).backend_name!r}, not {backend!r}"
            )
        self.params = params if params is not None else EncryptionParams.paper_defaults()
        self.tracker = tracker if tracker is not None else self._make_tracker()
        self.noise_model = NoiseModel(self.params)

    def _make_tracker(self) -> OpTracker:
        """The tracker this backend uses when the caller supplies none."""
        return OpTracker()

    # ------------------------------------------------------------------
    # Keys, encoding, encryption
    # ------------------------------------------------------------------

    def keygen(self) -> KeyPair:
        """Generate a fresh key pair at this context's security level."""
        return KeyPair.generate(self.params.security)

    def encode(self, bits: BitsLike) -> PlainVector:
        """Encode a bit vector as a plaintext packed vector."""
        vec = PlainVector(bits)
        self._check_width(vec.length)
        return vec

    def encrypt(self, bits: BitsLike, public_key: PublicKey) -> Ciphertext:
        """Encrypt a packed bit vector under ``public_key``."""
        arr = coerce_bits(bits)
        self._check_width(arr.size)
        node_id = self.tracker.record(OpKind.ENCRYPT)
        return Ciphertext(
            slots=arr.copy(),
            length=arr.size,
            key_id=public_key.key_id,
            noise=self.noise_model.fresh(),
            node_id=node_id,
        )

    def encrypt_plain(self, plain: PlainVector, public_key: PublicKey) -> Ciphertext:
        """Encrypt an already-encoded plaintext vector."""
        return self.encrypt(plain.to_array(), public_key)

    def decrypt(self, ct: Ciphertext, secret_key: SecretKey) -> np.ndarray:
        """Decrypt a ciphertext; fails on key mismatch or exhausted noise."""
        if secret_key.key_id != ct.key_id:
            raise KeyMismatchError(
                f"secret key {secret_key.key_id} cannot decrypt a ciphertext "
                f"under key {ct.key_id}"
            )
        self.noise_model.check_decryptable(ct.noise)
        self.tracker.record(OpKind.DECRYPT, parents=(ct.node_id,))
        return ct._payload()[: ct.length].copy()

    def decrypt_bits(self, ct: Ciphertext, secret_key: SecretKey) -> List[int]:
        """Decrypt to a list of Python ints (convenience)."""
        return self.decrypt(ct, secret_key).tolist()

    def adopt(self, ct: Ciphertext) -> Ciphertext:
        """Re-register a ciphertext produced under another context's tracker.

        The batched inference service encrypts a model once and evaluates
        it in many per-batch contexts, each with its own tracker.  A node
        id only has meaning inside the tracker that issued it, so before a
        foreign ciphertext can participate in this context's DAG it must be
        adopted: a zero-cost ``LOAD`` leaf is recorded and the ciphertext is
        re-wrapped with the new node id.  Key identity and noise state are
        preserved — adoption is bookkeeping, not an FHE operation.  The
        vector must still fit this context's SIMD slots, like every other
        ciphertext entering it.
        """
        self._check_width(ct.length)
        node_id = self.tracker.record(OpKind.LOAD)
        return self._wrap(
            ct._payload()[: ct.length].copy(), ct.key_id, ct.noise, node_id
        )

    # ------------------------------------------------------------------
    # Primitive homomorphic operations
    # ------------------------------------------------------------------

    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Slot-wise XOR of two ciphertexts (the paper's *Add*)."""
        self._check_compatible(a, b)
        noise = self.noise_model.after_add(a.noise, b.noise)
        data = np.bitwise_xor(a._payload()[: a.length], b._payload()[: b.length])
        node_id = self.tracker.record(OpKind.ADD, parents=(a.node_id, b.node_id))
        return self._wrap(data, a.key_id, noise, node_id)

    def const_add(self, a: Ciphertext, plain: PlainVector) -> Ciphertext:
        """XOR with a plaintext vector (the paper's *Constant Add*)."""
        self._check_plain_length(a, plain)
        noise = self.noise_model.after_const_add(a.noise)
        data = np.bitwise_xor(a._payload()[: a.length], plain.to_array())
        node_id = self.tracker.record(OpKind.CONST_ADD, parents=(a.node_id,))
        return self._wrap(data, a.key_id, noise, node_id)

    def multiply(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Slot-wise AND of two ciphertexts (the paper's *Multiply*).

        Consumes one multiplicative level (relinearize + modulus switch).
        """
        self._check_compatible(a, b)
        noise = self.noise_model.after_multiply(a.noise, b.noise)
        data = np.bitwise_and(a._payload()[: a.length], b._payload()[: b.length])
        node_id = self.tracker.record(OpKind.MULTIPLY, parents=(a.node_id, b.node_id))
        return self._wrap(data, a.key_id, noise, node_id)

    def const_mult(self, a: Ciphertext, plain: PlainVector) -> Ciphertext:
        """AND with a plaintext vector (plaintext-model configurations)."""
        self._check_plain_length(a, plain)
        noise = self.noise_model.after_const_mult(a.noise)
        data = np.bitwise_and(a._payload()[: a.length], plain.to_array())
        node_id = self.tracker.record(OpKind.CONST_MULT, parents=(a.node_id,))
        return self._wrap(data, a.key_id, noise, node_id)

    def rotate(self, a: Ciphertext, amount: int) -> Ciphertext:
        """Cyclic left rotation by ``amount`` slots (costs a key switch)."""
        if amount == 0:
            return a
        noise = self.noise_model.after_rotate(a.noise)
        data = np.roll(a._payload()[: a.length], -amount)
        node_id = self.tracker.record(OpKind.ROTATE, parents=(a.node_id,))
        return self._wrap(data, a.key_id, noise, node_id)

    def bootstrap(self, a: Ciphertext) -> Ciphertext:
        """Homomorphically re-encrypt, resetting the noise (Section 2.2.1).

        The ciphertext must still be decryptable: bootstrapping happens
        *before* the modulus chain runs out, not after.  The operation is
        two orders of magnitude more expensive than a multiply (see the
        cost model), which is why the paper's parameter sweep prefers a
        longer chain.
        """
        self.noise_model.check_decryptable(a.noise)
        data = a._payload()[: a.length].copy()
        node_id = self.tracker.record(OpKind.BOOTSTRAP, parents=(a.node_id,))
        # A bootstrapped ciphertext is almost fresh: the re-encryption
        # circuit itself leaves a small noise residue.
        from repro.fhe.noise import NoiseState

        return self._wrap(data, a.key_id, NoiseState(level=0, slack=0.1), node_id)

    def depth_headroom(self, a: Ciphertext) -> int:
        """Multiplicative levels remaining before ``a`` stops decrypting."""
        return self.noise_model.capacity - a.noise.effective_depth

    # ------------------------------------------------------------------
    # Shape helpers for the Halevi-Shoup matrix product
    # ------------------------------------------------------------------

    def cyclic_extend(self, a: Ciphertext, length: int) -> Ciphertext:
        """Tile a ciphertext's logical vector cyclically to ``length`` slots.

        Used when a matrix has more rows than columns (Section 4.1.2: "v is
        cyclically extended").  In HElib this is rotations and additions
        under masks; we charge one rotation when actual work is done.
        """
        if length == a.length:
            return a
        if length < a.length:
            raise SlotCapacityError(
                f"cyclic_extend target {length} is shorter than the vector "
                f"({a.length}); use truncate instead"
            )
        self._check_width(length)
        reps = -(-length // a.length)
        data = np.tile(a._payload()[: a.length], reps)[:length]
        noise = self.noise_model.after_rotate(a.noise)
        node_id = self.tracker.record(OpKind.ROTATE, parents=(a.node_id,))
        return self._wrap(data, a.key_id, noise, node_id)

    def truncate(self, a: Ciphertext, length: int) -> Ciphertext:
        """Restrict the logical length (free: slots beyond are ignored)."""
        if length == a.length:
            return a
        if length > a.length:
            raise SlotCapacityError(
                f"cannot truncate a vector of length {a.length} to {length}"
            )
        data = a._payload()[:length].copy()
        return self._wrap(data, a.key_id, a.noise, a.node_id)

    # ------------------------------------------------------------------
    # Mixed plain/cipher dispatch
    # ------------------------------------------------------------------

    def xor_any(self, a: Vector, b: Vector) -> Vector:
        """XOR where either operand may be plaintext.

        plain (+) plain stays plaintext and costs nothing — this is how the
        plaintext-model configuration (Maurice = Sally, Section 8.3) gets
        its speedup.
        """
        if isinstance(a, Ciphertext) and isinstance(b, Ciphertext):
            return self.add(a, b)
        if isinstance(a, Ciphertext):
            return self.const_add(a, b)
        if isinstance(b, Ciphertext):
            return self.const_add(b, a)
        return PlainVector(np.bitwise_xor(a.to_array(), b.to_array()))

    def and_any(self, a: Vector, b: Vector) -> Vector:
        """AND where either operand may be plaintext."""
        if isinstance(a, Ciphertext) and isinstance(b, Ciphertext):
            return self.multiply(a, b)
        if isinstance(a, Ciphertext):
            return self.const_mult(a, b)
        if isinstance(b, Ciphertext):
            return self.const_mult(b, a)
        return PlainVector(np.bitwise_and(a.to_array(), b.to_array()))

    def rotate_any(self, a: Vector, amount: int) -> Vector:
        """Rotation where the operand may be plaintext (then free)."""
        if isinstance(a, Ciphertext):
            return self.rotate(a, amount)
        return a.rotated(amount)

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------

    def multiply_all(self, vectors: Sequence[Vector]) -> Vector:
        """Balanced product tree: AND of all vectors in log depth.

        This is the accumulation step of Algorithm 1 (``MultAll``); the
        balanced pairing keeps the multiplicative depth at ``ceil(log2 n)``
        rather than ``n - 1``.
        """
        if not vectors:
            raise DomainError("multiply_all requires at least one vector")
        layer = list(vectors)
        while len(layer) > 1:
            nxt: List[Vector] = []
            for i in range(0, len(layer) - 1, 2):
                nxt.append(self.and_any(layer[i], layer[i + 1]))
            if len(layer) % 2 == 1:
                nxt.append(layer[-1])
            layer = nxt
        return layer[0]

    def xor_all(self, vectors: Sequence[Vector]) -> Vector:
        """XOR of all vectors (balanced for symmetry; XOR is depth-free)."""
        if not vectors:
            raise DomainError("xor_all requires at least one vector")
        layer = list(vectors)
        while len(layer) > 1:
            nxt: List[Vector] = []
            for i in range(0, len(layer) - 1, 2):
                nxt.append(self.xor_any(layer[i], layer[i + 1]))
            if len(layer) % 2 == 1:
                nxt.append(layer[-1])
            layer = nxt
        return layer[0]

    def ones(self, length: int) -> PlainVector:
        """All-ones plaintext vector (the constant for logical NOT)."""
        self._check_width(length)
        return PlainVector(np.ones(length, dtype=np.uint8))

    def zeros(self, length: int) -> PlainVector:
        """All-zeros plaintext vector."""
        self._check_width(length)
        return PlainVector(np.zeros(length, dtype=np.uint8))

    def negate(self, a: Vector) -> Vector:
        """Logical NOT: XOR with the all-ones constant."""
        return self.xor_any(a, self.ones(len(a)))

    # ------------------------------------------------------------------
    # Internal checks
    # ------------------------------------------------------------------

    def _wrap(self, data: np.ndarray, key_id, noise, node_id) -> Ciphertext:
        return Ciphertext(
            slots=data, length=data.size, key_id=key_id, noise=noise, node_id=node_id
        )

    def _check_width(self, width: int) -> None:
        if not self.params.supports_width(width):
            raise SlotCapacityError(
                f"vector of width {width} does not fit in "
                f"{self.params.slot_count} SIMD slots ({self.params.describe()})"
            )

    def _check_compatible(self, a: Ciphertext, b: Ciphertext) -> None:
        if a.key_id != b.key_id:
            raise KeyMismatchError(
                f"cannot combine ciphertexts under keys {a.key_id} and {b.key_id}"
            )
        if a.length != b.length:
            raise SlotCapacityError(
                f"cannot combine ciphertexts of lengths {a.length} and {b.length}"
            )

    def _check_plain_length(self, a: Ciphertext, plain: PlainVector) -> None:
        if a.length != plain.length:
            raise SlotCapacityError(
                f"ciphertext length {a.length} does not match plaintext "
                f"length {plain.length}"
            )


def _register_builtin() -> None:
    """Idempotent registration hook (import time + on-demand restore)."""
    register_backend_if_missing(
        "reference",
        FheContext,
        description="full-fidelity simulator: per-op noise states and a "
        "complete dependency-DAG tracker (work/span, traces)",
    )


_register_builtin()
