"""Encryption parameters for the BGV-style simulator.

The paper (Table 5) configures HElib with three knobs:

* **security parameter** — bits of security; larger means bigger ciphertexts
  (slower) and a deeper tolerable circuit for a fixed modulus chain,
* **bits** — the size of the modulus chain, which bounds the multiplicative
  depth the circuit may reach before decryption fails,
* **columns** — the number of columns in the key-switching matrices, which
  in HElib constrains the available SIMD vector widths.

The paper's sweep found one dominant setting: security 128, 400 bits,
3 columns.  :func:`EncryptionParams.paper_defaults` returns exactly that.

This module converts those knobs into simulator-level quantities:

* ``slot_count`` — SIMD width of one ciphertext (``SLOTS_PER_COLUMN`` per
  key-switching column, mirroring how HElib's width options grow with the
  column count),
* ``depth_capacity`` — how many multiplicative levels the modulus chain
  supports (see :mod:`repro.fhe.noise`),
* ``size_factor`` — relative ciphertext size, which the cost model uses to
  scale per-operation costs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError

#: SIMD slots contributed by each key-switching column.  HElib's usable
#: slot count depends on the factorization of the cyclotomic ring; 320 is
#: chosen so the Table 5 sweep's feasibility frontier (3 columns needed
#: for the largest real-world model, income15, whose padded threshold
#: vector is ~730 slots wide) matches the paper's chosen parameters.  See
#: EXPERIMENTS.md.
SLOTS_PER_COLUMN = 320

#: Modulus bits consumed before any multiplication happens (key material,
#: fresh-encryption noise).
BASE_NOISE_BITS = 64

#: Extra modulus bits consumed by one multiplicative level at the reference
#: security level (128).  Stronger security consumes more bits per level.
BITS_PER_LEVEL_AT_128 = 24

#: Reference values used to normalize the cost model's ``size_factor``.
REFERENCE_SECURITY = 128
REFERENCE_BITS = 400
REFERENCE_COLUMNS = 3

#: Security levels the simulator accepts (mirroring common lattice presets).
SUPPORTED_SECURITY_LEVELS = (80, 128, 192, 256)


@dataclass(frozen=True)
class EncryptionParams:
    """Immutable encryption-parameter set.

    Parameters
    ----------
    security:
        Bits of security.  Must be one of :data:`SUPPORTED_SECURITY_LEVELS`.
    bits:
        Size of the modulus chain in bits.  Bounds multiplicative depth.
    columns:
        Number of key-switching columns.  Determines the SIMD slot count.
    """

    security: int = 128
    bits: int = 400
    columns: int = 3

    def __post_init__(self) -> None:
        if self.security not in SUPPORTED_SECURITY_LEVELS:
            raise ParameterError(
                f"unsupported security level {self.security}; "
                f"choose one of {SUPPORTED_SECURITY_LEVELS}"
            )
        if self.bits <= BASE_NOISE_BITS:
            raise ParameterError(
                f"modulus chain of {self.bits} bits is too small; "
                f"at least {BASE_NOISE_BITS + 1} bits are required"
            )
        if self.columns < 1:
            raise ParameterError("at least one key-switching column is required")
        if self.columns > 16:
            raise ParameterError("more than 16 key-switching columns is unsupported")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def slot_count(self) -> int:
        """SIMD width of a single packed ciphertext."""
        return SLOTS_PER_COLUMN * self.columns

    @property
    def bits_per_level(self) -> float:
        """Modulus bits consumed per multiplicative level.

        Scales linearly with the security level: stronger security needs a
        larger ciphertext modulus per level of homomorphic capacity.
        """
        return BITS_PER_LEVEL_AT_128 * (self.security / REFERENCE_SECURITY)

    @property
    def depth_capacity(self) -> int:
        """Maximum multiplicative depth the modulus chain supports."""
        usable = self.bits - BASE_NOISE_BITS
        return max(0, int(usable / self.bits_per_level))

    @property
    def size_factor(self) -> float:
        """Relative ciphertext size versus the paper's Table 5 setting.

        Ciphertext size (and hence per-operation cost) grows with both the
        modulus-chain length and the ring dimension implied by the security
        level and slot count.
        """
        bits_ratio = self.bits / REFERENCE_BITS
        ring_ratio = (self.security / REFERENCE_SECURITY) * (
            self.columns / REFERENCE_COLUMNS
        )
        return bits_ratio * ring_ratio

    # ------------------------------------------------------------------
    # Presets and sweeps
    # ------------------------------------------------------------------

    @staticmethod
    def paper_defaults() -> "EncryptionParams":
        """The dominant parameter set from Table 5 of the paper."""
        return EncryptionParams(security=128, bits=400, columns=3)

    def supports_depth(self, depth: int) -> bool:
        """Whether a circuit of the given multiplicative depth decrypts."""
        return depth <= self.depth_capacity

    def supports_width(self, width: int) -> bool:
        """Whether a logical vector of ``width`` slots fits in a ciphertext."""
        return 0 < width <= self.slot_count

    def describe(self) -> str:
        """Human-readable one-line summary (used by reports and examples)."""
        return (
            f"security={self.security} bits={self.bits} columns={self.columns} "
            f"(slots={self.slot_count}, depth capacity={self.depth_capacity})"
        )


#: Singleton instance of the paper's Table 5 parameters.
PAPER_PARAMS = EncryptionParams.paper_defaults()


def parameter_grid(
    security_levels=(80, 128, 192),
    bits_options=(200, 300, 400, 500, 600),
    columns_options=(1, 2, 3, 4),
):
    """Enumerate the sweep grid used by the Table 5 reproduction.

    Yields every valid :class:`EncryptionParams` combination; invalid
    combinations (none with the default grid) are skipped.
    """
    for security in security_levels:
        for bits in bits_options:
            for columns in columns_options:
                try:
                    yield EncryptionParams(security, bits, columns)
                except ParameterError:
                    continue
