"""BGV-style leveled FHE simulator with ciphertext packing.

This subpackage stands in for HElib in the original COPSE stack.  It is a
*functional and cost-accurate* simulator, not a cryptographic library: the
plaintext values are retained inside :class:`~repro.fhe.ciphertext.Ciphertext`
objects (tagged with the encrypting key so wrong-key use fails), while every
homomorphic operation is

* executed with packed-vector semantics (slot-wise XOR / AND over GF(2),
  cyclic rotation),
* charged against a noise budget derived from the modulus-chain size, so a
  circuit whose multiplicative depth exceeds what the parameters support
  fails deterministically, exactly where a real BGV evaluation would stop
  decrypting, and
* recorded in an operation DAG (:class:`~repro.fhe.tracker.OpTracker`) from
  which the cost model derives sequential time (total work) and multithreaded
  time (work–span scheduling), reproducing the paper's performance shapes.

Public API::

    from repro.fhe import EncryptionParams, FheContext

    params = EncryptionParams.paper_defaults()
    ctx = FheContext(params)
    keys = ctx.keygen()
    ct = ctx.encrypt([1, 0, 1, 1], keys.public)
    ct2 = ctx.multiply(ct, ct)
    bits = ctx.decrypt(ct2, keys.secret)
"""

from repro.fhe.params import EncryptionParams, PAPER_PARAMS
from repro.fhe.noise import NoiseModel, NoiseState
from repro.fhe.keys import KeyPair, PublicKey, SecretKey
from repro.fhe.ciphertext import Ciphertext, PlainVector
from repro.fhe.context import FheContext
from repro.fhe.backend import (
    FheBackend,
    available_backends,
    backend_description,
    canonical_backend_name,
    default_backend,
    get_backend,
    register_backend,
    resolve_backend,
    unregister_backend,
)
from repro.fhe.vector import PlaintextFheContext, VectorFheContext
from repro.fhe.tracker import CountingTracker, OpKind, OpTracker, PhaseStats
from repro.fhe.costmodel import CostModel, TimingEstimate
from repro.fhe.ahe import AheCiphertext, AheContext
from repro.fhe.multikey import (
    JointKey,
    PartialDecryption,
    SecretShare,
    combine_partials,
    partial_decrypt,
    threshold_keygen,
)

__all__ = [
    "EncryptionParams",
    "PAPER_PARAMS",
    "NoiseModel",
    "NoiseState",
    "KeyPair",
    "PublicKey",
    "SecretKey",
    "Ciphertext",
    "PlainVector",
    "FheContext",
    "FheBackend",
    "VectorFheContext",
    "PlaintextFheContext",
    "available_backends",
    "backend_description",
    "canonical_backend_name",
    "default_backend",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "unregister_backend",
    "CountingTracker",
    "OpKind",
    "OpTracker",
    "PhaseStats",
    "CostModel",
    "TimingEstimate",
    "AheContext",
    "AheCiphertext",
    "JointKey",
    "SecretShare",
    "PartialDecryption",
    "threshold_keygen",
    "partial_decrypt",
    "combine_partials",
]
