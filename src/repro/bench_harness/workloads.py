"""The benchmark model suite: Table 6 microbenchmarks + real-world models.

The microbenchmarks come straight from
:data:`repro.forest.synthetic.MICROBENCHMARKS`.  The real-world models
mirror the paper's income5/15 and soccer5/15: random forests of 5 or 15
trees trained (with our CART trainer) on the synthetic census-income and
soccer stand-in datasets.  The ``min_samples_leaf`` settings were chosen
so the resulting model statistics put simulated COPSE inference times in
the same range the paper reports (income5 ~0.5 s, income15 ~1.5 s,
soccer below income at equal tree counts); see EXPERIMENTS.md.

Workloads cache their trained forest and compiled model so repeated
benchmark invocations do not re-train.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.core.compiler import CompiledModel, CopseCompiler
from repro.forest.datasets import make_income_dataset, make_soccer_dataset
from repro.forest.forest import DecisionForest
from repro.forest.synthetic import MICROBENCHMARKS
from repro.forest.train import RandomForestTrainer

#: Queries per benchmark, as in the paper ("we performed 27 inference
#: queries ... we report the median running time").
PAPER_QUERY_COUNT = 27

#: Thread count of the paper's multithreaded runs.
PAPER_THREAD_COUNT = 32

#: Training configuration per real-world model: (dataset builder, samples,
#: trees, min_samples_leaf).  Depth 8 throughout; one random feature per
#: split (extra-trees-style subsampling) so feature multiplicities spread
#: as they do in scikit-learn forests — concentrated multiplicities blow
#: up the padded threshold width ``q = K * n`` (see EXPERIMENTS.md).
_REAL_WORLD_SPECS = {
    "income5": (make_income_dataset, 3000, 5, 8),
    "income15": (make_income_dataset, 3000, 15, 8),
    "soccer5": (make_soccer_dataset, 2000, 5, 30),
    "soccer15": (make_soccer_dataset, 2000, 15, 26),
}

_REAL_WORLD_MAX_DEPTH = 8
_REAL_WORLD_MAX_FEATURES = 1
_REAL_WORLD_SEED = 42


@dataclass
class Workload:
    """One benchmark model, with lazy forest construction/compilation."""

    name: str
    category: str  # "micro" or "real"
    precision: int
    _builder: object = field(repr=False)
    _forest: Optional[DecisionForest] = field(default=None, repr=False)
    _compiled: Optional[CompiledModel] = field(default=None, repr=False)

    @property
    def forest(self) -> DecisionForest:
        if self._forest is None:
            self._forest = self._builder()
        return self._forest

    @property
    def compiled(self) -> CompiledModel:
        if self._compiled is None:
            self._compiled = CopseCompiler(precision=self.precision).compile(
                self.forest
            )
        return self._compiled

    def query_features(self, count: int, seed: int = 1234) -> List[List[int]]:
        """Deterministic random feature vectors for this workload."""
        rng = np.random.default_rng(seed)
        limit = 1 << self.precision
        return [
            [int(v) for v in rng.integers(0, limit, self.forest.n_features)]
            for _ in range(count)
        ]

    def describe(self) -> str:
        return f"{self.name} ({self.category}): {self.forest.describe()}"


def _micro_builder(spec):
    return spec.build


def _real_builder(dataset_fn, samples: int, trees: int, min_samples_leaf: int):
    def build() -> DecisionForest:
        dataset = dataset_fn(n_samples=samples)
        trainer = RandomForestTrainer(
            n_trees=trees,
            max_depth=_REAL_WORLD_MAX_DEPTH,
            min_samples_leaf=min_samples_leaf,
            max_features=_REAL_WORLD_MAX_FEATURES,
            seed=_REAL_WORLD_SEED,
        )
        return trainer.fit(
            dataset.features,
            dataset.labels,
            dataset.label_names,
            dataset.feature_names,
        )

    return build


def microbenchmark_workloads() -> List[Workload]:
    """The eight Table 6 microbenchmarks, in the paper's order."""
    return [
        Workload(
            name=spec.name,
            category="micro",
            precision=spec.precision,
            _builder=_micro_builder(spec),
        )
        for spec in MICROBENCHMARKS
    ]


def real_world_workloads() -> List[Workload]:
    """The four real-world models, in the paper's figure order."""
    out: List[Workload] = []
    for name in ("soccer5", "income5", "soccer15", "income15"):
        dataset_fn, samples, trees, msl = _REAL_WORLD_SPECS[name]
        out.append(
            Workload(
                name=name,
                category="real",
                precision=8,
                _builder=_real_builder(dataset_fn, samples, trees, msl),
            )
        )
    return out


def all_workloads() -> List[Workload]:
    """Micro then real-world, the order of the paper's figures."""
    return microbenchmark_workloads() + real_world_workloads()


_CACHE: Dict[str, Workload] = {}


def workload_by_name(name: str) -> Workload:
    """Fetch a workload by name, cached across calls."""
    if name not in _CACHE:
        for workload in all_workloads():
            _CACHE.setdefault(workload.name, workload)
        if name not in _CACHE:
            known = ", ".join(w.name for w in all_workloads())
            raise ValidationError(f"unknown workload {name!r}; known: {known}")
    return _CACHE[name]


def cached_workloads(names: Optional[Sequence[str]] = None) -> List[Workload]:
    """Workloads by name (all by default), sharing the module cache."""
    if names is None:
        names = [w.name for w in all_workloads()]
    return [workload_by_name(n) for n in names]
