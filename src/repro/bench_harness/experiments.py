"""One entry point per artifact of the paper's evaluation (Section 8).

Every function returns :class:`~repro.bench_harness.report.Table` (or a
list of them) whose rows mirror the corresponding paper figure/table:

========  ==========================================================
figure6   COPSE vs baseline speedup, single-threaded (5-7x, gm ~6x)
figure7   multithreaded vs single-threaded COPSE speedup
figure8   COPSE vs baseline speedup, both multithreaded
figure9   plaintext-model vs encrypted-model speedup (~1.4x)
figure10  per-phase runtime breakdowns vs depth / branches / precision
table1    per-step op counts: measured vs our formulas vs the paper's
table2    total op counts and multiplicative depth
table5    encryption-parameter sweep and the dominant setting
table6    the microbenchmark suite's structural statistics
========  ==========================================================

Results are memoized per (workload, configuration) within the process, so
regenerating several figures shares runs.  ``queries`` defaults to 3 to
keep test/benchmark runs quick; pass ``queries=27`` for the paper's full
median protocol (the circuits are input-independent, so the timings are
identical — see runner.py).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.complexity import (
    CopseComplexity,
    impl_accumulation,
    impl_comparison,
    impl_levels_shared,
    impl_reshuffle,
    impl_single_level,
    merge_counts,
    paper_accumulation,
    paper_comparison,
    paper_single_level,
    paper_total,
    paper_total_depth,
)
from repro.core.compiler import CopseCompiler
from repro.fhe.backend import canonical_backend_name
from repro.fhe.params import EncryptionParams, parameter_grid
from repro.bench_harness.report import Series, Table, geometric_mean
from repro.bench_harness.runner import (
    ExperimentRecord,
    InferenceRunner,
    RunnerConfig,
    SYSTEM_BASELINE,
    SYSTEM_COPSE,
)
from repro.bench_harness.workloads import (
    MICROBENCHMARKS,
    PAPER_THREAD_COUNT,
    Workload,
    cached_workloads,
)

_RECORD_CACHE: Dict[Tuple, ExperimentRecord] = {}


def _run(
    workload: Workload,
    system: str,
    queries: int,
    threads: int = 1,
    encrypted_model: bool = True,
) -> ExperimentRecord:
    # The effective FHE backend (the process default unless a config
    # overrides it) is part of the memo key: a record produced under
    # one backend must never be served to a run under another.
    backend = canonical_backend_name()
    key = (workload.name, system, queries, threads, encrypted_model, backend)
    if key not in _RECORD_CACHE:
        config = RunnerConfig(
            system=system,
            queries=queries,
            threads=threads,
            encrypted_model=encrypted_model,
            backend=backend,
        )
        _RECORD_CACHE[key] = InferenceRunner(workload, config).run()
    return _RECORD_CACHE[key]


def _workloads(names: Optional[Sequence[str]]) -> List[Workload]:
    return cached_workloads(names)


def _append_geomeans(table: Table, speedup_col: str) -> None:
    """Add the paper's micro / real-world geomean summary rows."""
    idx = table.columns.index(speedup_col)
    micro = [r[idx] for r in table.rows if r[-1] == "micro"]
    real = [r[idx] for r in table.rows if r[-1] == "real"]
    if micro:
        table.add_note(f"geomean (micro-bench): {geometric_mean(micro):.2f}x")
    if real:
        table.add_note(f"geomean (real-world): {geometric_mean(real):.2f}x")


# ---------------------------------------------------------------------------
# Figures 6-9
# ---------------------------------------------------------------------------


def figure6(
    queries: int = 3, workload_names: Optional[Sequence[str]] = None
) -> Table:
    """Single-threaded COPSE speedup over the Aloufi baseline."""
    table = Table(
        title="Figure 6: COPSE vs Aloufi et al., single-threaded",
        columns=[
            "model",
            "copse_ms",
            "baseline_ms",
            "speedup",
            "category",
        ],
    )
    for workload in _workloads(workload_names):
        copse = _run(workload, SYSTEM_COPSE, queries)
        base = _run(workload, SYSTEM_BASELINE, queries)
        table.add_row(
            workload.name,
            copse.median_ms,
            base.median_ms,
            base.median_ms / copse.median_ms,
            workload.category,
        )
    _append_geomeans(table, "speedup")
    return table


def figure7(
    queries: int = 3, workload_names: Optional[Sequence[str]] = None
) -> Table:
    """Multithreaded COPSE speedup over single-threaded COPSE."""
    table = Table(
        title="Figure 7: COPSE multithreaded vs single-threaded",
        columns=[
            "model",
            "single_ms",
            "multi_ms",
            "speedup",
            "category",
        ],
    )
    for workload in _workloads(workload_names):
        single = _run(workload, SYSTEM_COPSE, queries, threads=1)
        multi = _run(
            workload, SYSTEM_COPSE, queries, threads=PAPER_THREAD_COUNT
        )
        table.add_row(
            workload.name,
            single.median_ms,
            multi.median_ms,
            single.median_ms / multi.median_ms,
            workload.category,
        )
    _append_geomeans(table, "speedup")
    return table


def figure8(
    queries: int = 3, workload_names: Optional[Sequence[str]] = None
) -> Table:
    """COPSE speedup over the baseline when both are multithreaded."""
    table = Table(
        title="Figure 8: COPSE vs Aloufi et al., both multithreaded",
        columns=[
            "model",
            "copse_ms",
            "baseline_ms",
            "speedup",
            "category",
        ],
    )
    for workload in _workloads(workload_names):
        copse = _run(
            workload, SYSTEM_COPSE, queries, threads=PAPER_THREAD_COUNT
        )
        base = _run(
            workload, SYSTEM_BASELINE, queries, threads=PAPER_THREAD_COUNT
        )
        table.add_row(
            workload.name,
            copse.median_ms,
            base.median_ms,
            base.median_ms / copse.median_ms,
            workload.category,
        )
    _append_geomeans(table, "speedup")
    return table


def figure9(
    queries: int = 3,
    workload_names: Optional[Sequence[str]] = None,
    threads: int = 1,
) -> Table:
    """Plaintext-model (Maurice = Sally) vs encrypted-model inference.

    Sequential by default, which reproduces the paper's headline "roughly
    1.4x" claim; pass ``threads=32`` for the multithreaded variant the
    paper's bar annotations (~10 ms) correspond to (there, synchronization
    overhead compresses the microbenchmark ratios toward 1).
    """
    table = Table(
        title="Figure 9: plaintext vs encrypted model inference",
        columns=[
            "model",
            "encrypted_ms",
            "plaintext_ms",
            "speedup",
            "category",
        ],
    )
    for workload in _workloads(workload_names):
        encrypted = _run(
            workload, SYSTEM_COPSE, queries, threads=threads, encrypted_model=True
        )
        plaintext = _run(
            workload, SYSTEM_COPSE, queries, threads=threads, encrypted_model=False
        )
        table.add_row(
            workload.name,
            encrypted.median_ms,
            plaintext.median_ms,
            encrypted.median_ms / plaintext.median_ms,
            workload.category,
        )
    _append_geomeans(table, "speedup")
    return table


# ---------------------------------------------------------------------------
# Figure 10: per-phase breakdowns
# ---------------------------------------------------------------------------

_FIG10_FAMILIES = {
    "a (depth)": ("depth4", "depth5", "depth6"),
    "b (branches)": ("width55", "width78", "width677"),
    "c (precision)": ("prec8", "prec16"),
}

_COPSE_PHASE_COLUMNS = ("comparison", "reshuffle", "levels", "accumulate")


def figure10(queries: int = 1) -> List[Table]:
    """Per-phase runtime breakdown across the microbenchmark families."""
    tables: List[Table] = []
    for family, names in _FIG10_FAMILIES.items():
        table = Table(
            title=f"Figure 10{family}: per-phase runtime (ms)",
            columns=["model"] + [f"{p}_ms" for p in _COPSE_PHASE_COLUMNS]
            + ["total_ms"],
        )
        for workload in _workloads(names):
            record = _run(workload, SYSTEM_COPSE, queries)
            phases = [record.phase_ms[p] for p in _COPSE_PHASE_COLUMNS]
            table.add_row(workload.name, *phases, sum(phases))
        tables.append(table)
    return tables


def figure10_series(queries: int = 1) -> List[Series]:
    """The same data as :func:`figure10`, one series per (family, phase)."""
    series: List[Series] = []
    for family, names in _FIG10_FAMILIES.items():
        for phase in _COPSE_PHASE_COLUMNS:
            s = Series(
                name=f"fig10{family}:{phase}",
                x_label=family,
                y_label="ms",
            )
            for workload in _workloads(names):
                record = _run(workload, SYSTEM_COPSE, queries)
                s.add_point(workload.name, record.phase_ms[phase])
            series.append(s)
    return series


# ---------------------------------------------------------------------------
# Tables 1, 2: complexity validation
# ---------------------------------------------------------------------------


def table1(workload_name: str = "width78", queries: int = 1) -> List[Table]:
    """Per-step op counts: measured vs implementation vs paper formulas."""
    workload = _workloads([workload_name])[0]
    compiled = workload.compiled
    p = compiled.precision
    b = compiled.branching
    q = compiled.quantized_branching
    d = compiled.max_depth

    rec = _run(workload, SYSTEM_COPSE, queries)

    steps = [
        (
            "(a) comparison",
            "comparison",
            impl_comparison(p),
            paper_comparison(p),
        ),
        (
            "(b) one level (x d)",
            None,
            impl_single_level(b),
            paper_single_level(b),
        ),
        (
            "(c) accumulation",
            "accumulate",
            impl_accumulation(d),
            paper_accumulation(d),
        ),
    ]
    tables: List[Table] = []
    for title, _, impl, paper in steps:
        table = Table(
            title=f"Table 1{title} — p={p} b={b} q={q} d={d}",
            columns=["op", "impl_formula", "paper_formula"],
        )
        for op in sorted(set(impl) | set(paper)):
            table.add_row(op, impl.get(op, 0), paper.get(op, 0))
        tables.append(table)
    # Measured per-phase counts for the record.
    measured = Table(
        title=f"Table 1 (measured phase counts) — {workload.name}",
        columns=["phase", "counts"],
    )
    for phase, ms in rec.phase_ms.items():
        measured.add_row(phase, f"{ms:.2f} ms")
    tables.append(measured)
    return tables


def table2(workload_name: str = "width78", queries: int = 1) -> Table:
    """Total evaluation complexity: measured vs formulas, plus depth."""
    workload = _workloads([workload_name])[0]
    compiled = workload.compiled
    record = _run(workload, SYSTEM_COPSE, queries)
    complexity = CopseComplexity(
        precision=compiled.precision,
        branching=compiled.branching,
        quantized_branching=compiled.quantized_branching,
        max_depth=compiled.max_depth,
    )
    impl = complexity.impl_counts()
    paper = paper_total(
        compiled.precision,
        compiled.quantized_branching,
        compiled.max_depth,
        compiled.branching,
    )
    table = Table(
        title=f"Table 2: total evaluation complexity — {workload.name}",
        columns=["op", "measured", "impl_formula", "paper_formula"],
    )
    for op in sorted(set(record.op_counts) | set(impl) | set(paper)):
        table.add_row(
            op,
            record.op_counts.get(op, 0),
            impl.get(op, 0),
            paper.get(op, 0),
        )
    table.add_row(
        "mult_depth",
        record.multiplicative_depth,
        complexity.impl_depth(),
        paper_total_depth(compiled.precision, compiled.max_depth),
    )
    return table


# ---------------------------------------------------------------------------
# Table 5: encryption-parameter sweep
# ---------------------------------------------------------------------------


def table5(
    workload_names: Optional[Sequence[str]] = None,
    min_security: int = 128,
) -> Table:
    """Sweep encryption parameters; report feasibility and the winner.

    Feasibility covers every benchmark model (by default the full suite:
    the deepest circuit is prec16, the widest is income15) — the paper's
    finding is that a single setting dominates all models.
    """
    workloads = _workloads(workload_names)
    need_depth = max(w.compiled.multiplicative_depth for w in workloads)
    need_width = max(w.compiled.required_width() for w in workloads)

    table = Table(
        title="Table 5: encryption-parameter sweep",
        columns=[
            "security",
            "bits",
            "columns",
            "depth_cap",
            "slots",
            "feasible",
            "rel_cost",
        ],
    )
    feasible: List[EncryptionParams] = []
    for params in parameter_grid():
        ok = (
            params.security >= min_security
            and params.supports_depth(need_depth)
            and params.supports_width(need_width)
        )
        if ok:
            feasible.append(params)
        table.add_row(
            params.security,
            params.bits,
            params.columns,
            params.depth_capacity,
            params.slot_count,
            "yes" if ok else "no",
            params.size_factor,
        )
    if not feasible:
        table.add_note("no feasible parameters found")
        return table
    best = min(feasible, key=lambda p: (p.size_factor, p.bits, p.columns))
    table.add_note(
        f"needs depth {need_depth}, width {need_width}; dominant setting: "
        f"security={best.security} bits={best.bits} columns={best.columns} "
        f"(paper: 128 / 400 / 3)"
    )
    return table


def selected_parameters(
    workload_names: Optional[Sequence[str]] = None,
) -> EncryptionParams:
    """The sweep winner as an :class:`EncryptionParams` (used by tests)."""
    workloads = _workloads(workload_names)
    compiler = CopseCompiler()
    best = None
    for workload in workloads:
        choice = compiler.select_parameters(workload.compiled)
        if best is None or choice.size_factor > best.size_factor:
            best = choice
    # The per-model winners can differ; the dominant setting must satisfy
    # every model, so take the most expensive per-model winner and verify.
    for workload in workloads:
        workload.compiled.check_parameters(best)
    return best


# ---------------------------------------------------------------------------
# Serving throughput: batched vs unbatched inference
# ---------------------------------------------------------------------------


def throughput(
    workload_name: str = "width78",
    queries: int = 16,
    threads: int = 2,
    batch_size: Optional[int] = None,
) -> Table:
    """Batched-service throughput versus the unbatched per-query path.

    The unbatched row is the paper's protocol (one ``secure_inference``
    per query, model re-encrypted every time); the batched row routes the
    same queries through :class:`repro.serve.CopseService`, which
    encrypts the model once and packs queries into shared SIMD slots.
    Both report simulated inference time over the four pipeline stages,
    so the comparison isolates the packing amortization.
    """
    from repro.serve import CopseService

    workload = _workloads([workload_name])[0]
    unbatched = _run(workload, SYSTEM_COPSE, queries=min(queries, 3))

    with CopseService(threads=threads) as service:
        registered = service.register_model(
            workload.name, workload.compiled, max_batch_size=batch_size
        )
        feature_lists = workload.query_features(queries)
        results = service.classify_many(workload.name, feature_lists)
        stats = service.stats()

    correct = all(r.oracle_ok for r in results)
    unbatched_qps = (
        1000.0 / unbatched.median_ms if unbatched.median_ms > 0 else 0.0
    )
    table = Table(
        title=f"Serving throughput — {workload.name} ({queries} queries)",
        columns=[
            "mode",
            "batches",
            "batch_capacity",
            "ms_per_query",
            "queries_per_sec",
            "oracle",
        ],
    )
    table.add_row(
        "unbatched",
        queries,
        1,
        unbatched.median_ms,
        unbatched_qps,
        "ok" if unbatched.correct else "MISMATCH",
    )
    table.add_row(
        f"batched x{threads} workers",
        stats.batches,
        registered.batch_capacity,
        stats.amortized_ms_per_query,
        stats.throughput_qps,
        "ok" if correct else "MISMATCH",
    )
    if stats.amortized_ms_per_query > 0:
        table.add_note(
            f"amortization: {unbatched.median_ms / stats.amortized_ms_per_query:.1f}x "
            f"cheaper per query (avg batch fill "
            f"{stats.avg_batch_fill:.2f}, one-time setup "
            f"{stats.setup_ms:.0f} ms)"
        )
    return table


# ---------------------------------------------------------------------------
# Soak: deadline-aware scheduling under simulated load
# ---------------------------------------------------------------------------


def soak(
    workload_name: str = "width78",
    queries: int = 2000,
    threads: int = 4,
    load_factors: Sequence[float] = (0.3, 0.6, 0.9, 1.2, 1.8),
    deadline_factor: float = 2.0,
    seed: int = 4242,
) -> Table:
    """Latency and deadline-miss rate versus offered load, simulated.

    One row per load factor (mean worker utilization the arrival rates
    imply).  The model is registered once — its batch capacity and
    analyzed plan cost become the simulator's
    :class:`~repro.serve.loadgen.ModelProfile` — then each row replays
    ``queries`` seeded arrivals (three tenants: two Poisson, one
    bursty, all with deadline ``deadline_factor`` x the batch service
    time) through the production scheduler core under a virtual clock,
    with a mid-run worker crash and periodic slow batches injected.

    Everything is virtual-clock deterministic: same seed, same table,
    byte for byte.  The miss-rate curve has three regimes worth reading:
    at low load partial batches deliberately wait out their deadline
    slack (so slow batches push the tail over), at moderate load batches
    fill before slack expires (the sweet spot), and at overload queueing
    delay grows until admission control starts shedding — the
    ``rejected`` column — which caps latency for the queries it admits.
    """
    from repro.errors import ValidationError
    from repro.serve import (
        FaultPlan,
        ModelProfile,
        SimRunner,
        TenantSpec,
        generate_arrivals,
        offered_load,
    )
    from repro.serve.registry import ModelRegistry
    from repro.serve.simclock import MS

    if queries < 1:
        raise ValidationError(f"soak needs at least one query, got {queries}")
    if threads < 1:
        raise ValidationError(f"soak needs at least one worker, got {threads}")

    workload = _workloads([workload_name])[0]
    registered = ModelRegistry().register(
        f"soak-{workload.name}", workload.compiled,
        params=EncryptionParams.paper_defaults(),
    )
    profile = ModelProfile.from_registered(
        registered, max_pending=max(64, 4 * registered.batch_capacity)
    )
    service_s = profile.service_ms * MS
    deadline_ms = deadline_factor * profile.service_ms

    table = Table(
        title=(
            f"Soak: deadline scheduling vs offered load — {workload.name} "
            f"(capacity {profile.capacity}, batch {profile.service_ms:.1f} "
            f"ms, {threads} workers, {queries} queries/row)"
        ),
        columns=[
            "offered_load",
            "rate_qps",
            "p50_ms",
            "p99_ms",
            "miss_rate",
            "rejected",
            "retries",
            "batches",
        ],
    )
    for factor in load_factors:
        # rho = rate * service / (capacity * threads)  =>  solve for rate.
        rate = factor * threads * profile.capacity / service_s
        burst_every_s = 40.0 * service_s
        burst_size = max(1, int(rate * burst_every_s * 0.15))
        tenants = [
            TenantSpec(name="steady-a", model=profile.name,
                       rate_qps=rate * 0.5, deadline_ms=deadline_ms),
            TenantSpec(name="steady-b", model=profile.name,
                       rate_qps=rate * 0.35, deadline_ms=deadline_ms),
            TenantSpec(name="bursty", model=profile.name,
                       burst_every_s=burst_every_s,
                       burst_size=burst_size,
                       deadline_ms=deadline_ms),
        ]
        arrivals = generate_arrivals(tenants, seed=seed,
                                     total_queries=queries)
        crash_at = arrivals[len(arrivals) // 2].time
        report = SimRunner([profile], threads=threads).run(
            arrivals,
            FaultPlan(worker_crashes=(crash_at,), slow_every=13,
                      slow_factor=2.0),
        )
        stats = report.stats
        table.add_row(
            round(offered_load(tenants, [profile], threads), 3),
            round(rate, 1),
            round(stats.latency_p50_ms, 2),
            round(stats.latency_p99_ms, 2),
            round(stats.deadline_miss_rate, 4),
            stats.rejected,
            stats.retries,
            stats.batches,
        )
    table.add_note(
        f"virtual-clock simulation (seed {seed}): deadlines "
        f"{deadline_ms:.0f} ms, one injected worker crash mid-run, every "
        f"13th batch 2x slow; deterministic — the table is "
        f"byte-identical across runs"
    )
    return table


# ---------------------------------------------------------------------------
# Plan-compiled execution: optimizer payoff on the live pipeline
# ---------------------------------------------------------------------------


def plan_speedup(workload_name: str = "width78", queries: int = 2) -> Table:
    """Eager interpreter vs the plan-compiled path on one workload.

    Three rows: the eager runtime (measured per-query simulated ms over
    the four inference phases), the *unoptimized* lowering (analyzed
    cost: what naive staging would pay), and the optimized
    :class:`~repro.ir.plan.InferencePlan` (measured per-query ms over its
    ``plan_inference`` phase, which covers the identical work).  The
    optimizer's CSE shares the per-level cyclic extensions the eager
    runtime recomputes, so the plan engine does strictly less rotation
    work per query.
    """
    from repro.errors import ValidationError
    from repro.core.runtime import (
        INFERENCE_PHASES,
        PHASE_PLAN,
        secure_inference,
    )
    from repro.fhe.costmodel import CostModel
    from repro.fhe.tracker import OpKind
    from repro.ir.plan import lower_inference

    if queries < 1:
        raise ValidationError(
            f"plan_speedup needs at least one query, got {queries}"
        )
    workload = _workloads([workload_name])[0]
    compiled = workload.compiled
    params = EncryptionParams.paper_defaults()
    cost_model = CostModel(params)
    plan = lower_inference(compiled)

    def phase_count(tracker, phases, kind) -> int:
        return sum(
            tracker.phase_stats(p).counts.get(kind, 0) for p in phases
        )

    eager_ms: List[float] = []
    plan_ms: List[float] = []
    eager_rotations = eager_multiplies = 0
    plan_rotations = plan_multiplies = 0
    oracle_ok = True
    for features in workload.query_features(queries):
        expected = workload.forest.label_bitvector(features)

        eager = secure_inference(compiled, features)
        oracle_ok &= eager.result.bitvector == expected
        eager_ms.append(
            cost_model.sequential_ms(eager.tracker, phases=INFERENCE_PHASES)
        )
        eager_rotations = phase_count(
            eager.tracker, INFERENCE_PHASES, OpKind.ROTATE
        )
        eager_multiplies = phase_count(
            eager.tracker, INFERENCE_PHASES, OpKind.MULTIPLY
        )

        planned = secure_inference(compiled, features, engine="plan", plan=plan)
        oracle_ok &= planned.result.bitvector == expected
        plan_ms.append(
            cost_model.sequential_ms(planned.tracker, phases=(PHASE_PLAN,))
        )
        plan_rotations = phase_count(
            planned.tracker, (PHASE_PLAN,), OpKind.ROTATE
        )
        plan_multiplies = phase_count(
            planned.tracker, (PHASE_PLAN,), OpKind.MULTIPLY
        )

    def median(values: List[float]) -> float:
        ranked = sorted(values)
        return ranked[len(ranked) // 2]

    table = Table(
        title=f"Plan-compiled speedup — {workload.name} ({queries} queries)",
        columns=["engine", "rotations", "multiplies", "ms_per_query", "oracle"],
    )
    table.add_row(
        "eager",
        eager_rotations,
        eager_multiplies,
        median(eager_ms),
        "ok" if oracle_ok else "MISMATCH",
    )
    table.add_row(
        "plan (unoptimized)",
        plan.raw.rotations,
        plan.raw.multiplies,
        plan.raw.cost_ms(cost_model),
        "analyzed",
    )
    table.add_row(
        "plan",
        plan_rotations,
        plan_multiplies,
        median(plan_ms),
        "ok" if oracle_ok else "MISMATCH",
    )
    if plan_ms and eager_ms:
        table.add_note(
            f"plan vs eager: {median(eager_ms) / median(plan_ms):.2f}x "
            f"cheaper per query; optimizer saved {plan.rotations_saved} "
            f"rotations over the naive lowering ({plan.describe()})"
        )
    return table


# ---------------------------------------------------------------------------
# Tape speedup: compiled-tape engine vs the plan engine, wall clock
# ---------------------------------------------------------------------------


def tape_speedup(
    workload_name: str = "width78",
    repeats: int = 5,
    backend: str = "vector",
) -> Table:
    """Wall-clock of the compiled-tape engine vs the plan engine on the
    batched serve pipeline (the ISSUE 5 acceptance artifact).

    One full-capacity batch of ``workload_name`` queries is evaluated
    end to end — per-batch context, cached-model adoption, batch
    encryption, engine execution, decryption — under ``backend``
    (default ``vector``, the fast serve configuration).  Three rows:

    * ``plan`` — the graph-walking plan executor (the previous serve
      default);
    * ``tape`` — the compiled tape: linearized instructions, scheduled
      rotations, register reuse, fused kernels;
    * ``tape (de-fused)`` — the same tape with fusion disabled, to
      split the win between instruction compilation and fused kernels.

    Each row is the best of ``repeats`` runs; decrypted bitvectors are
    checked against the plaintext oracle *and* against each other, so
    the table doubles as a bit-identity witness.  Rotation counts come
    from the tracker (the plan baseline guard pins the tape's strictly
    below the plan's).
    """
    import time

    from repro.errors import ValidationError
    from repro.fhe.context import FheContext
    from repro.fhe.tracker import OpKind
    from repro.serve.batched_runtime import BatchedCopseServer, encrypt_batch
    from repro.serve.packing import demux_bitvectors
    from repro.serve.registry import ModelRegistry

    if repeats < 1:
        raise ValidationError(
            f"tape_speedup needs at least one repeat, got {repeats}"
        )
    workload = _workloads([workload_name])[0]
    compiled = workload.compiled
    params = EncryptionParams.paper_defaults()
    registered = ModelRegistry().register(
        f"tape-bench-{workload_name}", compiled, params=params,
        backend=backend, engine="tape",
    )
    layout = registered.layout
    queries = workload.query_features(layout.capacity)
    oracle = [workload.forest.label_bitvector(f) for f in queries]
    defused = registered.plan.compile_tape(fuse=False)

    modes = (
        ("plan", "plan", registered.plan, None, "plan_inference"),
        ("tape", "tape", None, registered.tape, "tape_inference"),
        ("tape (de-fused)", "tape", None, defused, "tape_inference"),
    )
    results = {}
    for label, engine, plan, tape, phase in modes:
        rotations = 0
        bits_ok = True

        def run_batch():
            nonlocal rotations, bits_ok
            ctx = FheContext(params, backend=backend)
            server = BatchedCopseServer(
                ctx, engine=engine, plan=plan, tape=tape
            )
            query = encrypt_batch(ctx, layout, queries, registered.keys)
            encrypted = server.classify_batch(
                registered.batched_model, query
            )
            bits = ctx.decrypt_bits(encrypted, registered.keys.secret)
            demuxed = demux_bitvectors(layout, bits, len(queries))
            bits_ok = bits_ok and demuxed == oracle
            rotations = ctx.tracker.phase_stats(phase).counts.get(
                OpKind.ROTATE, 0
            )

        run_batch()  # warm caches (masks, flyweights, index matrices)
        best = None
        for _ in range(repeats):
            start = time.perf_counter()
            run_batch()
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
        results[label] = (
            best * 1000.0 / len(queries), rotations, bits_ok,
        )

    table = Table(
        title=(
            f"Tape speedup — {workload_name} batched serve "
            f"({len(queries)}-query batches, {backend} backend, "
            f"best of {repeats})"
        ),
        columns=["engine", "rotations", "wall_ms_per_query", "speedup",
                 "oracle"],
    )
    plan_ms = results["plan"][0]
    for label, (ms, rotations, ok) in results.items():
        table.add_row(
            label,
            rotations,
            ms,
            plan_ms / ms if ms > 0 else float("inf"),
            "ok" if ok else "MISMATCH",
        )
    tape = registered.tape
    table.add_note(
        f"tape vs plan: {plan_ms / results['tape'][0]:.2f}x wall-clock "
        f"(target >= 1.5x); rotations "
        f"{results['plan'][1]} -> {results['tape'][1]} "
        f"(strictly below the plan baseline); {tape.describe()}"
    )
    return table


# ---------------------------------------------------------------------------
# Megakernel speedup: zero-dispatch executor vs the compiled-tape engine
# ---------------------------------------------------------------------------


def megakernel_speedup(
    workload_name: str = "width78",
    repeats: int = 5,
    backend: str = "vector",
) -> Table:
    """Wall-clock of the megakernel engine vs the compiled-tape engine
    on the batched serve pipeline (the ISSUE 9 acceptance artifact).

    One full-capacity batch of ``workload_name`` queries is evaluated
    end to end — per-batch context, cached-model adoption, batch
    encryption, engine execution, decryption — under ``backend``
    (default ``vector``, the only backend granting the megakernel
    capability).  Two rows:

    * ``tape`` — the compiled tape: linearized instructions, scheduled
      rotations, register reuse, fused kernels, but one Python dispatch
      per instruction;
    * ``megakernel`` — the same tape compiled once more into vectorized
      segments over a preallocated register plane: mega-gathers, stacked
      mask/operand planes, ``xor.reduceat`` combines, and *no*
      per-instruction Python dispatch.  Tracker bookkeeping is captured
      on a scratch context the first time each input signature appears
      and replayed in bulk thereafter.

    Each row is the best of ``repeats`` runs after a warm run (which,
    for the megakernel, is the capture run — serve batches after the
    first hit the cached book, exactly the steady state the serve loop
    lives in).  Decrypted bitvectors are checked against the plaintext
    oracle *and* against each other, so the table doubles as a
    bit-identity witness; op counts come from the tracker and must
    match between rows.
    """
    import time

    from repro.errors import ValidationError
    from repro.fhe.context import FheContext
    from repro.serve.batched_runtime import BatchedCopseServer, encrypt_batch
    from repro.serve.packing import demux_bitvectors
    from repro.serve.registry import ModelRegistry

    if repeats < 1:
        raise ValidationError(
            f"megakernel_speedup needs at least one repeat, got {repeats}"
        )
    workload = _workloads([workload_name])[0]
    compiled = workload.compiled
    params = EncryptionParams.paper_defaults()
    registered = ModelRegistry().register(
        f"megakernel-bench-{workload_name}", compiled, params=params,
        backend=backend, engine="megakernel",
    )
    layout = registered.layout
    queries = workload.query_features(layout.capacity)
    oracle = [workload.forest.label_bitvector(f) for f in queries]

    modes = (
        ("tape", "tape", registered.tape, None, "tape_inference"),
        ("megakernel", "megakernel", None, registered.megakernel,
         "megakernel_inference"),
    )
    results = {}
    counts = {}
    for label, engine, tape, kernel, phase in modes:
        bits_ok = True

        def run_batch():
            nonlocal bits_ok
            ctx = FheContext(params, backend=backend)
            server = BatchedCopseServer(
                ctx, engine=engine, tape=tape, megakernel=kernel
            )
            query = encrypt_batch(ctx, layout, queries, registered.keys)
            encrypted = server.classify_batch(
                registered.batched_model, query
            )
            bits = ctx.decrypt_bits(encrypted, registered.keys.secret)
            demuxed = demux_bitvectors(layout, bits, len(queries))
            bits_ok = bits_ok and demuxed == oracle
            counts[label] = {
                kind.name: n
                for kind, n in
                ctx.tracker.phase_stats(phase).counts.items()
                if n
            }

        run_batch()  # warm caches (and the megakernel's capture run)
        best = None
        for _ in range(repeats):
            start = time.perf_counter()
            run_batch()
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
        results[label] = (best * 1000.0 / len(queries), bits_ok)

    table = Table(
        title=(
            f"Megakernel speedup — {workload_name} batched serve "
            f"({len(queries)}-query batches, {backend} backend, "
            f"best of {repeats})"
        ),
        columns=["engine", "wall_ms_per_query", "speedup", "oracle"],
    )
    tape_ms = results["tape"][0]
    for label, (ms, ok) in results.items():
        table.add_row(
            label,
            ms,
            tape_ms / ms if ms > 0 else float("inf"),
            "ok" if ok else "MISMATCH",
        )
    kernel = registered.megakernel
    counts_ok = counts.get("tape") == counts.get("megakernel")
    table.add_note(
        f"megakernel vs tape: "
        f"{tape_ms / results['megakernel'][0]:.2f}x wall-clock "
        f"(target >= 2x); op counts "
        f"{'identical' if counts_ok else 'DIVERGED'}; "
        f"{kernel.describe()}"
    )
    return table


# ---------------------------------------------------------------------------
# Tracing overhead: the observability layer's zero-cost contract
# ---------------------------------------------------------------------------


def tracing_overhead(
    workload_name: str = "width78",
    repeats: int = 3,
    backend: str = "vector",
) -> Table:
    """Wall-clock cost of the observability layer on the serve hot path.

    Four rows over one full-capacity batched tape evaluation (the serve
    default configuration) under ``backend``:

    * ``batch (untraced)`` — :class:`~repro.serve.batcher.QueryBatcher`
      with ``tracer=None``: the production default, whose hot path must
      contain no instrumentation at all;
    * ``batch (traced)`` — the same evaluation with a
      :class:`~repro.obs.trace.Tracer` emitting the pack / execute /
      demux / resolve stage spans;
    * ``tape (unprofiled)`` — the bare compiled-tape execution;
    * ``tape (profiled)`` — the same tape through the instrumented
      loop with a :class:`~repro.obs.profiler.TapeProfiler` (per
      instruction: two tracker snapshots, two timer reads, one sample).

    ``overhead_pct`` is each row's wall time against its baseline row.
    The zero-cost contract is the *untraced* rows: DESIGN.md commits to
    tracing-disabled serve staying within 3 % of the uninstrumented
    cost (the ``tests/obs`` guard pins the simulated-cost half of that
    contract against ``plan_baseline.json``); the traced/profiled rows
    document what opting in costs.
    """
    import time

    from repro.errors import ValidationError
    from repro.ir.plan import bind_model_query
    from repro.obs.profiler import TapeProfiler
    from repro.obs.trace import Tracer
    from repro.serve.batcher import CutBatch, QueryBatcher
    from repro.serve.registry import ModelRegistry
    from repro.serve.simclock import VirtualClock

    if repeats < 1:
        raise ValidationError(
            f"tracing_overhead needs at least one repeat, got {repeats}"
        )
    workload = _workloads([workload_name])[0]
    params = EncryptionParams.paper_defaults()
    registered = ModelRegistry().register(
        f"trace-bench-{workload_name}", workload.compiled, params=params,
        backend=backend, engine="tape",
    )
    queries = workload.query_features(registered.layout.capacity)

    def best_of(run) -> float:
        run()  # warm caches outside the timing
        best = None
        for _ in range(repeats):
            start = time.perf_counter()
            run()
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
        return best * 1000.0

    def batch_run(tracer, clock):
        batcher = QueryBatcher(
            registered, verify_oracle=False, tracer=tracer, clock=clock,
        )

        def run():
            batch = CutBatch(
                batch_id=0,
                entries=[batcher.prepare(f) for f in queries],
            )
            batcher.evaluate(batch)

        return run

    tracer = Tracer()
    results = {
        "batch (untraced)": best_of(batch_run(None, None)),
        "batch (traced)": best_of(batch_run(tracer, VirtualClock())),
    }

    from repro.fhe.context import FheContext

    def tape_run(profiler):
        def run():
            ctx = FheContext(params, backend=backend)
            from repro.serve.batched_runtime import encrypt_batch

            query = encrypt_batch(
                ctx, registered.layout, queries, registered.keys
            )
            bindings = bind_model_query(
                ctx,
                registered.tape.input_widths,
                registered.tape.encrypted_model,
                registered.tape.model_fingerprint,
                registered.batched_model,
                query,
            )
            registered.tape.execute(ctx, bindings, profiler=profiler)

        return run

    profiler = TapeProfiler()
    results["tape (unprofiled)"] = best_of(tape_run(None))
    results["tape (profiled)"] = best_of(tape_run(profiler))

    baselines = {
        "batch (untraced)": "batch (untraced)",
        "batch (traced)": "batch (untraced)",
        "tape (unprofiled)": "tape (unprofiled)",
        "tape (profiled)": "tape (unprofiled)",
    }
    table = Table(
        title=(
            f"Tracing overhead — {workload_name} batched serve "
            f"({len(queries)}-query batches, {backend} backend, "
            f"best of {repeats})"
        ),
        columns=["config", "wall_ms_per_batch", "overhead_pct"],
    )
    for label, ms in results.items():
        base = results[baselines[label]]
        overhead = 100.0 * (ms / base - 1.0) if base > 0 else 0.0
        table.add_row(label, ms, round(overhead, 2))
    table.add_note(
        f"opt-in instrumentation: {len(tracer.spans())} stage spans "
        f"traced, {len(profiler.samples)} instruction samples profiled; "
        f"the disabled configurations carry no callbacks or timestamps "
        f"(the <3% disabled-overhead guard runs in tests/obs)"
    )
    return table


# ---------------------------------------------------------------------------
# Backend speedup: wall-clock per FHE backend
# ---------------------------------------------------------------------------


def backend_speedup(
    workload_name: str = "width78",
    queries: int = 8,
    repeats: int = 3,
    backends: Optional[Sequence[str]] = None,
) -> Table:
    """Wall-clock ms/query per FHE backend, single-query and batched.

    Unlike every other artifact here, this one measures **wall-clock**
    time of the simulator itself, not simulated FHE milliseconds: the
    backends execute identical circuits (same operation counts, same
    bits — the conformance suite locks that), so the cost model prices
    them identically and only real execution time can tell them apart.
    Three modes per backend:

    * ``single`` — the eager per-query pipeline (query encrypt,
      classify, decrypt) against a once-encrypted model;
    * ``batched/plan`` — the serve pipeline (pack + encrypt the batch,
      run the cached optimized plan, decrypt, demux), the service
      default;
    * ``batched/eager`` — the hand-scheduled batched interpreter on the
      same cached model.

    Each (backend, mode) cell is the best of ``repeats`` runs over
    ``queries`` queries (full batches for the batched modes), and every
    decrypted bitvector is checked against the plaintext oracle.
    """
    import time

    from repro.errors import ValidationError
    from repro.core.runtime import CopseServer, DataOwner, ModelOwner
    from repro.fhe.backend import available_backends
    from repro.fhe.context import FheContext
    from repro.serve.batched_runtime import BatchedCopseServer, encrypt_batch
    from repro.serve.packing import demux_bitvectors, plan_layout
    from repro.serve.registry import ModelRegistry

    if queries < 1:
        raise ValidationError(
            f"backend_speedup needs at least one query, got {queries}"
        )
    if repeats < 1:
        raise ValidationError(
            f"backend_speedup needs at least one repeat, got {repeats}"
        )
    if backends is None:
        preferred = ("reference", "vector", "plaintext")
        registered = set(available_backends())
        backends = [b for b in preferred if b in registered]
    if "reference" not in backends:
        raise ValidationError(
            "backend_speedup needs the reference backend as its baseline"
        )

    workload = _workloads([workload_name])[0]
    compiled = workload.compiled
    params = EncryptionParams.paper_defaults()
    feature_lists = workload.query_features(queries)
    oracle = [workload.forest.label_bitvector(f) for f in feature_lists]
    capacity = plan_layout(compiled, params).capacity
    batch_queries = workload.query_features(capacity)
    batch_oracle = [workload.forest.label_bitvector(f) for f in batch_queries]

    def best_ms(run, per_run_queries: int) -> float:
        """Best-of-``repeats`` wall-clock ms per query for one mode."""
        run()  # warm caches (plans, masks, flyweights) outside the timing
        best = None
        for _ in range(repeats):
            start = time.perf_counter()
            run()
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
        return best * 1000.0 / per_run_queries

    results = {}
    for backend in backends:
        # Single-query eager pipeline against a once-encrypted model.
        ctx = FheContext(params, backend=backend)
        keys = ctx.keygen()
        maurice = ModelOwner(compiled)
        diane = DataOwner(maurice.query_spec(), keys)
        model = maurice.encrypt_model(ctx, keys.public)
        sally = CopseServer(ctx)
        oracle_ok = True

        def run_single():
            nonlocal oracle_ok
            for feats, expected in zip(feature_lists, oracle):
                query = diane.prepare_query(ctx, feats)
                encrypted = sally.classify(model, query)
                bits = ctx.decrypt_bits(encrypted, keys.secret)
                oracle_ok = oracle_ok and bits == expected

        results[(backend, "single")] = (
            best_ms(run_single, queries), oracle_ok,
        )

        # Batched pipeline against the serve registry's cached model.
        registered = ModelRegistry().register(
            f"bench-{backend}", compiled, params=params, backend=backend
        )
        layout = registered.layout

        for mode, engine, plan in (
            ("batched/plan", "plan", registered.plan),
            ("batched/eager", "eager", None),
        ):
            batch_ctx = FheContext(params, backend=backend)
            server = BatchedCopseServer(batch_ctx, engine=engine, plan=plan)
            oracle_ok = True

            def run_batch():
                nonlocal oracle_ok
                query = encrypt_batch(
                    batch_ctx, layout, batch_queries, registered.keys
                )
                encrypted = server.classify_batch(
                    registered.batched_model, query
                )
                bits = batch_ctx.decrypt_bits(
                    encrypted, registered.keys.secret
                )
                demuxed = demux_bitvectors(layout, bits, len(batch_queries))
                oracle_ok = oracle_ok and demuxed == batch_oracle

            results[(backend, mode)] = (
                best_ms(run_batch, len(batch_queries)), oracle_ok,
            )

    table = Table(
        title=f"Backend speedup — {workload.name} "
        f"(wall-clock, best of {repeats})",
        columns=["backend", "mode", "wall_ms_per_query", "speedup", "oracle"],
    )
    modes = ("single", "batched/plan", "batched/eager")
    for backend in backends:
        for mode in modes:
            ms, ok = results[(backend, mode)]
            ref_ms, _ = results[("reference", mode)]
            table.add_row(
                backend,
                mode,
                ms,
                ref_ms / ms if ms > 0 else float("inf"),
                "ok" if ok else "MISMATCH",
            )
    if "vector" in backends:
        batch_ms, _ = results[("vector", "batched/eager")]
        batch_ref, _ = results[("reference", "batched/eager")]
        single_ms, _ = results[("vector", "single")]
        single_ref, _ = results[("reference", "single")]
        table.add_note(
            f"vector vs reference: {single_ref / single_ms:.2f}x single, "
            f"{batch_ref / batch_ms:.2f}x batched (eager) on "
            f"{capacity}-query batches; identical bits and simulated "
            f"cost, the difference is pure bookkeeping overhead"
        )
    return table


# ---------------------------------------------------------------------------
# Cluster speedup: multi-process serving vs a single worker
# ---------------------------------------------------------------------------


def cluster_speedup(
    workload_name: str = "width78",
    workers: Sequence[int] = (1, 2, 4),
    batches: int = 4,
    backend: str = "vector",
) -> Table:
    """Wall-clock of the multi-process serve cluster by pool size.

    For each pool size a fresh :class:`~repro.serve.cluster.ClusterService`
    registers ``workload_name`` once, warms the pool (one throwaway batch
    per worker, so model shipping and worker-side cache builds are off
    the clock), then serves ``batches`` full-capacity batches of seeded
    queries end to end — router placement, pipe transport, worker-side
    encrypt/evaluate/decrypt, oracle verification.  One row per pool
    size: wall clock, queries/s, speedup over the 1-worker row, oracle
    agreement, and the batch/crash accounting from the router.

    Speedup comes from genuine process parallelism, so it is bounded by
    the host's core count (recorded in the note): on a single-core host
    every pool size serializes and the larger pools only measure
    transport overhead.
    """
    import os as _os
    import time

    from repro.errors import ValidationError
    from repro.serve.cluster import ClusterService

    workers = tuple(workers)
    if not workers or min(workers) < 1:
        raise ValidationError(
            f"cluster_speedup needs pool sizes >= 1, got {workers!r}"
        )
    if batches < 1:
        raise ValidationError(
            f"cluster_speedup needs at least one batch, got {batches}"
        )
    workload = _workloads([workload_name])[0]
    params = EncryptionParams.paper_defaults()

    results = {}
    capacity = None
    for pool in workers:
        with ClusterService(workers=pool, backend=backend) as service:
            registered = service.register_model(
                f"cluster-bench-{workload_name}", workload.compiled,
                params=params,
            )
            capacity = registered.layout.capacity
            name = registered.name
            queries = workload.query_features(capacity * batches)
            # Warm every worker: preload ships the envelope, one batch
            # per worker builds the lazy gather caches off the clock.
            service.preload(name)
            warm = [
                service.submit(name, q)
                for q in queries[: capacity * pool]
            ]
            service.flush(name)
            for future in warm:
                future.result()

            start = time.perf_counter()
            futures = [service.submit(name, q) for q in queries]
            service.flush(name)
            outcomes = [f.result() for f in futures]
            wall_s = time.perf_counter() - start
            stats = service.stats()

        oracle_ok = all(r.oracle_ok for r in outcomes)
        results[pool] = (wall_s, len(queries), oracle_ok, stats)

    table = Table(
        title=(
            f"Cluster speedup — {workload_name} over real worker "
            f"processes ({batches} x {capacity}-query batches, "
            f"{backend} backend)"
        ),
        columns=["workers", "wall_s", "queries_per_s", "speedup",
                 "batches", "crashes", "oracle"],
    )
    base_wall = results[workers[0]][0]
    for pool in workers:
        wall_s, n_queries, oracle_ok, stats = results[pool]
        table.add_row(
            pool,
            wall_s,
            n_queries / wall_s if wall_s > 0 else float("inf"),
            base_wall / wall_s if wall_s > 0 else float("inf"),
            stats.batches,
            stats.worker_crashes,
            "ok" if oracle_ok else "MISMATCH",
        )
    cores = _os.cpu_count() or 1
    table.add_note(
        f"speedup is vs the {workers[0]}-worker pool on this host "
        f"({cores} core{'s' if cores != 1 else ''}); process "
        f"parallelism cannot beat the core count — identical decrypted "
        f"bits at every pool size is the invariant, the speedup is "
        f"host-dependent"
    )
    return table


# ---------------------------------------------------------------------------
# Autoscale: the control plane vs a static pool on a three-phase ramp
# ---------------------------------------------------------------------------


def autoscale_run(
    workload_name: str = "width78",
    workers_start: int = 2,
    workers_max: int = 6,
    seed: int = 777,
    autoscale: bool = True,
):
    """One seeded three-phase ramp through the cluster simulator.

    Builds the canonical control-plane scenario — underload steady
    state, a burst that overloads the starting pool, then a decay tail
    — with one worker crash injected mid-burst, and replays it through
    :class:`~repro.serve.cluster.ClusterSimRunner` either with a
    :class:`~repro.control.Controller` (``autoscale=True``) or as the
    static ``workers_start``-pool baseline.

    Returns ``(report, controller, scenario)`` where ``controller`` is
    None for the static run and ``scenario`` is a dict of the derived
    parameters (deadline, phase boundaries, control interval).  The
    entire run is virtual-clock deterministic: same arguments, same
    report *and* the same controller decision log, byte for byte —
    the sim-replay CI step and the control tests both lean on that.
    """
    from repro.control import (
        AutoscalePolicy,
        ClusterSimPlant,
        Controller,
        GuardConfig,
        GuardRail,
    )
    from repro.errors import ValidationError
    from repro.serve import (
        FaultPlan,
        ModelProfile,
        RetryPolicy,
        TenantSpec,
        generate_arrivals,
    )
    from repro.serve.cluster import ClusterSimRunner
    from repro.serve.registry import ModelRegistry
    from repro.serve.simclock import MS
    import dataclasses

    if workers_start < 1:
        raise ValidationError(
            f"autoscale needs workers_start >= 1, got {workers_start}"
        )
    if workers_max < workers_start:
        raise ValidationError(
            f"workers_max ({workers_max}) must be >= workers_start "
            f"({workers_start})"
        )

    workload = _workloads([workload_name])[0]
    registered = ModelRegistry().register(
        f"autoscale-{workload.name}", workload.compiled,
        params=EncryptionParams.paper_defaults(),
    )
    profile = ModelProfile.from_registered(
        registered, max_pending=max(64, 4 * registered.batch_capacity)
    )
    service_s = profile.service_ms * MS
    deadline_ms = 2.5 * profile.service_ms
    # Pool capacity of the *starting* pool, in queries/second: the rho
    # knobs below are relative to this, so the burst phase genuinely
    # overloads workers_start workers while fitting inside workers_max.
    base_rate = workers_start * profile.capacity / service_s
    phase_s = (40.0 * service_s, 80.0 * service_s, 80.0 * service_s)
    rhos = (0.4, 2.0, 0.25)

    arrivals = []
    offset = 0.0
    for index, (rho, dur) in enumerate(zip(rhos, phase_s)):
        segment = generate_arrivals(
            [
                TenantSpec(
                    name=f"phase{index + 1}", model=profile.name,
                    rate_qps=rho * base_rate, deadline_ms=deadline_ms,
                ),
            ],
            seed=seed + index,
            duration_s=dur,
        )
        arrivals.extend(
            dataclasses.replace(a, time=a.time + offset)
            for a in segment
        )
        offset += dur
    arrivals.sort(key=lambda a: a.time)
    # One crash in the middle of the burst: the controller must scale
    # through it (the respawned worker keeps the pool size; the epoch
    # protocol retries the torn batch).
    crash_at = phase_s[0] + 0.5 * phase_s[1]
    faults = FaultPlan(worker_crashes=(crash_at,))

    control_interval_s = 2.0 * service_s
    controller = None
    if autoscale:
        guards = GuardRail(GuardConfig(
            workers_min=1,
            workers_max=workers_max,
            cooldown_s=6.0 * service_s,
        ))
        policy = AutoscalePolicy(
            slo_p99_ms=deadline_ms,
            backlog_high=2.0 * profile.capacity,
            backlog_low=0.25 * profile.capacity,
            sustain_up=2,
            sustain_down=4,
            step=2,
        )
        controller = Controller(None, [policy], guards)
    # Immediate retries, as when this scenario was calibrated: the ramp
    # measures scaling behavior, and backoff delays on the mid-burst
    # crash's retries would shift its latency tail for unrelated reasons.
    runner = ClusterSimRunner(
        [profile],
        workers=workers_start,
        controller=controller,
        control_interval_s=control_interval_s,
        retry_policy=RetryPolicy.immediate(),
    )
    if controller is not None:
        controller.plant = ClusterSimPlant(runner)
    report = runner.run(arrivals, faults)
    scenario = {
        "workload": workload.name,
        "queries": len(arrivals),
        "service_ms": profile.service_ms,
        "capacity": profile.capacity,
        "deadline_ms": deadline_ms,
        "phase_s": phase_s,
        "rhos": rhos,
        "crash_at": crash_at,
        "control_interval_s": control_interval_s,
        "seed": seed,
    }
    return report, controller, scenario


def _worker_trajectory(controller, workers_start: int) -> Tuple[int, int]:
    """(peak, final) pool size implied by the applied scale records."""
    peak = final = workers_start
    for record in controller.applied():
        # ("applied", tick, "scale_workers", delta, t)
        if record[2] == "scale_workers":
            final += record[3]
            peak = max(peak, final)
    return peak, final


def autoscale(
    workload_name: str = "width78",
    workers_start: int = 2,
    workers_max: int = 6,
    seed: int = 777,
) -> Table:
    """SLO-driven autoscaling vs a static pool on a three-phase ramp.

    Two rows over the identical seeded arrival timeline (underload
    steady state at rho 0.4, a burst at rho 2.0 of the starting pool's
    capacity, then a rho 0.25 decay tail, with one worker crash
    mid-burst): a static ``workers_start``-worker pool, and the same
    pool driven by the control plane (:class:`~repro.control.Controller`
    with an SLO/backlog :class:`~repro.control.AutoscalePolicy` behind
    the :class:`~repro.control.GuardRail`).

    The story the table tells: the burst buries the static pool — its
    p99 blows through the deadline and the miss rate climbs — while the
    controller scales up to absorb it (bounded by ``workers_max`` and
    the per-kind cooldown), then the decay phase triggers the
    cooldown-gated scale-down.  ``applied`` counts guard-approved
    actuations; ``guard_rej`` counts vetoes, every one carrying a
    recorded reason in the decision log.  Deterministic end to end:
    same seed, same table *and* same decision log, byte for byte.
    """
    rows = []
    for mode, auto in (("static", False), ("autoscale", True)):
        report, controller, scenario = autoscale_run(
            workload_name=workload_name,
            workers_start=workers_start,
            workers_max=workers_max,
            seed=seed,
            autoscale=auto,
        )
        stats = report.stats
        if controller is None:
            peak = final = workers_start
            applied = guard_rej = 0
        else:
            peak, final = _worker_trajectory(controller, workers_start)
            applied = len(controller.applied())
            guard_rej = len(controller.rejections())
        rows.append((
            mode,
            round(stats.latency_p50_ms, 2),
            round(stats.latency_p99_ms, 2),
            round(stats.deadline_miss_rate, 4),
            stats.rejected,
            peak,
            final,
            applied,
            guard_rej,
        ))

    table = Table(
        title=(
            f"Autoscale: control plane vs static pool — "
            f"{scenario['workload']} three-phase ramp "
            f"(rho {scenario['rhos'][0]} / {scenario['rhos'][1]} / "
            f"{scenario['rhos'][2]} of {workers_start} workers, "
            f"{scenario['queries']} queries, deadline "
            f"{scenario['deadline_ms']:.0f} ms)"
        ),
        columns=[
            "mode",
            "p50_ms",
            "p99_ms",
            "miss_rate",
            "rejected",
            "peak_workers",
            "final_workers",
            "applied",
            "guard_rej",
        ],
    )
    for row in rows:
        table.add_row(*row)
    table.add_note(
        f"virtual-clock cluster simulation (seed {seed}): one worker "
        f"crash mid-burst, control tick every "
        f"{scenario['control_interval_s']:.2f}s of virtual time, "
        f"workers in [1, {workers_max}]; every applied actuation "
        f"passed a guard and every rejection carries a reason — the "
        f"decision log replays byte-identical across runs"
    )
    return table


# ---------------------------------------------------------------------------
# Chaos: the deterministic fault matrix, replayed and cross-checked
# ---------------------------------------------------------------------------


def chaos_run(
    workload_name: str = "width78",
    queries: int = 6000,
    seed: int = 99,
    workers: int = 4,
    faulted: bool = True,
):
    """One seeded chaos soak through the cluster simulator.

    Derives the load shape from the workload's registered profile (two
    Poisson tenants plus a bursty one at moderate total load) and, when
    ``faulted``, replays the full fault matrix over it: worker crashes,
    hung workers (heartbeat-detected), a slow-factor ramp, corrupted
    model ships, corrupted / dropped / duplicated completion envelopes,
    and two poison queries that crash every worker they touch.  The
    fault-free twin (``faulted=False``) runs the identical arrival
    schedule and is the bit-identity oracle.

    Returns ``(report, scenario)``; everything is virtual-clock
    deterministic — same arguments, same decision log byte for byte.
    """
    from repro.serve import (
        FaultPlan,
        ModelProfile,
        RetryPolicy,
        TenantSpec,
        generate_arrivals,
    )
    from repro.serve.cluster import ClusterSimRunner
    from repro.serve.registry import ModelRegistry
    from repro.serve.simclock import MS

    workload = _workloads([workload_name])[0]
    registered = ModelRegistry().register(
        f"chaos-{workload.name}", workload.compiled,
        params=EncryptionParams.paper_defaults(),
    )
    # Unbounded-in-practice admission: the acceptance bar is "every
    # non-poison query served", so shedding under a crash backlog is
    # sized out of the scenario.
    profile = ModelProfile.from_registered(registered, max_pending=queries)
    service_s = profile.service_ms * MS
    # Moderate load for the pool: headroom to drain the backlog that
    # piles up while crashed/hung workers respawn.
    rate = 0.45 * workers * profile.capacity / service_s
    tenants = [
        TenantSpec(name="steady-a", model=profile.name,
                   rate_qps=rate * 0.6),
        TenantSpec(name="steady-b", model=profile.name,
                   rate_qps=rate * 0.3),
        TenantSpec(name="spiky", model=profile.name,
                   burst_every_s=25.0 * service_s,
                   burst_size=max(1, profile.capacity), priority=1),
    ]
    arrivals = generate_arrivals(tenants, seed=seed,
                                 total_queries=queries)
    duration = arrivals[-1].time
    poison = (queries // 4, (3 * queries) // 4)
    if faulted:
        faults = FaultPlan(
            worker_crashes=(0.2 * duration, 0.45 * duration,
                            0.7 * duration),
            worker_hangs=(0.3 * duration, 0.6 * duration),
            slow_every=11,
            slow_factor=2.0,
            slow_ramp=0.2,
            corrupt_ship_every=5,
            corrupt_completion_every=97,
            drop_completion_every=131,
            duplicate_completion_every=61,
            poison_queries=poison,
        )
    else:
        faults = FaultPlan()
    runner = ClusterSimRunner(
        [profile],
        workers=workers,
        max_retries=2,
        retry_policy=RetryPolicy(hedge_factor=3.0),
        heartbeat_interval_s=0.25,
        heartbeat_timeout_s=0.6,
    )
    report = runner.run(arrivals, faults)
    scenario = {
        "workload": workload.name,
        "queries": queries,
        "workers": workers,
        "seed": seed,
        "duration_s": duration,
        "poison": poison,
    }
    return report, scenario


def _conserved(stats) -> bool:
    return stats.submitted == (
        stats.completed + stats.rejected + stats.failed
        + stats.cancelled + stats.dead_lettered
    )


def chaos(
    workload_name: str = "width78",
    queries: int = 6000,
    seed: int = 99,
) -> Table:
    """The chaos matrix acceptance report: three runs, four properties.

    Row ``chaos`` and row ``replay`` are the same seeded fault matrix
    run twice — the decision logs, stats, and decrypted results must
    match byte for byte.  Row ``fault-free`` is the identical arrival
    schedule with no faults — every non-poison query the chaos run
    served must carry bit-identical results, and exactly the poison
    queries must land in the dead-letter queue with their bisection
    trail in the decision log.  The checks note renders ``ok`` /
    ``FAIL`` per property; CI greps the regenerated report for
    ``FAIL``.
    """
    import json as _json

    first, scenario = chaos_run(
        workload_name=workload_name, queries=queries, seed=seed
    )
    second, _ = chaos_run(
        workload_name=workload_name, queries=queries, seed=seed
    )
    clean, _ = chaos_run(
        workload_name=workload_name, queries=queries, seed=seed,
        faulted=False,
    )
    poison = set(scenario["poison"])

    replay_ok = (
        _json.dumps(first.decisions) == _json.dumps(second.decisions)
        and first.stats == second.stats
        and first.results == second.results
        and first.dead_letters == second.dead_letters
    )
    conserved = _conserved(first.stats) and _conserved(clean.stats)
    clean_indices = set(clean.results) - poison
    divergent = sum(
        1 for index in clean_indices
        if first.results.get(index) != clean.results[index]
    )
    bits_ok = divergent == 0 and not (set(first.results) & poison)
    dlq_values = sorted(e["value"] for e in first.dead_letters)
    kinds = {d[0] for d in first.decisions}
    poison_ok = (
        dlq_values == sorted(poison)
        and first.stats.dead_lettered == len(poison)
        and {"bisect", "dead_letter"} <= kinds
    )

    table = Table(
        title=(
            f"Chaos: deterministic fault matrix — {scenario['workload']}"
            f" profile, {queries} queries on {scenario['workers']} "
            f"workers (seed {seed}, 2 poison)"
        ),
        columns=[
            "run",
            "completed",
            "dead_letter",
            "rejected",
            "failed",
            "crashes",
            "retries",
            "hedges",
            "stale",
        ],
    )
    for name, report in (("chaos", first), ("replay", second),
                         ("fault-free", clean)):
        decision_kinds = [d[0] for d in report.decisions]
        table.add_row(
            name,
            report.stats.completed,
            report.stats.dead_lettered,
            report.stats.rejected,
            report.stats.failed,
            report.stats.worker_crashes,
            report.stats.retries,
            decision_kinds.count("hedge"),
            decision_kinds.count("stale"),
        )

    def verdict(ok: bool) -> str:
        return "ok" if ok else "FAIL"

    table.add_note(
        "fault matrix: 3 crashes + 2 hangs (heartbeat-detected), slow "
        "ramp x2.0, corrupted ships, corrupted/dropped/duplicated "
        "completions, 2 poison queries; virtual-clock deterministic"
    )
    table.add_note(
        f"checks: replay byte-identical={verdict(replay_ok)} "
        f"conservation={verdict(conserved)} "
        f"non-poison bit-identity={verdict(bits_ok)} "
        f"(divergent={divergent}) "
        f"poison isolated in DLQ={verdict(poison_ok)}"
    )
    return table


# ---------------------------------------------------------------------------
# Table 6: microbenchmark suite
# ---------------------------------------------------------------------------


def table6() -> Table:
    """The microbenchmark suite: spec vs generated model statistics."""
    table = Table(
        title="Table 6: microbenchmark specifications",
        columns=[
            "model",
            "max_depth",
            "precision",
            "trees",
            "branches",
            "gen_b",
            "gen_d",
            "gen_q",
            "gen_K",
        ],
    )
    for spec in MICROBENCHMARKS:
        forest = spec.build()
        table.add_row(
            spec.name,
            spec.max_depth,
            spec.precision,
            spec.n_trees,
            spec.total_branches,
            forest.branching,
            forest.max_depth,
            forest.quantized_branching,
            forest.max_multiplicity,
        )
    table.add_note(
        "spec columns are Table 6 as printed; gen_* are the generated "
        "forests' statistics (branches and depth match by construction)"
    )
    return table


def clear_cache() -> None:
    """Drop memoized experiment records (for isolated test runs)."""
    _RECORD_CACHE.clear()
