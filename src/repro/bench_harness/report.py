"""Plain-text rendering of benchmark tables and series."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (the paper's summary statistic)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


@dataclass
class Table:
    """A fixed-width text table with a title, used by every experiment."""

    title: str
    columns: List[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells for {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> List[object]:
        """All values of one column (for assertions in tests/benches)."""
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def row(self, key: object) -> List[object]:
        """The first row whose first cell equals ``key``."""
        for row in self.rows:
            if row[0] == key:
                return row
        raise KeyError(f"no row keyed {key!r} in table {self.title!r}")

    def render(self) -> str:
        cells = [[_fmt(c) for c in self.columns]] + [
            [_fmt(c) for c in row] for row in self.rows
        ]
        widths = [
            max(len(r[i]) for r in cells) for i in range(len(self.columns))
        ]
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(c.ljust(w) for c, w in zip(cells[0], widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells[1:]:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


@dataclass
class Series:
    """A named (x, y) series, for the Figure 10 style breakdowns."""

    name: str
    x_label: str
    y_label: str
    points: List[tuple] = field(default_factory=list)

    def add_point(self, x: object, y: float) -> None:
        self.points.append((x, y))

    def ys(self) -> List[float]:
        return [y for _, y in self.points]

    def render(self) -> str:
        body = ", ".join(f"{x}={y:.2f}" for x, y in self.points)
        return f"{self.name} [{self.y_label} vs {self.x_label}]: {body}"


def render_all(tables: Sequence[Table], title: Optional[str] = None) -> str:
    parts = []
    if title:
        parts.append(f"### {title} ###")
    for table in tables:
        parts.append(table.render())
    return "\n\n".join(parts)
