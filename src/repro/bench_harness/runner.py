"""Experiment runner: the paper's 27-query median protocol.

One :class:`InferenceRunner` runs one (workload, system, configuration)
combination: it compiles/encrypts the model once, executes the query
batch, verifies every result against the plaintext oracle, and derives
simulated timings from the recorded operation DAG via the cost model.

Because the circuits are input-independent (noninterference — verified by
the security tests), every query of a batch produces the identical
operation trace, so the median simulated time equals any single query's
time; the runner still executes the full batch to exercise correctness on
many inputs, and reports the median as the paper does.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ValidationError
from repro.baseline.polynomial import compile_polynomial
from repro.baseline.runtime import (
    BaselineDataOwner,
    BaselineModelOwner,
    BaselineServer,
)
from repro.core.runtime import (
    CopseServer,
    DataOwner,
    INFERENCE_PHASES,
    ModelOwner,
)
from repro.core.seccomp import VARIANT_ALOUFI
from repro.fhe.backend import canonical_backend_name
from repro.fhe.context import FheContext
from repro.fhe.costmodel import CostModel
from repro.fhe.params import EncryptionParams
from repro.fhe.tracker import OpTracker
from repro.bench_harness.workloads import PAPER_QUERY_COUNT, Workload

SYSTEM_COPSE = "copse"
SYSTEM_BASELINE = "baseline"

BASELINE_PHASES = ("comparison", "polynomial")


@dataclass(frozen=True)
class RunnerConfig:
    """Configuration for one experiment run.

    ``backend`` selects the FHE backend each per-query context is built
    on (``None`` means the process default).  Simulated times come from
    the cost model over operation *counts*, so they are backend-
    independent; the backend choice matters for wall-clock measurements
    and for exercising a backend against the oracle.  Multithreaded
    estimates (``threads > 1``) need the reference backend's DAG.
    """

    system: str = SYSTEM_COPSE
    encrypted_model: bool = True
    threads: int = 1
    params: EncryptionParams = field(default_factory=EncryptionParams.paper_defaults)
    seccomp_variant: str = VARIANT_ALOUFI
    queries: int = PAPER_QUERY_COUNT
    query_seed: int = 1234
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.system not in (SYSTEM_COPSE, SYSTEM_BASELINE):
            raise ValidationError(
                f"unknown system {self.system!r}; choose "
                f"{SYSTEM_COPSE!r} or {SYSTEM_BASELINE!r}"
            )
        if self.threads < 1:
            raise ValidationError(f"threads must be >= 1, got {self.threads}")
        if self.queries < 1:
            raise ValidationError(f"queries must be >= 1, got {self.queries}")
        if self.backend is not None:
            canonical_backend_name(self.backend)


@dataclass
class ExperimentRecord:
    """The measurements from one (workload, configuration) run."""

    workload: str
    config: RunnerConfig
    median_ms: float
    per_query_ms: List[float]
    phase_ms: Dict[str, float]
    op_counts: Dict[str, int]
    multiplicative_depth: int
    work_ms: float
    span_ms: float
    correct: bool

    @property
    def system(self) -> str:
        return self.config.system


class InferenceRunner:
    """Runs one workload under one configuration and reports timings."""

    def __init__(self, workload: Workload, config: RunnerConfig):
        self.workload = workload
        self.config = config
        self.cost_model = CostModel(config.params)

    def run(self) -> ExperimentRecord:
        if self.config.system == SYSTEM_COPSE:
            return self._run_copse()
        return self._run_baseline()

    # ------------------------------------------------------------------

    def _run_copse(self) -> ExperimentRecord:
        cfg = self.config
        workload = self.workload
        compiled = workload.compiled
        compiled.check_parameters(cfg.params)

        queries = workload.query_features(cfg.queries, cfg.query_seed)
        per_query_ms: List[float] = []
        correct = True
        last_tracker: Optional[OpTracker] = None

        for features in queries:
            ctx = FheContext(cfg.params, backend=cfg.backend)
            keys = ctx.keygen()
            maurice = ModelOwner(compiled)
            diane = DataOwner(maurice.query_spec(), keys)
            sally = CopseServer(ctx, seccomp_variant=cfg.seccomp_variant)
            if cfg.encrypted_model:
                enc_model = maurice.encrypt_model(ctx, keys.public)
            else:
                enc_model = maurice.plaintext_model(ctx)
            query = diane.prepare_query(ctx, features)
            encrypted = sally.classify(enc_model, query)
            result = diane.decrypt_result(ctx, encrypted)
            expected = workload.forest.label_bitvector(features)
            correct = correct and (result.bitvector == expected)
            per_query_ms.append(self._time(ctx.tracker, INFERENCE_PHASES))
            last_tracker = ctx.tracker

        return self._record(per_query_ms, last_tracker, INFERENCE_PHASES, correct)

    def _run_baseline(self) -> ExperimentRecord:
        cfg = self.config
        workload = self.workload
        poly = compile_polynomial(workload.forest, workload.precision)

        queries = workload.query_features(cfg.queries, cfg.query_seed)
        per_query_ms: List[float] = []
        correct = True
        last_tracker: Optional[OpTracker] = None

        for features in queries:
            ctx = FheContext(cfg.params, backend=cfg.backend)
            keys = ctx.keygen()
            maurice = BaselineModelOwner(poly)
            diane = BaselineDataOwner(poly, keys)
            sally = BaselineServer(ctx, seccomp_variant=cfg.seccomp_variant)
            if cfg.encrypted_model:
                enc_model = maurice.encrypt_model(ctx, keys.public)
            else:
                enc_model = maurice.plaintext_model(ctx)
            query = diane.prepare_query(ctx, features)
            per_tree = sally.classify(enc_model, query)
            result = diane.decrypt_result(ctx, per_tree)
            expected = workload.forest.classify_per_tree(features)
            correct = correct and (result.labels == expected)
            per_query_ms.append(self._time(ctx.tracker, BASELINE_PHASES))
            last_tracker = ctx.tracker

        return self._record(per_query_ms, last_tracker, BASELINE_PHASES, correct)

    # ------------------------------------------------------------------

    def _time(self, tracker: OpTracker, phases: Sequence[str]) -> float:
        if self.config.threads > 1:
            return self.cost_model.multithreaded_ms(
                tracker, threads=self.config.threads, phases=phases
            )
        return self.cost_model.sequential_ms(tracker, phases=phases)

    def _record(
        self,
        per_query_ms: List[float],
        tracker: OpTracker,
        phases: Sequence[str],
        correct: bool,
    ) -> ExperimentRecord:
        phase_ms = {
            phase: self.cost_model.phase_sequential_ms(tracker, phase)
            for phase in phases
        }
        work, span = tracker.work_and_span(self.cost_model.cost_of, phases)
        counts: Dict[str, int] = {}
        for phase in phases:
            for kind, n in tracker.phase_stats(phase).counts.items():
                counts[kind.value] = counts.get(kind.value, 0) + n
        return ExperimentRecord(
            workload=self.workload.name,
            config=self.config,
            median_ms=statistics.median(per_query_ms),
            per_query_ms=per_query_ms,
            phase_ms=phase_ms,
            op_counts=counts,
            multiplicative_depth=tracker.multiplicative_depth(),
            work_ms=work,
            span_ms=span,
            correct=correct,
        )


def run_workload(
    workload: Workload,
    system: str = SYSTEM_COPSE,
    queries: int = 3,
    **config_kwargs,
) -> ExperimentRecord:
    """Convenience wrapper with a small default query count for tests."""
    config = RunnerConfig(system=system, queries=queries, **config_kwargs)
    return InferenceRunner(workload, config).run()
