"""Single-entry-point regeneration of the benchmark artifacts.

``repro bench report`` regenerates **both** checked-in / CI-uploaded
artifacts deterministically:

* ``benchmark_report.txt`` — every experiment table, in the fixed
  section order of :data:`SECTION_KEYS`, each under a stable
  ``=== key ===`` banner with a mode annotation in the header.  One
  writer, one ordering: the regeneration drift that used to creep in
  when ``pytest benchmarks/`` rewrote the file in collection order
  cannot recur (the benchmark suite no longer writes it);
* ``BENCH_<n>.json`` (``n`` = :data:`BENCH_INDEX`, overridable with
  ``repro bench report --out``) — the machine-readable perf trajectory:
  per-engine
  op-count/rotation/peak-live profiles for the serve workload plus
  every experiment's rows (ms/query, wall clock, throughput, backend,
  engine), uploaded by CI on every run.

Quick mode (``--quick`` or ``REPRO_BENCH_QUICK=1``) trims workload sets
and query counts exactly like the benchmark suite's quick mode; the
report structure — section banners, table titles of mode-independent
sections, column sets — is identical, which is what
``tests/bench/test_report.py`` locks against the checked-in file.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fhe.backend import canonical_backend_name
from repro.bench_harness import experiments
from repro.bench_harness.report import Table

REPORT_PATH = "benchmark_report.txt"
#: Index of the current perf-trajectory artifact.  Bumped whenever a PR
#: changes what the trajectory records (new sections, new profile
#: fields) so successive ``BENCH_<n>.json`` files remain comparable
#: within an index and the trajectory across PRs stays append-only.
BENCH_INDEX = 10
BENCH_JSON_PATH = f"BENCH_{BENCH_INDEX}.json"
BENCH_SCHEMA = 1
#: The consolidated cross-PR trajectory artifact (see
#: :func:`generate_trajectory`).
TRAJECTORY_JSON_PATH = "BENCH_TRAJECTORY.json"

#: Canonical section order.  Append-only by convention: a new experiment
#: gets a new banner at the position that reads best, and the checked-in
#: report is regenerated in the same change.
SECTION_KEYS = (
    "table6",
    "table1",
    "table2",
    "table5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "throughput",
    "plan-speedup",
    "tape-speedup",
    "megakernel-speedup",
    "backend-speedup",
    "soak",
    "trace-overhead",
    "cluster-speedup",
    "autoscale",
    "chaos",
)

#: Sections whose rendered titles do not depend on quick mode — the
#: structure test regenerates these cheaply and compares them verbatim.
MODE_INDEPENDENT_SECTIONS = ("table6", "table5", "plan-speedup")


def quick_mode_default() -> bool:
    """Quick mode as the benchmark suite defines it (env-driven)."""
    return os.environ.get("REPRO_BENCH_QUICK", "").lower() not in (
        "", "0", "false", "no",
    )


def _micro_names() -> List[str]:
    from repro.bench_harness.workloads import microbenchmark_workloads

    return [w.name for w in microbenchmark_workloads()]


def build_section(key: str, quick: bool) -> List[Table]:
    """Compute one section's tables (deterministic given the mode)."""
    fig_names = _micro_names() if quick else None
    if key == "table6":
        return [experiments.table6()]
    if key == "table1":
        return experiments.table1(workload_name="width78", queries=1)
    if key == "table2":
        return [experiments.table2(workload_name="width78")]
    if key == "table5":
        return [experiments.table5()]
    if key == "fig6":
        return [experiments.figure6(queries=1, workload_names=fig_names)]
    if key == "fig7":
        return [experiments.figure7(queries=1, workload_names=fig_names)]
    if key == "fig8":
        return [experiments.figure8(queries=1, workload_names=fig_names)]
    if key == "fig9":
        return [experiments.figure9(queries=1, workload_names=fig_names)]
    if key == "fig10":
        return experiments.figure10(queries=1)
    if key == "throughput":
        return [
            experiments.throughput(
                workload_name="width78", queries=8 if quick else 16
            )
        ]
    if key == "plan-speedup":
        return [experiments.plan_speedup(workload_name="width78", queries=2)]
    if key == "tape-speedup":
        return [
            experiments.tape_speedup(
                workload_name="width78", repeats=3 if quick else 5
            )
        ]
    if key == "megakernel-speedup":
        return [
            experiments.megakernel_speedup(
                workload_name="width78", repeats=3 if quick else 5
            )
        ]
    if key == "backend-speedup":
        return [
            experiments.backend_speedup(
                workload_name="width78", queries=2 if quick else 8
            )
        ]
    if key == "soak":
        return [
            experiments.soak(
                workload_name="width78", queries=600 if quick else 2000
            )
        ]
    if key == "trace-overhead":
        return [
            experiments.tracing_overhead(
                workload_name="width78", repeats=2 if quick else 3
            )
        ]
    if key == "cluster-speedup":
        return [
            experiments.cluster_speedup(
                workload_name="width78",
                workers=(1, 2) if quick else (1, 2, 4),
                batches=2 if quick else 4,
            )
        ]
    if key == "autoscale":
        # Virtual-clock simulation: quick mode needs no trimming (the
        # full three-phase ramp runs in a couple of seconds) and the
        # section stays byte-identical across modes.
        return [experiments.autoscale(workload_name="width78")]
    if key == "chaos":
        # Also virtual-clock: the full 3x-run acceptance soak (chaos,
        # replay, fault-free twin) costs a couple of seconds, so quick
        # mode needs no trimming here either.
        return [experiments.chaos(workload_name="width78")]
    raise KeyError(f"unknown report section {key!r}")


def _json_cell(value):
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if isinstance(value, float):
        return round(value, 6)
    return value


def _table_record(key: str, table: Table) -> Dict:
    return {
        "section": key,
        "title": table.title,
        "columns": list(table.columns),
        "rows": [[_json_cell(c) for c in row] for row in table.rows],
        "notes": list(table.notes),
    }


def engine_profiles(workload_name: str = "width78") -> List[Dict]:
    """Per-engine op-count/rotation profiles of the serve workload.

    One record per (lowering, engine): the single-query and batched
    plan profiles plus the compiled tape's (with its peak-live and
    instruction metrics) — the static half of the perf trajectory.
    """
    from repro.bench_harness.workloads import workload_by_name
    from repro.fhe.costmodel import CostModel
    from repro.fhe.params import EncryptionParams
    from repro.ir.plan import lower_batched_inference, lower_inference
    from repro.serve.packing import plan_layout

    params = EncryptionParams.paper_defaults()
    cost_model = CostModel(params)
    compiled = workload_by_name(workload_name).compiled
    layout = plan_layout(compiled, params)

    records: List[Dict] = []

    def profile_record(shape, engine, profile, extra=None):
        record = {
            "workload": workload_name,
            "shape": shape,
            "engine": engine,
            "op_counts": {
                op.value: n for op, n in sorted(
                    profile.counts.items(), key=lambda kv: kv[0].value
                )
            },
            "rotations": profile.rotations,
            "depth": profile.depth,
            "cost_ms": round(profile.cost_ms(cost_model), 4),
        }
        if extra:
            record.update(extra)
        records.append(record)

    from repro.ir.megakernel import compile_megakernel

    def megakernel_record(shape, tape):
        kernel = compile_megakernel(tape)
        profile_record(
            shape, "megakernel", kernel.profile,
            {
                "peak_live": kernel.peak_live,
                "slots": kernel.num_slots,
                "instructions": kernel.num_instructions,
                "segments": kernel.num_segments,
                "steps": kernel.num_blocks,
                "register_rows": kernel.num_rows,
                "live_rows": kernel.data_rows,
                "supported": kernel.supported,
            },
        )

    single = lower_inference(compiled)
    profile_record("single", "plan", single.optimized)
    single_tape = single.compile_tape()
    profile_record(
        "single", "tape", single_tape.profile,
        {
            "peak_live": single_tape.peak_live,
            "slots": single_tape.num_slots,
            "instructions": single_tape.num_instructions,
        },
    )
    megakernel_record("single", single_tape)
    batched = lower_batched_inference(compiled, layout)
    profile_record("batched", "plan", batched.optimized)
    batched_tape = batched.compile_tape()
    profile_record(
        "batched", "tape", batched_tape.profile,
        {
            "peak_live": batched_tape.peak_live,
            "slots": batched_tape.num_slots,
            "instructions": batched_tape.num_instructions,
        },
    )
    megakernel_record("batched", batched_tape)
    return records


def tape_profile(workload_name: str = "width78") -> Dict:
    """One profiled batched-tape run, as the profiler's JSON record.

    Folded into ``BENCH_*.json`` so the trajectory carries per-opcode
    wall/op/noise attribution next to the static engine profiles.  Op
    counts and noise depths are deterministic (the circuits are
    input-independent); wall milliseconds are the run's measurement.
    """
    from repro.fhe.context import FheContext
    from repro.fhe.params import EncryptionParams
    from repro.ir.plan import bind_model_query
    from repro.obs.profiler import TapeProfiler
    from repro.bench_harness.workloads import workload_by_name
    from repro.serve.batched_runtime import encrypt_batch
    from repro.serve.registry import ModelRegistry

    workload = workload_by_name(workload_name)
    params = EncryptionParams.paper_defaults()
    registered = ModelRegistry().register(
        f"profile-{workload_name}", workload.compiled, params=params,
        engine="tape",
    )
    ctx = FheContext(params, backend=registered.backend)
    queries = workload.query_features(registered.layout.capacity)
    query = encrypt_batch(ctx, registered.layout, queries, registered.keys)
    bindings = bind_model_query(
        ctx,
        registered.tape.input_widths,
        registered.tape.encrypted_model,
        registered.tape.model_fingerprint,
        registered.batched_model,
        query,
    )
    profiler = TapeProfiler()
    registered.tape.execute(ctx, bindings, profiler=profiler)
    record = profiler.as_dict()
    record["workload"] = workload_name
    record["shape"] = "batched"
    return record


def render_report(
    sections: Dict[str, List[Table]], quick: bool
) -> str:
    """Render collected sections in canonical order with banners."""
    mode = "quick" if quick else "full"
    lines = [
        "# COPSE benchmark report",
        "# regenerated by: PYTHONPATH=src python -m repro bench report",
        f"# mode: {mode} (quick trims workloads/queries; the section "
        f"structure is identical)",
    ]
    for key in SECTION_KEYS:
        if key not in sections:
            continue
        lines.append("")
        lines.append(f"=== {key} ===")
        for table in sections[key]:
            lines.append("")
            lines.append(table.render())
    return "\n".join(lines) + "\n"


def generate_report(
    quick: Optional[bool] = None,
    sections: Optional[Sequence[str]] = None,
    report_path: Optional[str] = REPORT_PATH,
    json_path: Optional[str] = BENCH_JSON_PATH,
) -> List[str]:
    """Regenerate the benchmark report (and BENCH_<n>.json); returns the
    written paths.  ``sections`` restricts regeneration (used by the
    structure test); the JSON artifact is only written for full-section
    runs, so a partial regeneration can never publish a partial
    trajectory.  Pass ``report_path=None``/``json_path=None`` to skip
    writing and just compute.
    """
    if quick is None:
        quick = quick_mode_default()
    keys = tuple(sections) if sections is not None else SECTION_KEYS
    unknown = set(keys) - set(SECTION_KEYS)
    if unknown:
        raise KeyError(f"unknown report sections: {sorted(unknown)}")

    built: Dict[str, List[Table]] = {}
    for key in SECTION_KEYS:
        if key in keys:
            built[key] = build_section(key, quick)

    written: List[str] = []
    text = render_report(built, quick)
    if report_path is not None:
        with open(report_path, "w") as handle:
            handle.write(text)
        written.append(report_path)

    if json_path is not None and set(keys) == set(SECTION_KEYS):
        artifact = os.path.splitext(os.path.basename(json_path))[0]
        payload = {
            "schema": BENCH_SCHEMA,
            "artifact": artifact,
            "mode": "quick" if quick else "full",
            "default_backend": canonical_backend_name(),
            "engine_profiles": engine_profiles(),
            "tape_profile": tape_profile(),
            "experiments": [
                _table_record(key, table)
                for key in SECTION_KEYS
                for table in built[key]
            ],
        }
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        written.append(json_path)
    return written


def _validate_bench_payload(path: str, payload) -> None:
    """Schema check for one ``BENCH_<n>.json`` (fail with the path)."""
    from repro.errors import ValidationError

    if not isinstance(payload, dict):
        raise ValidationError(f"{path}: not a JSON object")
    if payload.get("schema") != BENCH_SCHEMA:
        raise ValidationError(
            f"{path}: schema {payload.get('schema')!r} != {BENCH_SCHEMA}"
        )
    for field in ("artifact", "mode", "default_backend", "experiments"):
        if field not in payload:
            raise ValidationError(f"{path}: missing field {field!r}")
    for record in payload["experiments"]:
        for field in ("section", "title", "columns", "rows"):
            if field not in record:
                raise ValidationError(
                    f"{path}: experiment record missing {field!r}"
                )
        width = len(record["columns"])
        for row in record["rows"]:
            if len(row) != width:
                raise ValidationError(
                    f"{path}: section {record['section']!r} row width "
                    f"{len(row)} != {width} columns"
                )


def discover_bench_artifacts(directory: str = ".") -> List[Tuple[int, str]]:
    """``(index, path)`` for every ``BENCH_<n>.json`` present, sorted by
    index.  The consolidated trajectory file itself never matches."""
    import glob
    import re

    found = []
    for path in glob.glob(os.path.join(directory, "BENCH_*.json")):
        match = re.fullmatch(
            r"BENCH_(\d+)\.json", os.path.basename(path)
        )
        if match:
            found.append((int(match.group(1)), path))
    return sorted(found)


def generate_trajectory(
    directory: str = ".",
    json_path: Optional[str] = TRAJECTORY_JSON_PATH,
) -> Tuple[Optional[str], Table]:
    """Consolidate every ``BENCH_<n>.json`` into the cross-PR trajectory.

    Globs ``BENCH_<n>.json`` under ``directory``, validates each payload
    against the bench schema (a malformed artifact fails loudly with its
    path — the trajectory never silently skips), and writes
    ``BENCH_TRAJECTORY.json``: one entry per index carrying the full
    experiment tables plus the headline batched-tape profile, so a
    regression between trajectory indices is diffable from one file.
    Returns ``(written_path_or_None, summary_table)``.
    """
    from repro.errors import ValidationError

    artifacts = discover_bench_artifacts(directory)
    if not artifacts:
        raise ValidationError(
            f"no BENCH_<n>.json artifacts found under {directory!r}"
        )

    entries: List[Dict] = []
    table = Table(
        title=(
            f"Perf trajectory: {len(artifacts)} BENCH_<n>.json "
            f"artifact{'s' if len(artifacts) != 1 else ''} consolidated"
        ),
        columns=[
            "index",
            "mode",
            "backend",
            "sections",
            "tables",
            "tape_instr",
            "tape_peak_live",
            "tape_cost_ms",
        ],
    )
    for index, path in artifacts:
        with open(path) as handle:
            payload = json.load(handle)
        _validate_bench_payload(path, payload)
        sections = sorted({
            record["section"] for record in payload["experiments"]
        })
        tape = next(
            (
                record
                for record in payload.get("engine_profiles", [])
                if record.get("shape") == "batched"
                and record.get("engine") == "tape"
            ),
            None,
        )
        entries.append({
            "index": index,
            "artifact": payload["artifact"],
            "mode": payload["mode"],
            "default_backend": payload["default_backend"],
            "sections": sections,
            "experiments": payload["experiments"],
            "batched_tape_profile": tape,
        })
        table.add_row(
            index,
            payload["mode"],
            payload["default_backend"],
            len(sections),
            len(payload["experiments"]),
            tape["instructions"] if tape else "-",
            tape["peak_live"] if tape else "-",
            tape["cost_ms"] if tape else "-",
        )
    table.add_note(
        "indices are append-only across PRs; within an index the "
        "section set is fixed, so row-level diffs between files of the "
        "same index are real regressions"
    )

    written = None
    if json_path is not None:
        payload = {
            "schema": BENCH_SCHEMA,
            "artifact": "BENCH_TRAJECTORY",
            "entries": entries,
        }
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        written = json_path
    return written, table


def report_structure(text: str) -> List[Tuple[str, str]]:
    """(banner, first table title) pairs of a rendered report — the
    shape the structure test compares."""
    structure: List[Tuple[str, str]] = []
    banner = None
    want_title = False
    for line in text.splitlines():
        if line.startswith("=== ") and line.endswith(" ==="):
            banner = line[4:-4]
            want_title = True
            continue
        if want_title and line and not line.startswith("#"):
            structure.append((banner, line))
            want_title = False
    return structure
