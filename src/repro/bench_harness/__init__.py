"""Benchmark harness regenerating the paper's evaluation (Section 8).

* :mod:`repro.bench_harness.workloads` — the 8 Table 6 microbenchmarks
  and the 4 real-world models (income5/15, soccer5/15);
* :mod:`repro.bench_harness.runner` — the 27-query median protocol with
  per-phase timing, for both COPSE and the baseline;
* :mod:`repro.bench_harness.experiments` — one entry point per paper
  artifact (``figure6()`` ... ``figure10()``, ``table1()`` ...
  ``table6()``);
* :mod:`repro.bench_harness.report` — plain-text table/series rendering.
"""

from repro.bench_harness.workloads import (
    Workload,
    all_workloads,
    microbenchmark_workloads,
    real_world_workloads,
    workload_by_name,
)
from repro.bench_harness.runner import (
    ExperimentRecord,
    InferenceRunner,
    RunnerConfig,
)
from repro.bench_harness import experiments
from repro.bench_harness.report import Table, geometric_mean

__all__ = [
    "Workload",
    "all_workloads",
    "microbenchmark_workloads",
    "real_world_workloads",
    "workload_by_name",
    "InferenceRunner",
    "RunnerConfig",
    "ExperimentRecord",
    "experiments",
    "Table",
    "geometric_mean",
]
