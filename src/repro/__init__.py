"""COPSE: vectorized secure evaluation of decision forests.

A complete Python reproduction of *"Vectorized Secure Evaluation of
Decision Forests"* (Malik, Singhal, Gottfried, Kulkarni — PLDI 2021):
the COPSE compiler and runtime, a BGV-style FHE simulator substrate with
ciphertext packing and cost-accurate operation tracking, the Aloufi et
al. polynomial baseline it is evaluated against, the security/leakage
analysis of Section 7, and a benchmark harness regenerating every table
and figure of the paper's evaluation.

Quickstart::

    import numpy as np
    from repro import CopseCompiler, secure_inference
    from repro.forest import random_forest

    forest = random_forest(np.random.default_rng(0), [7, 8], max_depth=5)
    compiled = CopseCompiler(precision=8).compile(forest)
    outcome = secure_inference(compiled, features=[40, 200])
    print(outcome.result.chosen_labels, outcome.result.plurality_name())

At service scale, :class:`repro.serve.CopseService` amortizes one
compiled+encrypted model across a query stream via cross-query SIMD
packing::

    from repro import CopseService

    with CopseService(threads=4) as service:
        service.register_model("demo", forest)
        results = service.classify_many("demo", [[40, 200], [17, 3]])

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.errors import (
    CompileError,
    CopseError,
    FheError,
    KeyMismatchError,
    ModelError,
    NoiseBudgetExceededError,
    RuntimeProtocolError,
)
from repro.fhe import (
    CostModel,
    EncryptionParams,
    FheBackend,
    FheContext,
    OpTracker,
    available_backends,
    backend_description,
    default_backend,
    get_backend,
    register_backend,
)
from repro.forest import DecisionForest, DecisionTree
from repro.core import (
    CompiledModel,
    CopseCompiler,
    CopseServer,
    DataOwner,
    ModelOwner,
    secure_inference,
)
from repro.ir import (
    CompiledTape,
    InferencePlan,
    IrBuilder,
    IrGraph,
    IrNode,
    IrOp,
    analyze_cost,
    analyze_counts,
    analyze_depth,
    build_inference_graph,
    common_subexpression_elimination,
    dead_code_elimination,
    execute,
    fuse_rotations,
    ir_secure_inference,
    lower_batched_inference,
    lower_inference,
    optimize,
    schedule_rotations,
)
from repro.serve import (
    BatchLayout,
    ClassificationResult,
    CopseService,
    FaultPlan,
    ModelProfile,
    ModelRegistry,
    QueryBatcher,
    Scheduler,
    SchedulerStats,
    ServiceStats,
    SimRunner,
    TenantSpec,
    VirtualClock,
    generate_arrivals,
)

__version__ = "1.2.0"

__all__ = [
    "CopseError",
    "FheError",
    "ModelError",
    "CompileError",
    "RuntimeProtocolError",
    "KeyMismatchError",
    "NoiseBudgetExceededError",
    "EncryptionParams",
    "FheContext",
    "FheBackend",
    "available_backends",
    "backend_description",
    "default_backend",
    "get_backend",
    "register_backend",
    "OpTracker",
    "CostModel",
    "DecisionForest",
    "DecisionTree",
    "CompiledModel",
    "CopseCompiler",
    "ModelOwner",
    "DataOwner",
    "CopseServer",
    "secure_inference",
    "InferencePlan",
    "CompiledTape",
    "IrBuilder",
    "IrGraph",
    "IrNode",
    "IrOp",
    "analyze_cost",
    "analyze_counts",
    "analyze_depth",
    "build_inference_graph",
    "common_subexpression_elimination",
    "dead_code_elimination",
    "execute",
    "fuse_rotations",
    "ir_secure_inference",
    "lower_batched_inference",
    "lower_inference",
    "optimize",
    "schedule_rotations",
    "BatchLayout",
    "ClassificationResult",
    "CopseService",
    "FaultPlan",
    "ModelProfile",
    "ModelRegistry",
    "QueryBatcher",
    "Scheduler",
    "SchedulerStats",
    "ServiceStats",
    "SimRunner",
    "TenantSpec",
    "VirtualClock",
    "generate_arrivals",
    "__version__",
]
