"""Span tracing with explicit clocks and deterministic exporters.

A :class:`Tracer` records *spans* — named intervals with a parent link,
a track (the visual lane an exporter renders them on), and a small
attribute dict.  Two properties make it fit this codebase:

* **Explicit timestamps.**  Every ``begin``/``end``/``event`` call takes
  ``now`` (seconds, from the caller's
  :class:`~repro.serve.simclock.Clock`) instead of reading a clock
  itself.  The scheduler core already threads explicit time through
  every decision; the tracer follows the same discipline, so a
  :class:`~repro.serve.simclock.VirtualClock` run produces
  byte-identical traces per seed — the determinism lock in
  ``tests/obs/test_trace_determinism.py`` compares exported JSONL
  byte-for-byte across runs.
* **Bounded memory.**  Finished spans live in a ring (``max_spans``);
  overflow drops the oldest finished span and counts it in
  :attr:`Tracer.dropped`, so a long-lived traced service degrades to a
  tail window instead of growing without bound.

The query lifecycle the serve path records (see
``repro.serve.scheduler`` / ``repro.serve.batcher``)::

    query                          # root: submit -> terminal outcome
      submit / admit / reject      # instant events
      queue-wait                   # admit -> batch-cut (per attempt)
      execute                      # batch-cut -> completion
    batch                          # cut -> worker completion, links=members
      pack / execute(tape) / demux / resolve   # real-engine sub-stages

Every root ``query`` span ends with an ``outcome`` attribute in
{``completed``, ``rejected``, ``failed``, ``cancelled``} — the span-level
mirror of the scheduler's conservation invariant.

Exporters (module functions, pure over a span list):

* :func:`export_jsonl` — one sorted-key JSON object per span line;
* :func:`export_chrome` — Chrome trace-event JSON (the ``traceEvents``
  array), loadable in Perfetto / ``chrome://tracing``: batch and stage
  spans export as complete (``"X"``) events on per-track tids, query
  lifecycle spans as async (``"b"``/``"e"``) events so overlapping
  queries of one tenant render as separate nested tracks.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import ValidationError

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "export_jsonl",
    "export_chrome",
    "chrome_json",
    "OUTCOME_COMPLETED",
    "OUTCOME_REJECTED",
    "OUTCOME_FAILED",
    "OUTCOME_CANCELLED",
    "QUERY_OUTCOMES",
]

#: Terminal outcomes a root ``query`` span may end with — the span-level
#: conservation alphabet (submitted == completed+rejected+failed+cancelled).
OUTCOME_COMPLETED = "completed"
OUTCOME_REJECTED = "rejected"
OUTCOME_FAILED = "failed"
OUTCOME_CANCELLED = "cancelled"
QUERY_OUTCOMES = (
    OUTCOME_COMPLETED, OUTCOME_REJECTED, OUTCOME_FAILED, OUTCOME_CANCELLED,
)

#: Default finished-span ring size (a 5k-query soak records ~4 spans per
#: query; the default holds an order of magnitude more).
DEFAULT_MAX_SPANS = 262144


class Span:
    """One recorded interval.  ``end`` is None while the span is open."""

    __slots__ = ("span_id", "parent", "name", "track", "start", "end", "attrs")

    def __init__(self, span_id, parent, name, track, start):
        self.span_id = span_id
        self.parent = parent
        self.name = name
        self.track = track
        self.start = start
        self.end: Optional[float] = None
        self.attrs: Dict[str, object] = {}

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def as_record(self) -> Dict[str, object]:
        """The span as a deterministic, JSON-able dict."""
        return {
            "span": self.span_id,
            "parent": self.parent,
            "name": self.name,
            "track": self.track,
            "t0": round(self.start, 9),
            "t1": None if self.end is None else round(self.end, 9),
            "attrs": {k: self.attrs[k] for k in sorted(self.attrs)},
        }


class Tracer:
    """Collects spans with explicit timestamps; thread-safe.

    Span ids are a per-tracer counter starting at 1 (deterministic for
    deterministic call orders — the simulator's case).  ``max_spans``
    bounds the *finished* ring; open spans are tracked separately and
    are expected to be few (one per in-flight query/batch).
    """

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS):
        if max_spans < 1:
            raise ValidationError(
                f"max_spans must be >= 1, got {max_spans}"
            )
        self._lock = threading.Lock()
        self._next_id = 1
        self._open: Dict[int, Span] = {}
        self._finished: Deque[Span] = deque()
        self._max_spans = max_spans
        #: Finished spans evicted by the ring bound.
        self.dropped = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def begin(
        self,
        name: str,
        now: float,
        parent: Optional[int] = None,
        track: str = "",
        **attrs,
    ) -> int:
        """Open a span; returns its id (pass to :meth:`end`)."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            span = Span(span_id, parent, name, track, now)
            if attrs:
                span.attrs.update(attrs)
            self._open[span_id] = span
            return span_id

    def end(self, span_id: int, now: float, **attrs) -> None:
        """Close an open span (unknown/already-closed ids are ignored —
        an instrumentation race must never take the serve path down)."""
        with self._lock:
            span = self._open.pop(span_id, None)
            if span is None:
                return
            span.end = now
            if attrs:
                span.attrs.update(attrs)
            self._finish(span)

    def event(
        self,
        name: str,
        now: float,
        parent: Optional[int] = None,
        track: str = "",
        **attrs,
    ) -> int:
        """Record an instant (zero-duration) span."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            span = Span(span_id, parent, name, track, now)
            span.end = now
            if attrs:
                span.attrs.update(attrs)
            self._finish(span)
            return span_id

    def annotate(self, span_id: int, **attrs) -> None:
        """Attach attributes to a still-open span."""
        with self._lock:
            span = self._open.get(span_id)
            if span is not None:
                span.attrs.update(attrs)

    def _finish(self, span: Span) -> None:
        self._finished.append(span)
        while len(self._finished) > self._max_spans:
            self._finished.popleft()
            self.dropped += 1

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def spans(self, include_open: bool = False) -> List[Span]:
        """Finished spans in id order (plus open ones when asked)."""
        with self._lock:
            out = list(self._finished)
            if include_open:
                out.extend(self._open.values())
        return sorted(out, key=lambda s: s.span_id)

    @property
    def open_spans(self) -> int:
        with self._lock:
            return len(self._open)

    def to_jsonl(self) -> str:
        return export_jsonl(self.spans())

    def to_chrome(self) -> Dict:
        return export_chrome(self.spans())


class NullTracer:
    """The do-nothing tracer: every method is a constant-return stub.

    The serve path guards instrumentation with ``if tracer is not
    None`` (strictly zero-cost when disabled); NullTracer exists for
    call sites that want an unconditional tracer object instead.
    """

    dropped = 0
    open_spans = 0

    def begin(self, name, now, parent=None, track="", **attrs) -> int:
        return 0

    def end(self, span_id, now, **attrs) -> None:
        pass

    def event(self, name, now, parent=None, track="", **attrs) -> int:
        return 0

    def annotate(self, span_id, **attrs) -> None:
        pass

    def spans(self, include_open: bool = False) -> List[Span]:
        return []

    def to_jsonl(self) -> str:
        return ""

    def to_chrome(self) -> Dict:
        return export_chrome([])


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


def export_jsonl(spans: List[Span]) -> str:
    """One sorted-key JSON object per line, in span-id order.

    Deterministic by construction: ids are a call-order counter, keys
    are sorted, floats are rounded to 9 decimals before serialization.
    """
    lines = [
        json.dumps(span.as_record(), sort_keys=True, separators=(",", ":"))
        for span in sorted(spans, key=lambda s: s.span_id)
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def _microseconds(t: float) -> float:
    return round(t * 1e6, 3)


def export_chrome(spans: List[Span]) -> Dict:
    """Chrome trace-event JSON (Perfetto-loadable) for a span list.

    Tracks become tids (named via thread_name metadata).  Spans on the
    ``query`` lifecycle tracks (``tenant:*``) export as async b/e pairs
    keyed by span id — overlapping queries of one tenant stay legible —
    while worker/batch/stage spans export as complete ``"X"`` events.
    """
    tids: Dict[str, int] = {}

    def tid_of(track: str) -> int:
        if track not in tids:
            tids[track] = len(tids) + 1
        return tids[track]

    events: List[Dict] = []
    for span in sorted(spans, key=lambda s: s.span_id):
        track = span.track or "main"
        tid = tid_of(track)
        args = {k: span.attrs[k] for k in sorted(span.attrs)}
        args["span"] = span.span_id
        if span.parent is not None:
            args["parent"] = span.parent
        end = span.end if span.end is not None else span.start
        base = {
            "name": span.name,
            "cat": track.split(":", 1)[0],
            "pid": 1,
            "tid": tid,
            "args": args,
        }
        if track.startswith("tenant:"):
            begin = dict(base)
            begin.update(
                ph="b", id=span.span_id, ts=_microseconds(span.start)
            )
            finish = dict(base)
            finish.update(ph="e", id=span.span_id, ts=_microseconds(end))
            events.append(begin)
            events.append(finish)
        else:
            complete = dict(base)
            complete.update(
                ph="X",
                ts=_microseconds(span.start),
                dur=_microseconds(end - span.start),
            )
            events.append(complete)

    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": "repro.serve"},
        }
    ]
    for track in sorted(tids, key=tids.get):
        metadata.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tids[track],
            "args": {"name": track},
        })
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def chrome_json(spans: List[Span]) -> str:
    """The Chrome trace-event document as a deterministic JSON string."""
    return json.dumps(export_chrome(spans), sort_keys=True, indent=None,
                      separators=(",", ":")) + "\n"
