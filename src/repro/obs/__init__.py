"""`repro.obs` — tracing, metrics, and profiling for the serve path.

Three instruments, one discipline (explicit clocks, bounded memory,
deterministic exports):

* :mod:`repro.obs.trace` — :class:`Tracer` spans over the query
  lifecycle with JSONL and Chrome trace-event (Perfetto) exporters;
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry`
  counters/gauges/histograms backing ``ServiceStats`` and
  ``SchedulerStats``, with Prometheus-text and JSON snapshot exports;
* :mod:`repro.obs.profiler` — :class:`TapeProfiler`, the opt-in
  per-instruction attribution hook of the tape/graph executors.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)
from repro.obs.profiler import InstructionSample, OpcodeTotals, TapeProfiler
from repro.obs.trace import (
    NullTracer,
    OUTCOME_CANCELLED,
    OUTCOME_COMPLETED,
    OUTCOME_FAILED,
    OUTCOME_REJECTED,
    QUERY_OUTCOMES,
    Span,
    Tracer,
    chrome_json,
    export_chrome,
    export_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "percentile",
    "InstructionSample",
    "OpcodeTotals",
    "TapeProfiler",
    "NullTracer",
    "Span",
    "Tracer",
    "chrome_json",
    "export_chrome",
    "export_jsonl",
    "OUTCOME_COMPLETED",
    "OUTCOME_REJECTED",
    "OUTCOME_FAILED",
    "OUTCOME_CANCELLED",
    "QUERY_OUTCOMES",
]
