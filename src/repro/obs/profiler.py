"""Opt-in tape/executor profiling: wall time, ops, and noise per opcode.

A :class:`TapeProfiler` is handed to
:meth:`repro.ir.tape.CompiledTape.execute` (or the graph executor of
:mod:`repro.ir.executor`) and receives one callback per executed
instruction carrying:

* the instruction index and opcode name,
* the measured wall time of that single instruction,
* the tracker's primitive-op counts immediately before and after (the
  profiler stores the *delta*, so summing every sample reconciles
  **exactly** with the tracker's own totals — the acceptance check in
  ``tests/obs/test_profiler.py``),
* the produced value, from which the noise read-out
  (:attr:`~repro.fhe.noise.NoiseState.effective_depth` of the result
  ciphertext) is taken.

Profiling is opt-in by construction: the executors take ``profiler=None``
and branch to a separate instrumented loop only when one is given, so
the un-profiled hot path contains no callback, no snapshot, and no
timestamp.  Samples accumulate across runs (a serve worker can profile
every batch of a soak); aggregation is per opcode
(:meth:`TapeProfiler.by_opcode`) and per instruction range
(:meth:`TapeProfiler.range_totals`), surfaced by ``repro trace tape``
(:meth:`TapeProfiler.report`) and folded into ``BENCH_*.json``
(:meth:`TapeProfiler.as_dict`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.fhe.ciphertext import Ciphertext
from repro.fhe.tracker import OpKind

__all__ = ["InstructionSample", "OpcodeTotals", "TapeProfiler"]


@dataclass
class InstructionSample:
    """One executed instruction's measurements."""

    index: int
    opcode: str
    wall_s: float
    #: Primitive-op delta recorded by the tracker for this instruction.
    op_counts: Dict[OpKind, int]
    #: Noise read-out: the result ciphertext's effective multiplicative
    #: depth (None for plaintext results).
    depth: Optional[int]

    @property
    def ops(self) -> int:
        return sum(self.op_counts.values())


@dataclass
class OpcodeTotals:
    """Aggregate over every sample of one opcode."""

    opcode: str
    instructions: int = 0
    wall_s: float = 0.0
    op_counts: Dict[OpKind, int] = field(default_factory=dict)
    max_depth: int = 0

    def add(self, sample: InstructionSample) -> None:
        self.instructions += 1
        self.wall_s += sample.wall_s
        for kind, n in sample.op_counts.items():
            self.op_counts[kind] = self.op_counts.get(kind, 0) + n
        if sample.depth is not None and sample.depth > self.max_depth:
            self.max_depth = sample.depth

    @property
    def ops(self) -> int:
        return sum(self.op_counts.values())


class TapeProfiler:
    """Accumulates per-instruction samples across profiled executions.

    ``clock`` threads the caller's :class:`~repro.serve.simclock.Clock`
    into the instruction timer: a run driven by a ``VirtualClock``
    profiles in virtual time, so its samples (and the ``as_dict()``
    record folded into trace/bench artifacts) are byte-identical per
    seed instead of mixing nondeterministic wall time into an otherwise
    deterministic export.  Without a clock, ``timer`` defaults to
    :func:`time.perf_counter` (real wall time — the measurement a
    ``repro trace tape`` profile wants); tests may inject a fake timer
    directly.  The profiler itself never reads the timer mid-run — the
    executor brackets each instruction and reports the elapsed time,
    keeping the measurement as close to the dispatch as possible.
    """

    def __init__(self, timer=None, clock=None):
        if timer is None:
            timer = clock.now if clock is not None else time.perf_counter
        self.clock = clock
        self.timer = timer
        self.samples: List[InstructionSample] = []
        self.runs = 0

    # ------------------------------------------------------------------
    # Recording (called by the instrumented executor loops)
    # ------------------------------------------------------------------

    def begin_run(self) -> None:
        self.runs += 1

    def instruction(
        self,
        index: int,
        opcode: str,
        wall_s: float,
        before: Dict[OpKind, int],
        after: Dict[OpKind, int],
        result,
    ) -> None:
        """Record one instruction from its before/after tracker snapshots."""
        delta = {
            kind: after[kind] - before.get(kind, 0)
            for kind in after
            if after[kind] != before.get(kind, 0)
        }
        depth: Optional[int] = None
        if isinstance(result, Ciphertext):
            depth = result.noise.effective_depth
        self.samples.append(
            InstructionSample(index, opcode, wall_s, delta, depth)
        )

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def op_totals(self) -> Dict[OpKind, int]:
        """Primitive-op counts summed over every sample.

        Built from per-instruction tracker deltas, so for a profiled
        execution this reconciles exactly with the tracker's own totals
        for that phase.
        """
        totals: Dict[OpKind, int] = {}
        for sample in self.samples:
            for kind, n in sample.op_counts.items():
                totals[kind] = totals.get(kind, 0) + n
        return totals

    def by_opcode(self) -> Dict[str, OpcodeTotals]:
        """Per-opcode aggregates, sorted by descending wall time."""
        out: Dict[str, OpcodeTotals] = {}
        for sample in self.samples:
            totals = out.get(sample.opcode)
            if totals is None:
                totals = out[sample.opcode] = OpcodeTotals(sample.opcode)
            totals.add(sample)
        return dict(
            sorted(out.items(), key=lambda kv: -kv[1].wall_s)
        )

    def range_totals(self, start: int, stop: int) -> OpcodeTotals:
        """Aggregate over instruction indices in ``[start, stop)``."""
        totals = OpcodeTotals(f"[{start}:{stop})")
        for sample in self.samples:
            if start <= sample.index < stop:
                totals.add(sample)
        return totals

    @property
    def total_wall_s(self) -> float:
        return sum(s.wall_s for s in self.samples)

    @property
    def max_depth(self) -> int:
        return max(
            (s.depth for s in self.samples if s.depth is not None),
            default=0,
        )

    # ------------------------------------------------------------------
    # Surfacing
    # ------------------------------------------------------------------

    def report(self, ranges: int = 4) -> str:
        """The ``repro trace tape`` text report.

        Per-opcode table (wall ms, instruction count, primitive ops,
        max noise depth) followed by a coarse instruction-range
        breakdown locating *where* on the tape the time goes.
        """
        lines = [
            f"profiled runs: {self.runs}, samples: {len(self.samples)}, "
            f"wall {self.total_wall_s * 1e3:.3f} ms, "
            f"max noise depth {self.max_depth}",
            "",
            f"{'opcode':<10} {'instrs':>8} {'wall ms':>10} "
            f"{'ops':>8} {'depth':>6}  op breakdown",
        ]
        for name, totals in self.by_opcode().items():
            breakdown = ", ".join(
                f"{kind.value}={n}"
                for kind, n in sorted(
                    totals.op_counts.items(), key=lambda kv: kv[0].value
                )
            )
            lines.append(
                f"{name:<10} {totals.instructions:>8} "
                f"{totals.wall_s * 1e3:>10.3f} {totals.ops:>8} "
                f"{totals.max_depth:>6}  {breakdown}"
            )
        if self.samples and ranges > 0:
            length = max(s.index for s in self.samples) + 1
            step = -(-length // ranges)
            lines.append("")
            lines.append(
                f"{'range':<14} {'instrs':>8} {'wall ms':>10} {'ops':>8}"
            )
            for start in range(0, length, step):
                stop = min(start + step, length)
                totals = self.range_totals(start, stop)
                lines.append(
                    f"{totals.opcode:<14} {totals.instructions:>8} "
                    f"{totals.wall_s * 1e3:>10.3f} {totals.ops:>8}"
                )
        return "\n".join(lines)

    def as_dict(self) -> Dict:
        """JSON-able record for ``bench report``'s BENCH_*.json."""
        opcodes = {}
        for name, totals in self.by_opcode().items():
            opcodes[name] = {
                "instructions": totals.instructions,
                "wall_ms": round(totals.wall_s * 1e3, 6),
                "ops": totals.ops,
                "op_counts": {
                    kind.value: n
                    for kind, n in sorted(
                        totals.op_counts.items(),
                        key=lambda kv: kv[0].value,
                    )
                },
                "max_depth": totals.max_depth,
            }
        return {
            "runs": self.runs,
            "samples": len(self.samples),
            "wall_ms": round(self.total_wall_s * 1e3, 6),
            "max_depth": self.max_depth,
            "op_totals": {
                kind.value: n
                for kind, n in sorted(
                    self.op_totals().items(), key=lambda kv: kv[0].value
                )
            },
            "opcodes": opcodes,
        }
