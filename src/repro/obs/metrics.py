"""Bounded-memory metrics: counters, gauges, sliding-window histograms.

Before this module the repo had three ad-hoc aggregators growing side by
side — the service's ``_StatsAggregator``, the scheduler core's loose
counter attributes, and the batcher's per-phase timing dicts.  Each had
its own locking, its own snapshot shape, and no export format.  The
:class:`MetricsRegistry` replaces all three as the single store the
serve path writes through: :class:`~repro.serve.scheduler.SchedulerCore`
backs every scheduling counter with it and
:class:`~repro.serve.service.CopseService` backs every evaluation
aggregate with it, so ``ServiceStats``/``SchedulerStats`` are now pure
*views* over one source of truth.

Design constraints, in order:

* **Determinism.**  A registry driven by the deterministic simulator
  must snapshot byte-identically per seed: instruments store plain
  Python numbers, snapshots sort every key, and percentiles use the
  same nearest-rank recipe the scheduler always used.
* **Bounded memory.**  Counters and gauges are O(1); histograms keep a
  sliding window of recent observations (the ``SchedulerStats``
  latency-window idea, generalized) plus exact all-time count / sum /
  max, so a long-lived service neither grows without bound nor pays an
  ever-larger sort per snapshot.
* **Cheap writes.**  One leaf lock per registry guards every mutation;
  instruments are resolved once and cached by callers (attribute
  lookups, not name lookups, on the hot path).

Exports: :meth:`MetricsRegistry.render_prometheus` (text exposition
format — counters/gauges verbatim, histograms as summaries with
quantile labels) and :meth:`MetricsRegistry.snapshot` (a JSON-able dict,
the payload of ``repro serve --stats-interval`` lines and the input of
``repro metrics``).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.errors import ValidationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "percentile",
]

#: Default sliding-window size for histograms — matches the scheduler's
#: latency window so re-backed percentiles are bit-identical.
DEFAULT_WINDOW = 65536

LabelValues = Tuple[str, ...]


def percentile(ranked: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted list."""
    if not ranked:
        return 0.0
    rank = max(1, -(-int(q * len(ranked) * 100) // 100))  # ceil(q * n)
    rank = min(rank, len(ranked))
    return ranked[rank - 1]


class Counter:
    """A monotonically increasing value (float-valued, ms totals too)."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Sliding-window observations with exact all-time count/sum/max.

    Percentiles are nearest-rank over the most recent ``window``
    observations (bounded memory, bounded sort); ``count``/``sum`` and
    the max are exact over the instrument's whole lifetime.
    """

    __slots__ = ("_lock", "_window", "_count", "_sum", "_max")

    def __init__(self, lock: threading.Lock, window: int = DEFAULT_WINDOW):
        if window < 1:
            raise ValidationError(
                f"histogram window must be >= 1, got {window}"
            )
        self._lock = lock
        self._window: Deque[float] = deque(maxlen=window)
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def observe(self, value: float) -> None:
        with self._lock:
            self._window.append(value)
            self._count += 1
            self._sum += value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def max(self) -> float:
        return self._max

    def window_values(self) -> List[float]:
        with self._lock:
            return list(self._window)

    def percentile(self, q: float) -> float:
        return percentile(sorted(self.window_values()), q)

    def quantiles(self, qs: Iterable[float]) -> Dict[float, float]:
        """Several percentiles off one sort of the current window."""
        ranked = sorted(self.window_values())
        return {q: percentile(ranked, q) for q in qs}


def _label_key(labels: Optional[Dict[str, str]]) -> LabelValues:
    if not labels:
        return ()
    return tuple(f"{k}={labels[k]}" for k in sorted(labels))


def _format_labels(key: LabelValues) -> str:
    if not key:
        return ""
    inner = ",".join(
        '{}="{}"'.format(*pair.split("=", 1)) for pair in key
    )
    return "{" + inner + "}"


class MetricsRegistry:
    """Name -> instrument-family store with labeled children.

    ``counter``/``gauge``/``histogram`` get-or-create the instrument for
    ``(name, labels)``; asking for an existing name with a different
    instrument kind raises.  All instruments in one registry share one
    leaf lock (mutations never call out while holding it).
    """

    _QUANTILES = (0.5, 0.99)

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._kinds: Dict[str, str] = {}
        self._families: Dict[str, Dict[LabelValues, object]] = {}

    # ------------------------------------------------------------------
    # Instrument access
    # ------------------------------------------------------------------

    def _get(self, kind: str, name: str, labels, factory):
        if not name:
            raise ValidationError("metrics need a non-empty name")
        key = _label_key(labels)
        with self._lock:
            known = self._kinds.get(name)
            if known is None:
                self._kinds[name] = kind
                self._families[name] = {}
            elif known != kind:
                raise ValidationError(
                    f"metric {name!r} is already registered as a {known}, "
                    f"not a {kind}"
                )
            family = self._families[name]
            instrument = family.get(key)
            if instrument is None:
                instrument = factory()
                family[key] = instrument
            return instrument

    def counter(self, name: str, labels: Optional[Dict[str, str]] = None) -> Counter:
        return self._get(
            "counter", name, labels, lambda: Counter(self._lock)
        )

    def gauge(self, name: str, labels: Optional[Dict[str, str]] = None) -> Gauge:
        return self._get("gauge", name, labels, lambda: Gauge(self._lock))

    def histogram(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        window: int = DEFAULT_WINDOW,
    ) -> Histogram:
        return self._get(
            "histogram", name, labels,
            lambda: Histogram(self._lock, window=window),
        )

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._kinds)

    def family(self, name: str) -> Dict[LabelValues, object]:
        """The labeled children of one metric (empty if unknown)."""
        with self._lock:
            return dict(self._families.get(name, {}))

    def counter_value(
        self, name: str, labels: Optional[Dict[str, str]] = None
    ) -> float:
        """Read a counter without creating it (0.0 when absent)."""
        family = self._families.get(name)
        if not family:
            return 0.0
        instrument = family.get(_label_key(labels))
        return instrument.value if instrument is not None else 0.0

    def labeled_values(self, name: str) -> Dict[str, float]:
        """``label-value -> value`` for a single-label counter family.

        The scheduler's per-tenant / per-queue counters read back
        through this: the (single) label value is the key, sorted.
        """
        out: Dict[str, float] = {}
        for key, instrument in self.family(name).items():
            if not key:
                continue
            out[key[0].split("=", 1)[1]] = instrument.value
        return dict(sorted(out.items()))

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict:
        """A JSON-able, deterministically ordered snapshot of everything.

        Counters/gauges flatten to ``name{label="v"} -> value`` keys;
        histograms report exact count/sum/max plus windowed p50/p99.
        """
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, float]] = {}
        with self._lock:
            items = [
                (name, self._kinds[name], dict(family))
                for name, family in self._families.items()
            ]
        for name, kind, family in items:
            for key in sorted(family):
                instrument = family[key]
                flat = f"{name}{_format_labels(key)}"
                if kind == "counter":
                    counters[flat] = round(instrument.value, 9)
                elif kind == "gauge":
                    gauges[flat] = round(instrument.value, 9)
                else:
                    quantiles = instrument.quantiles(self._QUANTILES)
                    histograms[flat] = {
                        "count": instrument.count,
                        "sum": round(instrument.sum, 9),
                        "max": round(instrument.max, 9),
                        "p50": round(quantiles[0.5], 9),
                        "p99": round(quantiles[0.99], 9),
                    }
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items())),
        }

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the registry's current state.

        Counters and gauges export verbatim; histograms export as
        summaries (windowed quantiles + exact ``_sum``/``_count``),
        which is the honest mapping for sliding-window percentiles.
        """
        lines: List[str] = []
        with self._lock:
            items = [
                (name, self._kinds[name], dict(self._families[name]))
                for name in sorted(self._families)
            ]
        for name, kind, family in items:
            if kind == "histogram":
                lines.append(f"# TYPE {name} summary")
                for key in sorted(family):
                    instrument = family[key]
                    quantiles = instrument.quantiles(self._QUANTILES)
                    for q in self._QUANTILES:
                        labels = key + (f"quantile={q:g}",)
                        lines.append(
                            f"{name}{_format_labels(labels)} "
                            f"{quantiles[q]:g}"
                        )
                    lines.append(
                        f"{name}_sum{_format_labels(key)} "
                        f"{instrument.sum:g}"
                    )
                    lines.append(
                        f"{name}_count{_format_labels(key)} "
                        f"{instrument.count}"
                    )
                continue
            lines.append(f"# TYPE {name} {kind}")
            for key in sorted(family):
                instrument = family[key]
                lines.append(
                    f"{name}{_format_labels(key)} {instrument.value:g}"
                )
        return "\n".join(lines) + ("\n" if lines else "")
