"""Wu et al.'s OT-based decision-tree protocol (Section 2.3.1).

The third approach the paper surveys, implemented for completeness: the
server holds the model *in plaintext* (the restriction COPSE lifts), the
client holds the features, and evaluation is interactive:

1. **Padding and permutation** — the server pads each tree into a
   complete binary tree of its depth with dummy nodes and randomly
   permutes it (child swaps with matching comparison flips), hiding the
   original shape from the client;
2. **Blinded comparisons** — the client sends its features under
   additive homomorphic encryption; for every padded node the server
   returns ``Enc(s * r * (x_f - t))`` with a fresh random positive blind
   ``r`` (and ``s = -1`` when the node's children were swapped), so the
   client's decryption reveals only the (permuted) decision bit;
3. **Oblivious transfer** — the client walks the public complete-tree
   shape with its decision bits to a leaf position and runs 1-of-2^d OT
   against the server's (permuted) leaf-label array, learning exactly
   its own label while the server learns nothing about the path.

Known simplification (documented, as in the source protocol's own
discussion): multiplicative blinding preserves the sign *and zeroness*
of ``x - t``, so feature-equals-threshold is distinguishable; the full
Wu et al. construction adds an additive-sharing round to hide it.

The protocol's costs sit on different axes than COPSE's: per-query
communication rounds (COPSE needs one), per-node AHE work exponential in
the padded depth (``2^d - 1`` comparisons per tree — the "limited
scalability" the paper notes), and a plaintext model requirement.
``benchmarks/test_ablation_wu.py`` measures all three.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import RuntimeProtocolError, ValidationError
from repro.core.threeparty import Message, Transcript
from repro.fhe.ahe import AheCiphertext, AheContext
from repro.fhe.keys import KeyPair
from repro.forest.forest import DecisionForest
from repro.forest.node import Branch, Leaf, Node

CLIENT = "client"
SERVER = "server"


@dataclass
class PaddedTree:
    """A complete binary tree in heap layout (node 1 is the root).

    ``features[i]`` / ``thresholds[i]`` describe heap node ``i`` for
    ``1 <= i < 2**depth``; ``flips[i]`` records whether the server swapped
    that node's children; ``labels[j]`` is the class label at leaf
    position ``j`` (``0 <= j < 2**depth``).  Dummy nodes compare feature 0
    against threshold 0 — their decision bit is constant, and both of
    their subtrees carry the same labels, so the bit never matters.
    """

    depth: int
    features: List[int]
    thresholds: List[int]
    flips: List[bool]
    labels: List[int]

    @property
    def num_nodes(self) -> int:
        return (1 << self.depth) - 1

    @property
    def num_leaves(self) -> int:
        return 1 << self.depth


def pad_and_permute(
    tree_root: Node, depth: int, rng: np.random.Generator
) -> PaddedTree:
    """Pad a tree to a complete depth-``depth`` tree and permute it."""
    size = 1 << depth
    features = [0] * size
    thresholds = [0] * size
    flips = [False] * size
    labels = [0] * size

    def fill(node: Node, heap_index: int, levels_left: int) -> None:
        if levels_left == 0:
            if not isinstance(node, Leaf):
                raise ValidationError(
                    "tree deeper than the declared padding depth"
                )
            labels[heap_index - size] = node.label_index
            return
        if isinstance(node, Leaf):
            # Dummy node: constant decision, same label both ways.
            fill(node, 2 * heap_index, levels_left - 1)
            fill(node, 2 * heap_index + 1, levels_left - 1)
            return
        flip = bool(rng.integers(0, 2))
        features[heap_index] = node.feature
        thresholds[heap_index] = node.threshold
        flips[heap_index] = flip
        # Convention: without a flip, decision bit 1 (x < t) walks to the
        # left child (2i), bit 0 to the right (2i + 1).
        first, second = node.true_child, node.false_child
        if flip:
            first, second = second, first
        fill(first, 2 * heap_index, levels_left - 1)
        fill(second, 2 * heap_index + 1, levels_left - 1)

    fill(tree_root, 1, depth)
    return PaddedTree(
        depth=depth,
        features=features,
        thresholds=thresholds,
        flips=flips,
        labels=labels,
    )


# ---------------------------------------------------------------------------
# Oblivious transfer (structural simulation)
# ---------------------------------------------------------------------------


def one_of_n_transfer(
    transcript: Transcript, items: Sequence[int], choice: int
) -> int:
    """1-of-n oblivious transfer.

    Structurally simulated: the transcript records the two OT messages
    (the receiver's blinded choice, the sender's ``n`` masked items); the
    receiver obtains exactly ``items[choice]``, and nothing about
    ``choice`` is ever placed in the transcript (the sender's view).
    """
    if not 0 <= choice < len(items):
        raise RuntimeProtocolError(
            f"OT choice {choice} outside 0..{len(items) - 1}"
        )
    transcript.send(CLIENT, SERVER, "ot-choice-blinded", 1)
    transcript.send(SERVER, CLIENT, "ot-masked-items", len(items))
    return int(items[choice])


# ---------------------------------------------------------------------------
# The protocol parties
# ---------------------------------------------------------------------------


@dataclass
class WuServer:
    """The model holder: pads, permutes, and answers blinded comparisons."""

    forest: DecisionForest
    precision: int
    seed: Optional[int] = None
    _padded: List[PaddedTree] = field(default_factory=list, repr=False)
    _rng: np.random.Generator = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        for tree in self.forest.trees:
            self._padded.append(
                pad_and_permute(tree.root, tree.depth, self._rng)
            )

    @property
    def padded_trees(self) -> List[PaddedTree]:
        return self._padded

    def public_shape(self) -> List[int]:
        """What the client must learn to navigate: per-tree padded depth."""
        return [padded.depth for padded in self._padded]

    def blinded_comparisons(
        self,
        ahe: AheContext,
        encrypted_features: Sequence[AheCiphertext],
    ) -> List[List[AheCiphertext]]:
        """Per padded node: ``Enc(s * r * (x_f - t))``.

        The multiplicative blind ``r`` is fresh per node; ``s`` folds the
        permutation's comparison flip into the sign the client sees.
        """
        if len(encrypted_features) != self.forest.n_features:
            raise RuntimeProtocolError(
                f"expected {self.forest.n_features} encrypted features, "
                f"got {len(encrypted_features)}"
            )
        responses: List[List[AheCiphertext]] = []
        for padded in self._padded:
            per_tree: List[AheCiphertext] = []
            for i in range(1, padded.num_nodes + 1):
                enc_x = encrypted_features[padded.features[i]]
                diff = ahe.add_plain(enc_x, -padded.thresholds[i])
                r = int(self._rng.integers(1, 1 << 16))
                if padded.flips[i]:
                    # Flipped node: the client must take the left child
                    # when x >= t, i.e. when -(x - t + 1) is negative
                    # (the +1 keeps the x == t boundary on the right
                    # side for integer values).
                    diff = ahe.add_plain(diff, 1)
                    r = -r
                per_tree.append(ahe.mul_plain(diff, r))
            responses.append(per_tree)
        return responses

    def leaf_labels(self) -> List[List[int]]:
        return [list(padded.labels) for padded in self._padded]


@dataclass
class WuClient:
    """The feature holder: decrypts blinded signs and walks to its leaf."""

    keys: KeyPair
    precision: int
    n_features: int

    def encrypt_features(
        self, ahe: AheContext, features: Sequence[int]
    ) -> List[AheCiphertext]:
        if len(features) != self.n_features:
            raise RuntimeProtocolError(
                f"expected {self.n_features} features, got {len(features)}"
            )
        limit = 1 << self.precision
        for value in features:
            if not 0 <= int(value) < limit:
                raise RuntimeProtocolError(
                    f"feature value {value} does not fit in "
                    f"{self.precision} unsigned bits"
                )
        return [ahe.encrypt(int(v), self.keys.public) for v in features]

    def decision_bits(
        self, ahe: AheContext, blinded: Sequence[AheCiphertext]
    ) -> List[bool]:
        """Decrypt blinded differences into (permuted) decision bits.

        ``x < t`` iff the blinded value is negative (modulo the server's
        sign flip, which is already folded in).
        """
        return [
            ahe.decrypt_signed(ct, self.keys.secret) < 0 for ct in blinded
        ]

    @staticmethod
    def leaf_position(depth: int, bits: Sequence[bool]) -> int:
        """Walk the public complete-tree shape to a leaf position."""
        index = 1
        for _ in range(depth):
            bit = bits[index - 1]
            index = 2 * index + (0 if bit else 1)
        return index - (1 << depth)


@dataclass
class WuOutcome:
    """Result of one full protocol run."""

    labels: List[int]
    label_names: List[str]
    transcript: Transcript
    ahe: AheContext

    def plurality(self) -> int:
        counts: Dict[int, int] = {}
        for label in self.labels:
            counts[label] = counts.get(label, 0) + 1
        return max(counts.items(), key=lambda kv: (kv[1], -kv[0]))[0]

    @property
    def tracker(self):
        return self.ahe.tracker


def wu_inference(
    forest: DecisionForest,
    features: Sequence[int],
    precision: int = 8,
    seed: Optional[int] = None,
    ahe: Optional[AheContext] = None,
) -> WuOutcome:
    """Run the full Wu et al. protocol for every tree of a forest."""
    if ahe is None:
        ahe = AheContext()
    transcript = Transcript()
    server = WuServer(forest=forest, precision=precision, seed=seed)
    keys = ahe.keygen()
    client = WuClient(
        keys=keys, precision=precision, n_features=forest.n_features
    )

    with ahe.tracker.phase("wu_comparisons"):
        encrypted = client.encrypt_features(ahe, features)
        transcript.send(CLIENT, SERVER, "encrypted-features", len(encrypted))
        blinded = server.blinded_comparisons(ahe, encrypted)
        total_nodes = sum(len(per_tree) for per_tree in blinded)
        transcript.send(SERVER, CLIENT, "blinded-comparisons", total_nodes)
        bits = [client.decision_bits(ahe, per_tree) for per_tree in blinded]

    labels: List[int] = []
    with ahe.tracker.phase("wu_transfer"):
        label_arrays = server.leaf_labels()
        for padded_depth, tree_bits, tree_labels in zip(
            server.public_shape(), bits, label_arrays
        ):
            position = client.leaf_position(padded_depth, tree_bits)
            labels.append(
                one_of_n_transfer(transcript, tree_labels, position)
            )

    return WuOutcome(
        labels=labels,
        label_names=list(forest.label_names),
        transcript=transcript,
        ahe=ahe,
    )
