"""The Aloufi et al. polynomial baseline (Sections 2.3.1 and 8.2).

The paper's evaluation baseline is its own reimplementation of Aloufi et
al.'s "Blindfolded Evaluation of Random Forests": each tree is a vector of
boolean polynomials over the branch-decision results — one polynomial per
class-label *bit*, with the bit polynomials packed into SIMD slots so one
packed operation serves every bit at once.  There is no packing beyond
that: every branch comparison is its own SecComp invocation, and every
root-to-leaf path product is evaluated per leaf (pairwise-recursively, so
the depth stays logarithmic in the path length).

Crucially — as in the paper — the baseline shares the same FHE substrate
and the same SecComp circuit as COPSE, so the measured gap is the
restructuring, not the library.
"""

from repro.baseline.polynomial import LeafTerm, PolynomialModel, TreePolynomial
from repro.baseline.runtime import (
    BaselineDataOwner,
    BaselineEncryptedModel,
    BaselineEncryptedQuery,
    BaselineModelOwner,
    BaselineServer,
    baseline_inference,
)
from repro.baseline.wu_ot import (
    WuClient,
    WuOutcome,
    WuServer,
    wu_inference,
)

__all__ = [
    "LeafTerm",
    "TreePolynomial",
    "PolynomialModel",
    "BaselineModelOwner",
    "BaselineDataOwner",
    "BaselineServer",
    "BaselineEncryptedModel",
    "BaselineEncryptedQuery",
    "baseline_inference",
    "WuServer",
    "WuClient",
    "WuOutcome",
    "wu_inference",
]
