"""Runtime for the Aloufi et al. polynomial baseline.

Protocol shape (mirroring the COPSE runtime so the comparison is fair):

* the model owner encrypts, per branch, the threshold's ``p`` bit planes —
  each replicated across the ``label_bits`` SIMD slots (``b * p``
  ciphertexts, versus COPSE's ``p``);
* the data owner encrypts, per *feature*, the value's ``p`` bit planes,
  also replicated across label-bit slots (``n * p`` ciphertexts);
* the server runs one SecComp per branch (the baseline's sequential
  comparisons — no packing across branches), then evaluates every tree's
  polynomial: per leaf, the path decisions (complemented on false edges)
  are multiplied pairwise-recursively, the product is ANDed with the
  leaf's plaintext label bits, and the per-leaf terms are XOR-summed;
* the result is one ciphertext per tree holding the chosen label's bits,
  which the data owner decrypts and reassembles.

Tracker phases: ``model_encrypt``, ``data_encrypt``, ``comparison``,
``polynomial``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import RuntimeProtocolError
from repro.baseline.polynomial import PolynomialModel, compile_polynomial
from repro.core.seccomp import VARIANT_ALOUFI, secure_compare
from repro.fhe.ciphertext import Ciphertext, PlainVector
from repro.fhe.context import FheContext, Vector
from repro.fhe.keys import KeyPair, PublicKey
from repro.fhe.params import EncryptionParams
from repro.fhe.simd import to_bitplanes
from repro.forest.forest import DecisionForest

PHASE_MODEL_ENCRYPT = "model_encrypt"
PHASE_DATA_ENCRYPT = "data_encrypt"
PHASE_COMPARISON = "comparison"
PHASE_POLYNOMIAL = "polynomial"


@dataclass
class BaselineEncryptedModel:
    """Per-branch threshold bit planes (ciphertext or plaintext)."""

    model: PolynomialModel
    branch_planes: List[List[Vector]]  # [branch][bit plane], width label_bits

    @property
    def is_encrypted(self) -> bool:
        return isinstance(self.branch_planes[0][0], Ciphertext)


@dataclass
class BaselineEncryptedQuery:
    """Per-feature bit planes, replicated across label-bit slots."""

    feature_planes: List[List[Ciphertext]]  # [feature][bit plane]
    public_key: Optional[PublicKey] = None


@dataclass
class BaselineResult:
    """Decrypted per-tree label choices."""

    labels: List[int]
    label_names: List[str]

    def plurality(self) -> int:
        counts: Dict[int, int] = {}
        for label in self.labels:
            counts[label] = counts.get(label, 0) + 1
        return max(counts.items(), key=lambda kv: (kv[1], -kv[0]))[0]


class BaselineModelOwner:
    """Maurice's role in the baseline protocol."""

    def __init__(self, model: PolynomialModel):
        self.model = model

    def encrypt_model(
        self, ctx: FheContext, public_key: PublicKey
    ) -> BaselineEncryptedModel:
        width = self.model.label_bits
        with ctx.tracker.phase(PHASE_MODEL_ENCRYPT):
            branch_planes: List[List[Vector]] = []
            for threshold in self.model.branch_thresholds:
                planes = to_bitplanes([threshold] * width, self.model.precision)
                branch_planes.append(
                    [
                        ctx.encrypt(planes[i], public_key)
                        for i in range(planes.shape[0])
                    ]
                )
        return BaselineEncryptedModel(model=self.model, branch_planes=branch_planes)

    def plaintext_model(self, ctx: FheContext) -> BaselineEncryptedModel:
        width = self.model.label_bits
        branch_planes: List[List[Vector]] = []
        for threshold in self.model.branch_thresholds:
            planes = to_bitplanes([threshold] * width, self.model.precision)
            branch_planes.append(
                [ctx.encode(planes[i]) for i in range(planes.shape[0])]
            )
        return BaselineEncryptedModel(model=self.model, branch_planes=branch_planes)


class BaselineDataOwner:
    """Diane's role in the baseline protocol."""

    def __init__(self, model_info: PolynomialModel, keys: KeyPair):
        # The baseline reveals more to Diane than COPSE does: she needs
        # per-feature packing (no replication padding hides multiplicity,
        # but the protocol itself is interactive in the original paper).
        self.precision = model_info.precision
        self.n_features = model_info.n_features
        self.label_bits = model_info.label_bits
        self.label_names = list(model_info.label_names)
        self.keys = keys

    def prepare_query(
        self, ctx: FheContext, features: Sequence[int]
    ) -> BaselineEncryptedQuery:
        if len(features) != self.n_features:
            raise RuntimeProtocolError(
                f"model expects {self.n_features} features, got {len(features)}"
            )
        limit = 1 << self.precision
        feature_planes: List[List[Ciphertext]] = []
        with ctx.tracker.phase(PHASE_DATA_ENCRYPT):
            for value in features:
                if not 0 <= int(value) < limit:
                    raise RuntimeProtocolError(
                        f"feature value {value} does not fit in "
                        f"{self.precision} unsigned bits"
                    )
                planes = to_bitplanes(
                    [int(value)] * self.label_bits, self.precision
                )
                feature_planes.append(
                    [
                        ctx.encrypt(planes[i], self.keys.public)
                        for i in range(planes.shape[0])
                    ]
                )
        return BaselineEncryptedQuery(
            feature_planes=feature_planes, public_key=self.keys.public
        )

    def decrypt_result(
        self, ctx: FheContext, per_tree: Sequence[Ciphertext]
    ) -> BaselineResult:
        labels: List[int] = []
        for ct in per_tree:
            bits = ctx.decrypt_bits(ct, self.keys.secret)
            value = 0
            for bit in bits:  # MSB first
                value = (value << 1) | bit
            labels.append(value)
        return BaselineResult(labels=labels, label_names=self.label_names)


class BaselineServer:
    """Sally's role: per-branch comparison, then polynomial evaluation."""

    def __init__(self, ctx: FheContext, seccomp_variant: str = VARIANT_ALOUFI):
        self.ctx = ctx
        self.seccomp_variant = seccomp_variant

    def classify(
        self, model: BaselineEncryptedModel, query: BaselineEncryptedQuery
    ) -> List[Ciphertext]:
        ctx = self.ctx
        poly = model.model
        if len(query.feature_planes) != poly.n_features:
            raise RuntimeProtocolError(
                f"query has {len(query.feature_planes)} features, model "
                f"expects {poly.n_features}"
            )

        with ctx.tracker.phase(PHASE_COMPARISON):
            not_one = None
            if self.seccomp_variant == VARIANT_ALOUFI:
                if query.public_key is None:
                    raise RuntimeProtocolError(
                        "the Aloufi SecComp variant needs the query's "
                        "public key to encrypt the all-ones helper"
                    )
                # Encrypted once, reused across every branch comparison.
                not_one = ctx.encrypt(
                    ctx.ones(poly.label_bits).to_array(), query.public_key
                )
            decisions: List[Ciphertext] = []
            for branch_idx in range(poly.branching):
                feature = poly.branch_features[branch_idx]
                decisions.append(
                    secure_compare(
                        ctx,
                        query.feature_planes[feature],
                        model.branch_planes[branch_idx],
                        variant=self.seccomp_variant,
                        not_one=not_one,
                    )
                )

        with ctx.tracker.phase(PHASE_POLYNOMIAL):
            results = [
                self._evaluate_tree(tree, decisions, poly, not_one)
                for tree in poly.trees
            ]
        return results

    def _evaluate_tree(
        self,
        tree,
        decisions: List[Ciphertext],
        poly: PolynomialModel,
        not_one: Optional[Ciphertext],
    ) -> Ciphertext:
        ctx = self.ctx
        width = poly.label_bits
        terms: List[Vector] = []
        for term in tree.terms:
            factors: List[Vector] = []
            for branch_idx, on_true in term.path:
                d = decisions[branch_idx]
                if on_true:
                    factors.append(d)
                elif not_one is not None:
                    # Multi-key style NOT: add the encrypted all-ones.
                    factors.append(ctx.add(d, not_one))
                else:
                    factors.append(ctx.negate(d))
            # Pairwise-recursive product: logarithmic multiplicative depth
            # in the path length (Section 2.3.1).
            product = ctx.multiply_all(factors)
            label_bits = _label_bit_vector(term.label_index, width)
            terms.append(ctx.and_any(product, PlainVector(label_bits)))
        result = ctx.xor_all(terms)
        if not isinstance(result, Ciphertext):  # pragma: no cover
            raise RuntimeProtocolError("baseline tree result must be encrypted")
        return result


def _label_bit_vector(label_index: int, width: int) -> np.ndarray:
    """A label index as an MSB-first bit vector of the packed width."""
    bits = np.zeros(width, dtype=np.uint8)
    for i in range(width):
        bits[i] = (label_index >> (width - 1 - i)) & 1
    return bits


# ---------------------------------------------------------------------------
# One-call convenience API
# ---------------------------------------------------------------------------


@dataclass
class BaselineOutcome:
    """End-to-end baseline inference result and its context."""

    result: BaselineResult
    context: FheContext

    @property
    def tracker(self):
        return self.context.tracker


def baseline_inference(
    forest: DecisionForest,
    features: Sequence[int],
    precision: int = 8,
    params: Optional[EncryptionParams] = None,
    encrypted_model: bool = True,
    ctx: Optional[FheContext] = None,
    keys: Optional[KeyPair] = None,
    seccomp_variant: str = VARIANT_ALOUFI,
) -> BaselineOutcome:
    """Run one full baseline inference end to end."""
    if params is None:
        params = EncryptionParams.paper_defaults()
    if ctx is None:
        ctx = FheContext(params)
    if keys is None:
        keys = ctx.keygen()

    poly = compile_polynomial(forest, precision)
    maurice = BaselineModelOwner(poly)
    diane = BaselineDataOwner(poly, keys)
    sally = BaselineServer(ctx, seccomp_variant=seccomp_variant)

    if encrypted_model:
        enc_model = maurice.encrypt_model(ctx, keys.public)
    else:
        enc_model = maurice.plaintext_model(ctx)
    query = diane.prepare_query(ctx, features)
    per_tree = sally.classify(enc_model, query)
    result = diane.decrypt_result(ctx, per_tree)
    return BaselineOutcome(result=result, context=ctx)
