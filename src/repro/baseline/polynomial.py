"""Boolean path-polynomial representation of decision trees.

Following Bost et al. and Aloufi et al. (Section 2.3.1 of the COPSE
paper): each tree becomes a polynomial over its branch-decision variables
in which every leaf contributes one term — the product of the decisions
along its root-to-leaf path, with decisions on "false" edges complemented:

    tree(x) = SUM_over_leaves  label_bits(leaf) * PROD_over_path  d-or-(1-d)

For any input exactly one path product is 1, so the sum (XOR, over GF(2))
evaluates to the chosen leaf's label bits.  The per-bit polynomials share
the decision variables, so the label bits are packed into SIMD slots and
each packed operation evaluates all bits at once — the only vectorization
the baseline performs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import CompileError
from repro.forest.forest import DecisionForest
from repro.forest.node import Branch, Leaf, Node
from repro.forest.validate import validate_forest


@dataclass(frozen=True)
class LeafTerm:
    """One polynomial term: a leaf's label and its path conditions.

    ``path`` holds ``(global_branch_index, on_true_side)`` pairs from the
    root down; the term's product takes the decision variable directly on
    true edges and complemented on false edges.
    """

    label_index: int
    path: Tuple[Tuple[int, bool], ...]


@dataclass(frozen=True)
class TreePolynomial:
    """All leaf terms of one tree."""

    terms: Tuple[LeafTerm, ...]

    @property
    def num_leaves(self) -> int:
        return len(self.terms)

    def evaluate_plain(self, decisions: List[bool]) -> int:
        """Reference evaluation over plaintext decision bits (test oracle)."""
        chosen = None
        for term in self.terms:
            if all(
                decisions[idx] == side for idx, side in term.path
            ):
                if chosen is not None:
                    raise CompileError(
                        "two polynomial terms fired; paths are not disjoint"
                    )
                chosen = term.label_index
        if chosen is None:
            raise CompileError("no polynomial term fired; paths do not cover")
        return chosen


@dataclass(frozen=True)
class PolynomialModel:
    """A forest compiled to the baseline's polynomial form."""

    precision: int
    n_features: int
    n_labels: int
    label_names: Tuple[str, ...]
    label_bits: int
    branch_features: Tuple[int, ...]  # feature index per global branch
    branch_thresholds: Tuple[int, ...]  # threshold per global branch
    trees: Tuple[TreePolynomial, ...]

    @property
    def branching(self) -> int:
        return len(self.branch_features)

    @property
    def max_path_length(self) -> int:
        return max(
            (len(term.path) for tree in self.trees for term in tree.terms),
            default=0,
        )

    def describe(self) -> str:
        return (
            f"polynomial model: p={self.precision} b={self.branching} "
            f"trees={len(self.trees)} label_bits={self.label_bits}"
        )


def label_bit_width(n_labels: int) -> int:
    """SIMD width of the baseline's packed label-bit slots."""
    return max(1, int(math.ceil(math.log2(max(2, n_labels)))))


def compile_polynomial(forest: DecisionForest, precision: int) -> PolynomialModel:
    """Compile a forest into the baseline's polynomial representation."""
    validate_forest(forest, precision=precision)
    branch_features: List[int] = []
    branch_thresholds: List[int] = []
    trees: List[TreePolynomial] = []

    for tree in forest.trees:
        terms: List[LeafTerm] = []

        def walk(node: Node, path: List[Tuple[int, bool]]) -> None:
            if isinstance(node, Leaf):
                terms.append(
                    LeafTerm(label_index=node.label_index, path=tuple(path))
                )
                return
            assert isinstance(node, Branch)
            index = len(branch_features)
            branch_features.append(node.feature)
            branch_thresholds.append(node.threshold)
            path.append((index, True))
            walk(node.true_child, path)
            path.pop()
            path.append((index, False))
            walk(node.false_child, path)
            path.pop()

        walk(tree.root, [])
        trees.append(TreePolynomial(terms=tuple(terms)))

    return PolynomialModel(
        precision=precision,
        n_features=forest.n_features,
        n_labels=forest.n_labels,
        label_names=tuple(forest.label_names),
        label_bits=label_bit_width(forest.n_labels),
        branch_features=tuple(branch_features),
        branch_thresholds=tuple(branch_thresholds),
        trees=tuple(trees),
    )
