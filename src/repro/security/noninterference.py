"""Noninterference checking: the execution trace is input-independent.

Section 2.2.3: FHE's security story requires that nothing about the
private inputs leak through *publicly observable behaviour* — in
particular, the sequence, kind, and dependency structure of the
homomorphic operations must be the same for every input (no branching on
secret data).  COPSE achieves this by construction; this module verifies
it empirically by running the full inference pipeline on different
feature vectors and comparing the recorded operation traces.

The property-based tests in ``tests/security`` drive
:func:`check_noninterference` with random models and inputs.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import LeakageError
from repro.core.compiler import CompiledModel
from repro.core.runtime import secure_inference
from repro.fhe.context import FheContext
from repro.fhe.params import EncryptionParams

Trace = List[Tuple[str, str, Tuple[int, ...]]]


def execution_trace(
    compiled: CompiledModel,
    features: Sequence[int],
    params: EncryptionParams = None,
    encrypted_model: bool = True,
) -> Trace:
    """The publicly observable operation trace of one secure inference.

    Each entry is ``(operation kind, phase, parent node ids)`` — the
    full information a timing/schedule observer could collect.  A fresh
    context (and key pair) is used per call so traces are comparable
    position by position.

    The context is pinned to the ``reference`` backend regardless of the
    process default: only its full-DAG tracker records traces, and a
    security check must never pass vacuously because a fast backend
    (whose ``trace()`` is always empty) happened to be the default.
    """
    if params is None:
        params = EncryptionParams.paper_defaults()
    ctx = FheContext(params, backend="reference")
    outcome = secure_inference(
        compiled,
        features,
        params=params,
        encrypted_model=encrypted_model,
        ctx=ctx,
    )
    trace = outcome.tracker.trace()
    if not trace:
        raise LeakageError(
            "execution produced an empty operation trace; the "
            "noninterference checker needs a full-DAG tracker"
        )
    return trace


def check_noninterference(
    compiled: CompiledModel,
    feature_sets: Sequence[Sequence[int]],
    params: EncryptionParams = None,
    encrypted_model: bool = True,
) -> None:
    """Raise :class:`~repro.errors.LeakageError` if any two inputs produce
    different operation traces.

    All feature vectors must have the model's arity; differing traces
    would mean the evaluation branches on secret data.
    """
    if len(feature_sets) < 2:
        raise LeakageError(
            "noninterference needs at least two feature vectors to compare"
        )
    reference = execution_trace(
        compiled, feature_sets[0], params, encrypted_model
    )
    for features in feature_sets[1:]:
        trace = execution_trace(compiled, features, params, encrypted_model)
        if trace != reference:
            divergence = _first_divergence(reference, trace)
            raise LeakageError(
                f"execution trace depends on the input: traces diverge at "
                f"operation {divergence} for features {list(features)!r}"
            )


def _first_divergence(a: Trace, b: Trace) -> int:
    for i, (x, y) in enumerate(zip(a, b)):
        if x != y:
            return i
    return min(len(a), len(b))
