"""Information leakage per deployment configuration (Tables 3 and 4).

Two complementary views:

* :func:`scenario_leakage` — the *specified* leakage: for each scenario,
  which model statistics each party learns, exactly as the paper's
  Tables 3 and 4 list them.  The symbols are the Section 4.1.1 model
  statistics: ``q`` (quantized branching), ``b`` (branching), ``d``
  (depth), ``K`` (maximum multiplicity), or ``everything`` under
  collusion.

* :func:`observed_by_server` — the *mechanical* leakage: given an actual
  :class:`~repro.core.runtime.EncryptedModel`, what the evaluator reads
  off the ciphertext structure (one ciphertext per matrix diagonal leaks
  column counts; the level-matrix count leaks the depth).  The tests
  check the mechanical view matches the specified view — the paper's
  claim that *only* these statistics leak.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet

from repro.errors import LeakageError
from repro.core.runtime import EncryptedModel
from repro.security.parties import (
    COLLUSION_NONE,
    COLLUSION_S_WITH_D,
    COLLUSION_S_WITH_M,
    Party,
    Scenario,
)

#: The leakable model statistics, as named in the paper's tables.
STAT_Q = "q"
STAT_B = "b"
STAT_D = "d"
STAT_K = "K"
EVERYTHING = "everything"

Leakage = FrozenSet[str]


def _fs(*items: str) -> Leakage:
    return frozenset(items)


@dataclass(frozen=True)
class LeakageReport:
    """What each notional party learns in one scenario."""

    scenario: Scenario
    revealed: Dict[Party, Leakage]

    def to_server(self) -> Leakage:
        return self.revealed[Party.SERVER]

    def to_model_owner(self) -> Leakage:
        return self.revealed[Party.MODEL_OWNER]

    def to_data_owner(self) -> Leakage:
        return self.revealed[Party.DATA_OWNER]


# The rows of Table 3 (two-party) and Table 4 (three-party), keyed by the
# scenario name.  Values are (to S, to M, to D).
_TABLE_3 = {
    "S, M=D": (_fs(STAT_Q, STAT_B, STAT_D), _fs(), _fs()),
    "S=M, D": (_fs(), _fs(), _fs(STAT_K, STAT_B)),
    "S=D, M": (
        _fs(STAT_Q, STAT_B, STAT_K, STAT_D),
        _fs(),
        _fs(STAT_Q, STAT_B, STAT_K),
    ),
}

_TABLE_4 = {
    COLLUSION_NONE: (
        _fs(STAT_Q, STAT_B, STAT_D, STAT_K),
        _fs(),
        _fs(STAT_K, STAT_B),
    ),
    COLLUSION_S_WITH_M: (
        _fs(EVERYTHING),
        _fs(EVERYTHING),
        _fs(STAT_K, STAT_B),
    ),
    COLLUSION_S_WITH_D: (
        _fs(EVERYTHING),
        _fs(),
        _fs(EVERYTHING),
    ),
}


def scenario_leakage(scenario: Scenario) -> LeakageReport:
    """The specified leakage for one scenario (Tables 3 and 4)."""
    if scenario.is_three_party:
        row = _TABLE_4.get(scenario.collusion)
        if row is None:  # pragma: no cover - Scenario validates collusion
            raise LeakageError(f"unknown collusion {scenario.collusion!r}")
    else:
        row = _TABLE_3.get(scenario.name)
        if row is None:
            raise LeakageError(
                f"scenario {scenario.name!r} is not a Table 3 configuration"
            )
    to_s, to_m, to_d = row
    return LeakageReport(
        scenario=scenario,
        revealed={
            Party.SERVER: to_s,
            Party.MODEL_OWNER: to_m,
            Party.DATA_OWNER: to_d,
        },
    )


def observed_by_server(model: EncryptedModel) -> Dict[str, int]:
    """What an evaluator mechanically learns from an encrypted model.

    Matrices are encrypted as one ciphertext per generalized diagonal, so
    the evaluator counts: the reshuffle's diagonals reveal ``q``; each
    level matrix's diagonals reveal ``b``; the number of level matrices
    reveals ``d``.  (Vector *lengths* are public ciphertext metadata in
    HElib too.)
    """
    if not model.level_diagonals:
        raise LeakageError("model has no level matrices")
    return {
        STAT_Q: len(model.reshuffle_diagonals),
        STAT_B: len(model.level_diagonals[0]),
        STAT_D: len(model.level_diagonals),
    }


def observed_by_data_owner(result_length: int, max_multiplicity: int) -> Dict[str, int]:
    """What Diane learns from the protocol: ``K`` explicitly (Step 0) and
    the leaf count from the length of the returned classification vector
    (the paper describes this as learning ``b + 1`` per tree)."""
    return {STAT_K: max_multiplicity, "result_slots": result_length}
