"""Security properties of COPSE deployments (Section 7).

* :mod:`repro.security.parties` — the notional parties and the physical
  configurations (two-party and three-party, with and without collusion);
* :mod:`repro.security.leakage` — what each party learns in each
  configuration, reproducing Tables 3 and 4, plus structural-leakage
  extraction from actual protocol artifacts (what an evaluator really
  observes from ciphertext counts and widths);
* :mod:`repro.security.noninterference` — execution-trace extraction and
  the input-independence check backing the FHE noninterference claim.
"""

from repro.security.parties import (
    COLLUSION_NONE,
    COLLUSION_S_WITH_D,
    COLLUSION_S_WITH_M,
    Party,
    Scenario,
    THREE_PARTY_SCENARIOS,
    TWO_PARTY_SCENARIOS,
)
from repro.security.leakage import (
    LeakageReport,
    observed_by_server,
    scenario_leakage,
)
from repro.security.noninterference import (
    check_noninterference,
    execution_trace,
)

__all__ = [
    "Party",
    "Scenario",
    "TWO_PARTY_SCENARIOS",
    "THREE_PARTY_SCENARIOS",
    "COLLUSION_NONE",
    "COLLUSION_S_WITH_M",
    "COLLUSION_S_WITH_D",
    "LeakageReport",
    "scenario_leakage",
    "observed_by_server",
    "execution_trace",
    "check_noninterference",
]
