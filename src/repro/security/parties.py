"""Party and scenario definitions (Sections 3.1 and 7.1).

Three notional parties: the model owner Maurice (``M``), the data owner
Diane (``D``), and the computational server Sally (``S``).  Because
single-key FHE is inherently two-party, the paper analyzes configurations
where two notional parties are one physical party, plus the three-party
case (with and without collusion) to motivate multi-key/threshold FHE.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.errors import LeakageError


class Party(enum.Enum):
    """The notional parties of the protocol."""

    MODEL_OWNER = "M"
    DATA_OWNER = "D"
    SERVER = "S"


#: Collusion settings for the three-party analysis (Table 4).
COLLUSION_NONE = "none"
COLLUSION_S_WITH_M = "S_with_M"
COLLUSION_S_WITH_D = "S_with_D"
_COLLUSIONS = (COLLUSION_NONE, COLLUSION_S_WITH_M, COLLUSION_S_WITH_D)


@dataclass(frozen=True)
class Scenario:
    """One deployment configuration.

    ``merged`` names the pair of notional parties realized by a single
    physical party (empty for the three-party case); ``collusion`` only
    applies to three-party scenarios.
    """

    name: str
    merged: Tuple[Party, ...] = ()
    collusion: str = COLLUSION_NONE

    def __post_init__(self) -> None:
        if self.collusion not in _COLLUSIONS:
            raise LeakageError(
                f"unknown collusion setting {self.collusion!r}; "
                f"choose from {_COLLUSIONS}"
            )
        if self.merged and self.collusion != COLLUSION_NONE:
            raise LeakageError(
                "collusion settings apply only to three-party scenarios"
            )
        if len(self.merged) not in (0, 2):
            raise LeakageError(
                f"a scenario merges exactly two notional parties or none, "
                f"got {len(self.merged)}"
            )

    @property
    def is_three_party(self) -> bool:
        return not self.merged

    def physically_same(self, a: Party, b: Party) -> bool:
        """Whether two notional parties are the same physical party."""
        return a == b or (a in self.merged and b in self.merged)

    @property
    def model_is_plaintext_on_server(self) -> bool:
        """Whether Sally holds the model in plaintext (Maurice = Sally)."""
        return self.physically_same(Party.MODEL_OWNER, Party.SERVER)


#: The two-party configurations of Table 3, in the paper's row order.
SCENARIO_OFFLOAD = Scenario(
    name="S, M=D", merged=(Party.MODEL_OWNER, Party.DATA_OWNER)
)
SCENARIO_MODEL_ON_SERVER = Scenario(
    name="S=M, D", merged=(Party.SERVER, Party.MODEL_OWNER)
)
SCENARIO_CLIENT_EVAL = Scenario(
    name="S=D, M", merged=(Party.SERVER, Party.DATA_OWNER)
)
TWO_PARTY_SCENARIOS = (
    SCENARIO_OFFLOAD,
    SCENARIO_MODEL_ON_SERVER,
    SCENARIO_CLIENT_EVAL,
)

#: The three-party configurations of Table 4, in the paper's row order.
SCENARIO_THREE_PARTY = Scenario(name="S, M, D, no collusion")
SCENARIO_THREE_PARTY_SM = Scenario(
    name="S, M, D, S colludes with M", collusion=COLLUSION_S_WITH_M
)
SCENARIO_THREE_PARTY_SD = Scenario(
    name="S, M, D, S colludes with D", collusion=COLLUSION_S_WITH_D
)
THREE_PARTY_SCENARIOS = (
    SCENARIO_THREE_PARTY,
    SCENARIO_THREE_PARTY_SM,
    SCENARIO_THREE_PARTY_SD,
)

ALL_SCENARIOS = TWO_PARTY_SCENARIOS + THREE_PARTY_SCENARIOS


def scenario_by_name(name: str) -> Scenario:
    for scenario in ALL_SCENARIOS:
        if scenario.name == name:
            return scenario
    known = ", ".join(s.name for s in ALL_SCENARIOS)
    raise LeakageError(f"unknown scenario {name!r}; known: {known}")
