"""Exception hierarchy for the COPSE reproduction.

Every error raised by this package derives from :class:`CopseError`, so
downstream users can catch a single type.  Subsystems define narrower
classes: the FHE substrate raises :class:`FheError` subclasses, the model
layer raises :class:`ModelError` subclasses, and the compiler/runtime raise
:class:`CompileError` / :class:`RuntimeProtocolError`.
"""

from __future__ import annotations


class CopseError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


# ---------------------------------------------------------------------------
# FHE substrate errors
# ---------------------------------------------------------------------------


class FheError(CopseError):
    """Base class for errors raised by the FHE simulator."""


class ParameterError(FheError):
    """Invalid or inconsistent encryption parameters."""


class KeyMismatchError(FheError):
    """An operation combined ciphertexts under different keys, or a
    decryption was attempted with the wrong secret key."""


class NoiseBudgetExceededError(FheError):
    """The ciphertext noise exceeded the capacity of the modulus chain.

    In a real BGV implementation this manifests as a decryption failure;
    the simulator raises eagerly at the operation that exhausts the budget
    so circuits that would not decrypt are rejected deterministically.
    """


class SlotCapacityError(FheError):
    """A plaintext vector does not fit in the available SIMD slots."""


class DomainError(FheError):
    """A plaintext value lies outside the plaintext domain (GF(2))."""


# ---------------------------------------------------------------------------
# Model-layer errors
# ---------------------------------------------------------------------------


class ModelError(CopseError):
    """Base class for decision-forest model errors."""


class SerializationError(ModelError):
    """A serialized model could not be parsed."""


class ValidationError(ModelError):
    """A decision forest failed structural validation."""


class TrainingError(ModelError):
    """Model training could not proceed (e.g. empty dataset)."""


# ---------------------------------------------------------------------------
# Compiler / runtime errors
# ---------------------------------------------------------------------------


class CompileError(CopseError):
    """The COPSE compiler rejected a model."""


class PrecisionError(CompileError):
    """A threshold or feature does not fit in the chosen fixed-point
    precision."""


class RuntimeProtocolError(CopseError):
    """A party performed a protocol step out of order or with data it does
    not own (e.g. Sally attempting to decrypt)."""


class LeakageError(CopseError):
    """A security-analysis query was malformed (unknown scenario, etc.)."""


# ---------------------------------------------------------------------------
# Serving errors
# ---------------------------------------------------------------------------


class ServeError(CopseError):
    """The serving layer rejected an operation (lifecycle, admission,
    or scheduling), as opposed to the query itself being malformed."""


class RejectedQuery(ServeError):
    """Admission control rejected a query instead of queueing it.

    Raised at ``submit`` time when the target model's pending queue is at
    its configured bound — the overload signal callers are expected to
    handle (back off, shed, or retry elsewhere), instead of the queue
    growing without bound.
    """

    def __init__(self, message: str, *, model: str = "",
                 tenant: str = "", queue_depth: int = 0, limit: int = 0):
        super().__init__(message)
        self.model = model
        self.tenant = tenant
        self.queue_depth = queue_depth
        self.limit = limit


class PoisonQueryError(ServeError):
    """Quarantine isolated this query as the one crashing its workers.

    Raised on the query's future after bisection narrowed a repeatedly
    worker-killing batch down to this single query and moved it to the
    dead-letter queue.  Carries enough context to find the quarantine
    trail in the router's decision log.
    """

    def __init__(self, message: str, *, model: str = "",
                 tenant: str = "", seq: int = -1, attempts: int = 0):
        super().__init__(message)
        self.model = model
        self.tenant = tenant
        self.seq = seq
        self.attempts = attempts
