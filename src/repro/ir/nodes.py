"""IR node and graph types.

The IR is a flat SSA graph: every node is an operation producing one
packed vector; arguments are node ids of earlier nodes (topological by
construction).  Nodes are immutable and hashable by their semantic key
``(op, args, attr)`` — which is exactly what common-subexpression
elimination deduplicates on.

Node kinds:

=============  ==========================================================
INPUT_CT       named ciphertext input (bound at execution time)
INPUT_PT       named plaintext input
CONST_PT       plaintext constant baked into the graph (``attr`` = bits)
ADD            ciphertext XOR ciphertext
CONST_ADD      ciphertext XOR plaintext
MULTIPLY       ciphertext AND ciphertext
CONST_MULT     ciphertext AND plaintext
ROTATE         cyclic left rotation (``attr`` = amount)
EXTEND         cyclic extension to a longer width (``attr`` = new width)
TRUNCATE       logical-width restriction (``attr`` = new width)
=============  ==========================================================

``is_cipher`` tracks whether a node's value is encrypted; plaintext-only
arithmetic never appears as ADD/MULTIPLY nodes (the builder folds it).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import CompileError


class IrOp(enum.Enum):
    INPUT_CT = "input_ct"
    INPUT_PT = "input_pt"
    CONST_PT = "const_pt"
    ADD = "add"
    CONST_ADD = "const_add"
    MULTIPLY = "multiply"
    CONST_MULT = "const_mult"
    ROTATE = "rotate"
    EXTEND = "extend"
    TRUNCATE = "truncate"


#: Ops whose result is a ciphertext whenever they appear in a graph.
_CIPHER_OPS = {
    IrOp.INPUT_CT,
    IrOp.ADD,
    IrOp.CONST_ADD,
    IrOp.MULTIPLY,
    IrOp.CONST_MULT,
}


@dataclass(frozen=True)
class IrNode:
    """One SSA operation."""

    node_id: int
    op: IrOp
    args: Tuple[int, ...]
    attr: Tuple = ()
    width: int = 0
    is_cipher: bool = True

    @property
    def key(self):
        """Semantic identity (everything except the node id)."""
        return (self.op, self.args, self.attr)


@dataclass
class IrGraph:
    """A whole circuit: nodes in topological order plus named outputs."""

    nodes: List[IrNode] = field(default_factory=list)
    outputs: Dict[str, int] = field(default_factory=dict)
    inputs: Dict[str, int] = field(default_factory=dict)

    def node(self, node_id: int) -> IrNode:
        return self.nodes[node_id]

    def add(self, op: IrOp, args, attr=(), width=0, is_cipher=None) -> int:
        for a in args:
            if not 0 <= a < len(self.nodes):
                raise CompileError(f"IR argument {a} out of range")
        if is_cipher is None:
            is_cipher = op in _CIPHER_OPS or any(
                self.nodes[a].is_cipher for a in args
            )
        node = IrNode(
            node_id=len(self.nodes),
            op=op,
            args=tuple(args),
            attr=tuple(attr),
            width=width,
            is_cipher=is_cipher,
        )
        self.nodes.append(node)
        return node.node_id

    def mark_output(self, name: str, node_id: int) -> None:
        if name in self.outputs:
            raise CompileError(f"duplicate output name {name!r}")
        self.node(node_id)  # range check
        self.outputs[name] = node_id

    def mark_input(self, name: str, node_id: int) -> None:
        if name in self.inputs:
            raise CompileError(f"duplicate input name {name!r}")
        self.inputs[name] = node_id

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def describe(self) -> str:
        from repro.ir.passes import analyze_counts, analyze_depth

        counts = analyze_counts(self)
        summary = " ".join(f"{k.value}={v}" for k, v in sorted(
            counts.items(), key=lambda kv: kv[0].value))
        return (
            f"ir graph: nodes={self.num_nodes} outputs={len(self.outputs)} "
            f"depth={analyze_depth(self)} [{summary}]"
        )


def validate_graph(graph: IrGraph) -> None:
    """Structural validation: topological args, outputs in range, input
    nodes actually being input ops."""
    for node in graph.nodes:
        for a in node.args:
            if a >= node.node_id:
                raise CompileError(
                    f"node {node.node_id} references later node {a}"
                )
    for name, node_id in graph.outputs.items():
        if not 0 <= node_id < graph.num_nodes:
            raise CompileError(f"output {name!r} out of range")
    for name, node_id in graph.inputs.items():
        op = graph.node(node_id).op
        if op not in (IrOp.INPUT_CT, IrOp.INPUT_PT):
            raise CompileError(
                f"input {name!r} bound to non-input node kind {op.value}"
            )
