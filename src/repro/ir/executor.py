"""IR execution against any FHE backend.

``execute`` walks a graph in topological order, mapping each node to the
corresponding :class:`~repro.fhe.backend.FheBackend` operation — the
context is consumed purely through the protocol surface (``encode`` /
``xor_any`` / ``and_any`` / ``rotate_any`` / ``cyclic_extend`` /
``truncate``), so plans run identically on the reference simulator, the
vector backend, or any registered engine, and every cost and noise
effect is accounted by that backend exactly as in the direct runtime
path.  Inputs are bound by name; outputs come back as a name-to-vector
dictionary.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.errors import CompileError, RuntimeProtocolError, ValidationError
from repro.fhe.backend import FheBackend
from repro.fhe.ciphertext import Ciphertext, PlainVector
from repro.fhe.context import Vector
from repro.ir.nodes import IrGraph, IrOp


def tile_plain_extend(arr: np.ndarray, length: int, source: str) -> np.ndarray:
    """Cyclically tile a plaintext bit array out to ``length`` slots.

    The one shared EXTEND-tiling kernel for every engine — the graph
    executor, the compiled tape, and the megakernel all call this, so a
    degenerate operand fails identically everywhere.  A zero-length
    plain operand has no cyclic extension (the ceil-division tiling
    would divide by zero), so it raises
    :class:`~repro.errors.ValidationError` naming the input and its
    width instead of leaking a bare ``ZeroDivisionError``.
    """
    if arr.size == 0:
        raise ValidationError(
            f"cannot EXTEND {source} to {length} slots: the plain "
            f"operand has width 0, and a zero-length vector has no "
            f"cyclic extension"
        )
    reps = -(-length // arr.size)
    return np.tile(arr, reps)[:length]


def execute(
    graph: IrGraph,
    ctx: FheBackend,
    bindings: Dict[str, Vector],
    phase: Optional[str] = None,
    profiler=None,
) -> Dict[str, Vector]:
    """Run ``graph`` with the given input bindings.

    Every named input must be bound; ciphertext inputs must be bound to
    ciphertexts of the declared width (plaintext inputs to plain
    vectors).  When ``phase`` is given, all operations are recorded under
    that tracker phase.  ``profiler`` (a
    :class:`~repro.obs.profiler.TapeProfiler`) opts into per-node
    attribution through a separate instrumented walk — the default
    ``None`` leaves the hot path untouched.
    """
    missing = set(graph.inputs) - set(bindings)
    if missing:
        raise RuntimeProtocolError(
            f"unbound IR inputs: {sorted(missing)}"
        )

    if profiler is not None:
        if phase is not None:
            with ctx.tracker.phase(phase):
                return _run_profiled(graph, ctx, bindings, profiler)
        return _run_profiled(graph, ctx, bindings, profiler)
    if phase is not None:
        with ctx.tracker.phase(phase):
            return _run(graph, ctx, bindings)
    return _run(graph, ctx, bindings)


def _run(graph: IrGraph, ctx: FheBackend, bindings) -> Dict[str, Vector]:
    values: List[Optional[Vector]] = [None] * graph.num_nodes
    # Plaintext constants are immutable and identical across executions,
    # so each graph encodes them once and reuses the PlainVectors on
    # every subsequent run (plans execute per batch, graphs are shared).
    consts: Dict[int, PlainVector] = graph.__dict__.setdefault(
        "_const_cache", {}
    )

    for node in graph.nodes:
        if node.op is IrOp.INPUT_CT:
            value = bindings[node.attr[0]]
            if not isinstance(value, Ciphertext):
                raise RuntimeProtocolError(
                    f"input {node.attr[0]!r} must be a ciphertext"
                )
            if value.length != node.width:
                raise RuntimeProtocolError(
                    f"input {node.attr[0]!r} has width {value.length}, "
                    f"declared {node.width}"
                )
            values[node.node_id] = value
        elif node.op is IrOp.INPUT_PT:
            value = bindings[node.attr[0]]
            if not isinstance(value, PlainVector):
                raise RuntimeProtocolError(
                    f"input {node.attr[0]!r} must be a plaintext vector"
                )
            if value.length != node.width:
                raise RuntimeProtocolError(
                    f"input {node.attr[0]!r} has width {value.length}, "
                    f"declared {node.width}"
                )
            values[node.node_id] = value
        elif node.op is IrOp.CONST_PT:
            value = consts.get(node.node_id)
            if value is None:
                value = ctx.encode(list(node.attr))
                consts[node.node_id] = value
            values[node.node_id] = value
        elif node.op in (IrOp.ADD, IrOp.CONST_ADD):
            a, b = (values[i] for i in node.args)
            values[node.node_id] = ctx.xor_any(a, b)
        elif node.op in (IrOp.MULTIPLY, IrOp.CONST_MULT):
            a, b = (values[i] for i in node.args)
            values[node.node_id] = ctx.and_any(a, b)
        elif node.op is IrOp.ROTATE:
            values[node.node_id] = ctx.rotate_any(
                values[node.args[0]], node.attr[0]
            )
        elif node.op is IrOp.EXTEND:
            source = values[node.args[0]]
            if isinstance(source, Ciphertext):
                values[node.node_id] = ctx.cyclic_extend(source, node.attr[0])
            else:
                values[node.node_id] = PlainVector(
                    tile_plain_extend(
                        source.to_array(), node.attr[0],
                        f"IR node {node.args[0]}",
                    )
                )
        elif node.op is IrOp.TRUNCATE:
            source = values[node.args[0]]
            if isinstance(source, Ciphertext):
                values[node.node_id] = ctx.truncate(source, node.attr[0])
            else:
                values[node.node_id] = PlainVector(
                    source.to_array()[: node.attr[0]]
                )
        else:  # pragma: no cover - enum is closed
            raise CompileError(f"unknown IR op {node.op!r}")

    return {
        name: values[node_id] for name, node_id in graph.outputs.items()
    }


#: Ops that bind or cache values without touching the backend — the
#: profiled walk skips them so its samples are pure compute.
_BINDING_OPS = (IrOp.INPUT_CT, IrOp.INPUT_PT, IrOp.CONST_PT)


def _run_profiled(
    graph: IrGraph, ctx: FheBackend, bindings, profiler
) -> Dict[str, Vector]:
    """:func:`_run` with per-node attribution for the tape profiler.

    Each compute node is bracketed by a timer read and a tracker counts
    snapshot; binding nodes (inputs, cached constants) execute through
    the plain walk.  Sample indices are graph node ids, opcodes the
    lowercased :class:`IrOp` names — the same vocabulary the profiler
    report uses for tapes.
    """
    values: List[Optional[Vector]] = [None] * graph.num_nodes
    consts: Dict[int, PlainVector] = graph.__dict__.setdefault(
        "_const_cache", {}
    )
    tracker = ctx.tracker
    timer = profiler.timer
    profiler.begin_run()

    for node in graph.nodes:
        if node.op in _BINDING_OPS:
            if node.op is IrOp.CONST_PT:
                value = consts.get(node.node_id)
                if value is None:
                    value = ctx.encode(list(node.attr))
                    consts[node.node_id] = value
            else:
                value = bindings[node.attr[0]]
                wants = (
                    Ciphertext if node.op is IrOp.INPUT_CT else PlainVector
                )
                if not isinstance(value, wants):
                    kind = (
                        "a ciphertext" if wants is Ciphertext
                        else "a plaintext vector"
                    )
                    raise RuntimeProtocolError(
                        f"input {node.attr[0]!r} must be {kind}"
                    )
                if value.length != node.width:
                    raise RuntimeProtocolError(
                        f"input {node.attr[0]!r} has width {value.length}, "
                        f"declared {node.width}"
                    )
            values[node.node_id] = value
            continue
        before = tracker.counts_snapshot()
        t0 = timer()
        if node.op in (IrOp.ADD, IrOp.CONST_ADD):
            a, b = (values[i] for i in node.args)
            value = ctx.xor_any(a, b)
        elif node.op in (IrOp.MULTIPLY, IrOp.CONST_MULT):
            a, b = (values[i] for i in node.args)
            value = ctx.and_any(a, b)
        elif node.op is IrOp.ROTATE:
            value = ctx.rotate_any(values[node.args[0]], node.attr[0])
        elif node.op is IrOp.EXTEND:
            source = values[node.args[0]]
            if isinstance(source, Ciphertext):
                value = ctx.cyclic_extend(source, node.attr[0])
            else:
                value = PlainVector(
                    tile_plain_extend(
                        source.to_array(), node.attr[0],
                        f"IR node {node.args[0]}",
                    )
                )
        elif node.op is IrOp.TRUNCATE:
            source = values[node.args[0]]
            if isinstance(source, Ciphertext):
                value = ctx.truncate(source, node.attr[0])
            else:
                value = PlainVector(source.to_array()[: node.attr[0]])
        else:  # pragma: no cover - enum is closed
            raise CompileError(f"unknown IR op {node.op!r}")
        wall_s = timer() - t0
        profiler.instruction(
            node.node_id, node.op.name.lower(), wall_s, before,
            tracker.counts_snapshot(), value,
        )
        values[node.node_id] = value

    return {
        name: values[node_id] for name, node_id in graph.outputs.items()
    }
