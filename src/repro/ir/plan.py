"""Compiled inference plans: the optimizer as a load-bearing layer.

``lower_inference`` / ``lower_batched_inference`` stage a compiled COPSE
model's *entire* live pipeline — SecComp bit-plane comparison, reshuffle
matmul, level products, label accumulation — into one
:class:`~repro.ir.nodes.IrGraph`, run the standard pass pipeline
(rotation fusion -> CSE -> DCE) over it, and wrap the result in an
:class:`InferencePlan`: the optimized graph, its input-binding spec, and
the raw-vs-optimized analyses (op counts, multiplicative depth, and
cost-model milliseconds).

A plan is compiled **once per model** and executed per query (or per
batch): :class:`~repro.serve.registry.ModelRegistry` caches a batched
plan next to the encrypted model ciphertexts, and
:class:`~repro.core.runtime.CopseServer` /
:class:`~repro.serve.batched_runtime.BatchedCopseServer` select it with
``engine="plan"``.  The batched lowering emits the block-local masked
gathers of :mod:`repro.serve.batched_runtime` *naively* — one gather per
(level, diagonal) — and relies on CSE to discover the cross-level
sharing, so the optimizer does on the real serving workload what the
batched runtime schedules by hand (and the regression guard in
``tests/bench/test_plan_baseline.py`` holds it there).

This module deliberately imports nothing from :mod:`repro.serve`: the
batch geometry is consumed duck-typed (``stride`` / ``capacity`` / the
per-stage widths), keeping the dependency arrow serve -> ir.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CompileError, RuntimeProtocolError
from repro.core.compiler import CompiledModel
from repro.core.runtime import PHASE_PLAN
from repro.core.seccomp import SECCOMP_VARIANTS, VARIANT_ALOUFI
from repro.fhe.ciphertext import Ciphertext
from repro.fhe.context import FheContext, Vector
from repro.fhe.costmodel import CostModel
from repro.ir.builder import IrBuilder
from repro.ir.copse_ir import (
    FEATURE_PLANE,
    LEVEL_DIAG,
    LEVEL_MASK,
    NOT_ONE,
    OUTPUT_LABELS,
    RESHUFFLE_DIAG,
    THRESHOLD_PLANE,
    _emit_seccomp,
    build_inference_graph,
)
from repro.ir.executor import execute
from repro.ir.nodes import IrGraph, IrOp
from repro.ir.passes import (
    analyze_counts,
    analyze_depth,
    cost_of_counts,
    optimize,
)

__all__ = [
    "GraphProfile",
    "InferencePlan",
    "bind_model_query",
    "build_batched_inference_graph",
    "gather_segments",
    "lower_batched_inference",
    "lower_inference",
    "tile_blocks",
]


def bind_model_query(
    ctx: FheContext,
    input_widths: Dict[str, int],
    encrypted_model: bool,
    model_fingerprint: Optional[str],
    model,
    query,
) -> Dict[str, Vector]:
    """Bind a runtime model bundle + encrypted query onto named inputs.

    The single source of the binding rules shared by
    :meth:`InferencePlan.bindings_for` and the compiled tape of
    :mod:`repro.ir.tape`: model structures bind only for encrypted-model
    lowerings (plaintext-model programs baked them in as constants), the
    Aloufi all-ones helper is encrypted under the query's public key,
    inputs the optimizer eliminated are skipped, and a bundle that
    cannot prove — via :meth:`CompiledModel.fingerprint` — that it is
    the model the program was lowered for is refused (fail closed).
    """
    if model is not None and model.is_encrypted != encrypted_model:
        raise RuntimeProtocolError(
            f"plan was lowered for an "
            f"{'encrypted' if encrypted_model else 'plaintext'} "
            f"model but received the opposite"
        )
    if model_fingerprint is not None and model is not None:
        # Fail closed: a bundle without a fingerprint (hand-built, not
        # via ModelOwner/build_batched_model) cannot prove it is the
        # model this program was lowered for.
        model_fp = getattr(model, "fingerprint", None)
        if model_fp != model_fingerprint:
            raise RuntimeProtocolError(
                f"plan was lowered for model {model_fingerprint} "
                f"but received model {model_fp}; lower a plan for this "
                f"model (or register it, which does)"
            )
    bindings: Dict[str, Vector] = {}
    for i, plane in enumerate(query.planes):
        bindings[FEATURE_PLANE.format(i=i)] = plane
    if NOT_ONE in input_widths:
        if query.public_key is None:
            raise RuntimeProtocolError(
                "the Aloufi SecComp variant needs the query's public "
                "key to encrypt the all-ones helper"
            )
        width = input_widths[NOT_ONE]
        bindings[NOT_ONE] = ctx.encrypt([1] * width, query.public_key)
    if encrypted_model:
        for i, vec in enumerate(model.threshold_planes):
            bindings[THRESHOLD_PLANE.format(i=i)] = vec
        for i, vec in enumerate(model.reshuffle_diagonals):
            bindings[RESHUFFLE_DIAG.format(i=i)] = vec
        for level, diagonals in enumerate(model.level_diagonals):
            for i, vec in enumerate(diagonals):
                bindings[LEVEL_DIAG.format(level=level, i=i)] = vec
        for level, mask in enumerate(model.level_masks):
            bindings[LEVEL_MASK.format(level=level)] = mask
    return {
        name: value
        for name, value in bindings.items()
        if name in input_widths
    }


# ---------------------------------------------------------------------------
# Analyses snapshot
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GraphProfile:
    """Static analyses of one graph (kept after the graph is dropped)."""

    num_nodes: int
    depth: int
    counts: Dict[IrOp, int] = field(default_factory=dict)

    @classmethod
    def of(cls, graph: IrGraph) -> "GraphProfile":
        return cls(
            num_nodes=graph.num_nodes,
            depth=analyze_depth(graph),
            counts=analyze_counts(graph),
        )

    def count(self, op: IrOp) -> int:
        return self.counts.get(op, 0)

    @property
    def rotations(self) -> int:
        """Rotation work: ROTATE plus EXTEND (an extension costs one)."""
        return self.count(IrOp.ROTATE) + self.count(IrOp.EXTEND)

    @property
    def multiplies(self) -> int:
        return self.count(IrOp.MULTIPLY)

    def cost_ms(self, cost_model: CostModel) -> float:
        """Simulated sequential ms of the profiled ciphertext operations."""
        return cost_of_counts(self.counts, cost_model)


# ---------------------------------------------------------------------------
# The plan object
# ---------------------------------------------------------------------------


@dataclass
class InferencePlan:
    """An optimized, executable lowering of one model's inference pipeline.

    ``graph`` is the (optimized) IR; ``raw`` / ``optimized`` profile the
    graph before and after the pass pipeline, so callers can report what
    the optimizer bought without re-lowering.  The input-binding spec is
    the graph's named-input table: :meth:`bindings_for` maps a runtime
    model bundle (:class:`~repro.core.runtime.EncryptedModel` or the
    batched equivalent — both expose ``threshold_planes`` /
    ``reshuffle_diagonals`` / ``level_diagonals`` / ``level_masks``) and
    an :class:`~repro.core.runtime.EncryptedQuery` onto those names.
    """

    graph: IrGraph
    variant: str
    encrypted_model: bool
    raw: GraphProfile
    optimized: GraphProfile
    #: Total slot width of one execution (stride * capacity for batched
    #: plans, the per-query width otherwise).
    width: int = 0
    #: None for single-query plans; (stride, capacity) for batched ones.
    batch_shape: Optional[Tuple[int, int]] = None
    #: :meth:`CompiledModel.fingerprint` of the lowered model; checked
    #: against the runtime bundle at bind time so a cached plan never
    #: silently serves a different (even shape-identical) model.
    model_fingerprint: Optional[str] = None

    @property
    def batched(self) -> bool:
        return self.batch_shape is not None

    @property
    def input_names(self) -> List[str]:
        """The binding spec: every named input the plan may consume."""
        return sorted(self.graph.inputs)

    @property
    def input_widths(self) -> Dict[str, int]:
        """Declared width of every named input (the binding spec)."""
        return {
            name: self.graph.node(nid).width
            for name, nid in self.graph.inputs.items()
        }

    @property
    def rotations_saved(self) -> int:
        return self.raw.rotations - self.optimized.rotations

    def cost_ms(self, cost_model: CostModel) -> float:
        return self.optimized.cost_ms(cost_model)

    def speedup(self, cost_model: CostModel) -> float:
        opt = self.optimized.cost_ms(cost_model)
        if opt <= 0:
            return float("inf")
        return self.raw.cost_ms(cost_model) / opt

    def describe(self) -> str:
        shape = (
            f"batched {self.batch_shape[1]}x{self.batch_shape[0]}"
            if self.batched
            else "single-query"
        )
        return (
            f"plan[{shape}, {self.variant}, "
            f"{'encrypted' if self.encrypted_model else 'plaintext'} model]: "
            f"nodes {self.raw.num_nodes}->{self.optimized.num_nodes}, "
            f"rotations {self.raw.rotations}->{self.optimized.rotations}, "
            f"depth {self.optimized.depth}"
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def bindings_for(self, ctx: FheContext, model, query) -> Dict[str, Vector]:
        """Bind a runtime model bundle and encrypted query to the graph.

        Model structures lower to named inputs only under
        ``encrypted_model=True``; a plaintext-model plan baked them in as
        constants, so only the query planes (and the Aloufi all-ones
        helper) bind.  Inputs the optimizer eliminated are skipped.
        """
        return bind_model_query(
            ctx,
            self.input_widths,
            self.encrypted_model,
            self.model_fingerprint,
            model,
            query,
        )

    def run(
        self,
        ctx: FheContext,
        model,
        query,
        phase: Optional[str] = PHASE_PLAN,
    ) -> Ciphertext:
        """Execute the plan; returns the encrypted label bitvector.

        Everything — including the Aloufi all-ones helper encryption —
        records under ``phase`` so per-engine stats stay comparable with
        the eager path (whose helper lands in its comparison phase).
        """
        if phase is not None:
            with ctx.tracker.phase(phase):
                return self._run(ctx, model, query)
        return self._run(ctx, model, query)

    def _run(self, ctx: FheContext, model, query) -> Ciphertext:
        bindings = self.bindings_for(ctx, model, query)
        outputs = execute(self.graph, ctx, bindings, phase=None)
        result = outputs[OUTPUT_LABELS]
        if not isinstance(result, Ciphertext):  # pragma: no cover
            raise RuntimeProtocolError("plan result must be encrypted")
        return result

    # ------------------------------------------------------------------
    # Tape compilation
    # ------------------------------------------------------------------

    def compile_tape(self, fuse: bool = True) -> "CompiledTape":
        """Compile this plan into a :class:`~repro.ir.tape.CompiledTape`.

        Runs the rotation scheduler over the optimized graph, linearizes
        it with liveness-based register reuse, and (with ``fuse=True``)
        emits fused accumulation instructions.  The tape inherits the
        plan's binding spec, batch shape, and fail-closed model
        fingerprint.  Compile once, execute per batch —
        :class:`~repro.serve.registry.ModelRegistry` caches the tape
        next to the plan.
        """
        from repro.ir.tape import compile_tape

        return compile_tape(
            self.graph,
            fuse=fuse,
            variant=self.variant,
            encrypted_model=self.encrypted_model,
            width=self.width,
            batch_shape=self.batch_shape,
            model_fingerprint=self.model_fingerprint,
        )


# ---------------------------------------------------------------------------
# Single-query lowering
# ---------------------------------------------------------------------------


def lower_inference(
    compiled: CompiledModel,
    encrypted_model: bool = True,
    variant: str = VARIANT_ALOUFI,
    optimize_graph: bool = True,
) -> InferencePlan:
    """Lower one model's full single-query pipeline into a plan.

    The emission is :func:`~repro.ir.copse_ir.build_inference_graph`'s
    deliberately naive schedule; ``optimize_graph=False`` keeps it that
    way (for ablations), otherwise the pass pipeline recovers — and
    surpasses — the hand-written runtime's sharing.
    """
    raw_graph = build_inference_graph(compiled, encrypted_model, variant)
    raw = GraphProfile.of(raw_graph)
    graph = optimize(raw_graph) if optimize_graph else raw_graph
    return InferencePlan(
        graph=graph,
        variant=variant,
        encrypted_model=encrypted_model,
        raw=raw,
        optimized=GraphProfile.of(graph) if optimize_graph else raw,
        width=compiled.num_labels,
        model_fingerprint=compiled.fingerprint(),
    )


# ---------------------------------------------------------------------------
# Batched lowering
# ---------------------------------------------------------------------------


def tile_blocks(vector, stride: int, capacity: int) -> np.ndarray:
    """Pad a per-query model vector to ``stride`` and tile it per block.

    The canonical tiling both the batched lowering and
    :func:`repro.serve.packing.tile_model_vector` use (serve delegates
    here, so the plan's baked constants and the eager runtime's tiled
    vectors cannot drift apart).
    """
    arr = np.asarray(vector, dtype=np.uint8)
    if arr.ndim != 1 or arr.size == 0 or arr.size > stride:
        raise CompileError(
            f"model vector of length {arr.size} does not fit the "
            f"stride {stride}"
        )
    padded = np.zeros(stride, dtype=np.uint8)
    padded[: arr.size] = arr
    return np.tile(padded, capacity)


def gather_segments(shift: int, width: int, rows: int) -> List[Tuple[int, int, int]]:
    """The (rotation, lo, hi) segments of one block-local gather.

    The canonical decomposition both the batched lowering and
    :func:`repro.serve.batched_runtime.block_gather` use: segment ``m``
    supplies block offsets ``t`` with ``floor((t + shift) / width) == m``
    from the global rotation by ``shift - m * width``.
    """
    segments: List[Tuple[int, int, int]] = []
    for m in range((rows - 1 + shift) // width + 1):
        lo = max(0, m * width - shift)
        hi = min(rows, (m + 1) * width - shift)
        if lo < hi:
            segments.append((shift - m * width, lo, hi))
    return segments


def _emit_gather(
    b: IrBuilder, layout, vector: int, shift: int, width: int, rows: int
) -> int:
    """Emit ``out[k*S+t] = v[k*S + (t+shift) % width]`` for every block."""
    if not 0 <= shift < width:
        raise CompileError(
            f"gather shift {shift} outside the logical width {width}"
        )
    if rows < 1 or rows > layout.stride or width > layout.stride:
        raise CompileError(
            f"gather shape rows={rows} width={width} exceeds the "
            f"stride {layout.stride}"
        )
    segments = gather_segments(shift, width, rows)
    if len(segments) == 1:
        # One segment needs no selection mask: the caller's diagonal
        # product zeroes everything outside the consumed offsets.
        return b.rotate(vector, segments[0][0])
    terms: List[int] = []
    for amount, lo, hi in segments:
        rotated = b.rotate(vector, amount)
        block = np.zeros(layout.stride, dtype=np.uint8)
        block[lo:hi] = 1
        mask = b.const(np.tile(block, layout.capacity))
        terms.append(b.and_(rotated, mask))
    return b.xor_all(terms)


def _emit_batched_matvec(
    b: IrBuilder,
    layout,
    diagonals: Sequence[int],
    rows: int,
    cols: int,
    vector: int,
) -> int:
    """Halevi-Shoup product applied independently inside every block."""
    products = [
        b.and_(diagonal, _emit_gather(b, layout, vector, i, cols, rows))
        for i, diagonal in enumerate(diagonals)
    ]
    return b.xor_all(products)


def build_batched_inference_graph(
    compiled: CompiledModel,
    layout,
    encrypted_model: bool = True,
    variant: str = VARIANT_ALOUFI,
) -> IrGraph:
    """Emit the batched Algorithm 1 for ``model`` as an unoptimized graph.

    ``layout`` is a :class:`~repro.serve.packing.BatchLayout` (duck-typed:
    ``stride``/``capacity`` plus the per-stage widths).  Every vector
    spans ``stride * capacity`` slots; cyclic accesses are the batched
    runtime's masked-rotation gathers, emitted once per (level, diagonal)
    so the optimizer — not the emitter — discovers the cross-level
    sharing.
    """
    if variant not in SECCOMP_VARIANTS:
        raise CompileError(f"unknown SecComp variant {variant!r}")
    b = IrBuilder()
    width = layout.stride * layout.capacity
    p = compiled.precision

    x_planes = [
        b.input_ct(FEATURE_PLANE.format(i=i), width) for i in range(p)
    ]

    def model_vector(name: str, bits) -> int:
        if encrypted_model:
            return b.input_ct(name, width)
        return b.const(tile_blocks(bits, layout.stride, layout.capacity))

    y_planes = [
        model_vector(THRESHOLD_PLANE.format(i=i), compiled.threshold_planes[i])
        for i in range(p)
    ]
    not_one = None
    if variant == VARIANT_ALOUFI:
        not_one = b.input_ct(NOT_ONE, width)

    decisions = _emit_seccomp(b, x_planes, y_planes, variant, not_one)

    reshuffle_diags = [
        model_vector(RESHUFFLE_DIAG.format(i=i), compiled.reshuffle.diagonal(i))
        for i in range(compiled.quantized_branching)
    ]
    branches = _emit_batched_matvec(
        b,
        layout,
        reshuffle_diags,
        rows=compiled.branching,
        cols=compiled.quantized_branching,
        vector=decisions,
    )

    level_results: List[int] = []
    for level in range(compiled.max_depth):
        matrix = compiled.level_matrices[level]
        diags = [
            model_vector(
                LEVEL_DIAG.format(level=level, i=i), matrix.diagonal(i)
            )
            for i in range(compiled.branching)
        ]
        product = _emit_batched_matvec(
            b,
            layout,
            diags,
            rows=compiled.num_labels,
            cols=compiled.branching,
            vector=branches,
        )
        mask = model_vector(
            LEVEL_MASK.format(level=level), compiled.level_masks[level]
        )
        level_results.append(b.xor(product, mask))

    b.output(OUTPUT_LABELS, b.and_all(level_results))
    return b.build()


def lower_batched_inference(
    compiled: CompiledModel,
    layout,
    encrypted_model: bool = True,
    variant: str = VARIANT_ALOUFI,
    optimize_graph: bool = True,
) -> InferencePlan:
    """Lower one model's batched pipeline (for ``layout``) into a plan."""
    raw_graph = build_batched_inference_graph(
        compiled, layout, encrypted_model, variant
    )
    raw = GraphProfile.of(raw_graph)
    graph = optimize(raw_graph) if optimize_graph else raw_graph
    return InferencePlan(
        graph=graph,
        variant=variant,
        encrypted_model=encrypted_model,
        raw=raw,
        optimized=GraphProfile.of(graph) if optimize_graph else raw,
        width=layout.stride * layout.capacity,
        batch_shape=(layout.stride, layout.capacity),
        model_fingerprint=compiled.fingerprint(),
    )
