"""Optimizer passes and analyses over IR graphs.

All passes are pure graph-to-graph functions; ``optimize`` runs the
standard pipeline (rotation fusion -> CSE -> DCE) to a fixed point.

* **fuse_rotations** — ``rot(rot(x, a), b)`` becomes ``rot(x, a+b mod w)``
  and zero rotations disappear (HElib would pay two key switches for the
  nested form);
* **common_subexpression_elimination** — nodes with identical
  ``(op, args, attr)`` merge; commutative ops were argument-ordered by
  the builder, so ``a XOR b`` and ``b XOR a`` share a key.  This is the
  pass that discovers COPSE's cross-level sharing: every level matrix
  extends the same rotated branch vectors, so the per-level extensions
  collapse to one set;
* **dead_code_elimination** — drops everything unreachable from outputs;
* **schedule_rotations** — the baby-step/giant-step-style rotation
  scheduler for masked gathers (not part of ``optimize``; the tape
  compiler of :mod:`repro.ir.tape` runs it).  A masked gather combines
  several rotations of one vector under plaintext selection masks:
  ``out = XOR_m rot(v, a_m) & mask_m``.  The pass re-expresses every such
  group against a shared *pivot* ``p = min(a_m)``::

      out = rot( XOR_m rot(v, a_m - p) & rot(mask_m, -p),  p )

  Rotating a plaintext mask is free, so only the *residual* rotations
  ``rot(v, a_m - p)`` and one pivot rotation per group cost anything —
  and the residuals are translation-invariant: every per-shift gather of
  the same source produces the same residual set ``{0, w, 2w, ...}``,
  which CSE then shares across all of them.  The per-(level, diagonal)
  gather rotations of the batched lowering collapse from one rotation
  per (shift, segment) pair to one per shift plus a handful of shared
  residuals — strictly fewer rotations at identical bits and unchanged
  multiplicative depth.

Analyses: ``analyze_counts`` (ops by kind, the Section 6 work measure),
``analyze_depth`` (multiplicative depth), ``analyze_cost`` (simulated ms
under a :class:`~repro.fhe.costmodel.CostModel`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.fhe.backend import fold_balanced
from repro.fhe.costmodel import CostModel
from repro.fhe.tracker import OpKind
from repro.ir.nodes import IrGraph, IrNode, IrOp


def _rebuild(graph: IrGraph, remap: Dict[int, int], nodes: List[IrNode]) -> IrGraph:
    out = IrGraph(nodes=nodes)
    out.outputs = {name: remap[nid] for name, nid in graph.outputs.items()}
    out.inputs = {name: remap[nid] for name, nid in graph.inputs.items()}
    return out


def fuse_rotations(graph: IrGraph) -> IrGraph:
    """Collapse rotation chains and drop zero rotations."""
    remap: Dict[int, int] = {}
    nodes: List[IrNode] = []

    def emit(op, args, attr, width, is_cipher) -> int:
        node_id = len(nodes)
        nodes.append(IrNode(node_id, op, tuple(args), tuple(attr), width, is_cipher))
        return node_id

    for node in graph.nodes:
        args = tuple(remap[a] for a in node.args)
        if node.op is IrOp.ROTATE:
            amount = node.attr[0]
            target = args[0]
            # Walk through any rotation already emitted.
            while nodes[target].op is IrOp.ROTATE:
                amount += nodes[target].attr[0]
                target = nodes[target].args[0]
            amount %= nodes[target].width if nodes[target].width else 1
            if amount == 0:
                remap[node.node_id] = target
                continue
            remap[node.node_id] = emit(
                IrOp.ROTATE, (target,), (amount,), node.width, node.is_cipher
            )
            continue
        remap[node.node_id] = emit(
            node.op, args, node.attr, node.width, node.is_cipher
        )
    return _rebuild(graph, remap, nodes)


def common_subexpression_elimination(graph: IrGraph) -> IrGraph:
    """Merge semantically identical nodes (hash-consing)."""
    remap: Dict[int, int] = {}
    seen: Dict[tuple, int] = {}
    nodes: List[IrNode] = []
    for node in graph.nodes:
        args = tuple(remap[a] for a in node.args)
        key = (node.op, args, node.attr)
        # Distinct named inputs must stay distinct even though their key
        # includes the name (attr), so this is safe for inputs too.
        if key in seen:
            remap[node.node_id] = seen[key]
            continue
        node_id = len(nodes)
        nodes.append(
            IrNode(node_id, node.op, args, node.attr, node.width, node.is_cipher)
        )
        seen[key] = node_id
        remap[node.node_id] = node_id
    return _rebuild(graph, remap, nodes)


def dead_code_elimination(graph: IrGraph) -> IrGraph:
    """Drop nodes unreachable from the outputs (inputs are kept: they are
    part of the graph's interface even if unused)."""
    live = set(graph.outputs.values()) | set(graph.inputs.values())
    for node in reversed(graph.nodes):
        if node.node_id in live:
            live.update(node.args)
    remap: Dict[int, int] = {}
    nodes: List[IrNode] = []
    for node in graph.nodes:
        if node.node_id not in live:
            continue
        args = tuple(remap[a] for a in node.args)
        node_id = len(nodes)
        nodes.append(
            IrNode(node_id, node.op, args, node.attr, node.width, node.is_cipher)
        )
        remap[node.node_id] = node_id
    return _rebuild(graph, remap, nodes)


def _use_counts(graph: IrGraph) -> List[int]:
    uses = [0] * graph.num_nodes
    for node in graph.nodes:
        for a in node.args:
            uses[a] += 1
    return uses


def collect_xor_tree(
    graph: IrGraph, root: int, uses: List[int], pinned
) -> Tuple[List[int], List[int]]:
    """Expand the maximal XOR-accumulation tree rooted at ADD ``root``.

    Interior nodes are ADDs that are single-use and unobservable (not
    pinned as a graph input/output); everything else is a leaf.
    Returns ``(leaves, interior)`` with leaves in the tree's
    left-to-right order, so rewrites are deterministic.  The single
    definition of tree eligibility shared by the rotation scheduler and
    the tape compiler's kernel fuser — the scheduler rewrites gathers
    into exactly the shape the fuser then matches, so the two must
    never drift.
    """
    leaves: List[int] = []
    interior: List[int] = []
    stack = [(root, True)]
    while stack:
        nid, is_root = stack.pop()
        node = graph.node(nid)
        if node.op is IrOp.ADD and (
            is_root or (uses[nid] == 1 and nid not in pinned)
        ):
            if not is_root:
                interior.append(nid)
            # Reversed so the left argument pops first (pre-order).
            for a in reversed(node.args):
                stack.append((a, False))
            continue
        leaves.append(nid)
    return leaves, interior


def _collect_gather_tree(
    graph: IrGraph, root: int, uses: List[int], pinned: set
) -> Optional[Tuple[int, List[Tuple[int, Tuple[int, ...]]], List[int]]]:
    """Match one masked-gather combine tree rooted at ADD node ``root``.

    Returns ``(source, [(amount, mask_bits), ...], interior_ids)`` when
    the whole XOR tree under ``root`` consists of single-use
    ``CONST_MULT(rot(v, a), mask)`` leaves over one ciphertext source
    ``v`` (interior XORs single-use and unobservable), else ``None``.
    """
    leaves, interior = collect_xor_tree(graph, root, uses, pinned)
    if len(leaves) < 2:
        return None
    source = None
    terms: List[Tuple[int, Tuple[int, ...]]] = []
    for leaf in leaves:
        node = graph.node(leaf)
        if node.op is not IrOp.CONST_MULT or uses[leaf] != 1:
            return None
        value, const = node.args
        mask = graph.node(const)
        if mask.op is not IrOp.CONST_PT:
            return None
        rot = graph.node(value)
        if rot.op is IrOp.ROTATE:
            # The rotation must feed this gather exclusively, or the
            # rewrite would duplicate work another consumer still pays.
            if uses[value] != 1:
                return None
            src, amount = rot.args[0], rot.attr[0]
        else:
            src, amount = value, 0
        if not graph.node(src).is_cipher:
            return None
        if source is None:
            source = src
        elif source != src:
            return None
        terms.append((amount, mask.attr))
    return source, terms, interior


def schedule_rotations(graph: IrGraph) -> IrGraph:
    """Regroup masked-gather rotations around shared pivots (see module
    docstring).  Run CSE + DCE afterwards: the rewrite leaves the old
    rotations/masks dead and emits residual rotations per group that CSE
    merges across groups."""
    uses = _use_counts(graph)
    pinned = set(graph.outputs.values()) | set(graph.inputs.values())

    matched: Dict[int, Tuple[int, List[Tuple[int, Tuple[int, ...]]]]] = {}
    consumed: set = set()
    # Reverse order: a tree's root has the highest node id, so it is
    # visited before its interior XORs (which are then skipped).
    for node in reversed(graph.nodes):
        if node.op is not IrOp.ADD or node.node_id in consumed:
            continue
        hit = _collect_gather_tree(graph, node.node_id, uses, pinned)
        if hit is None:
            continue
        source, terms, interior = hit
        if len({a for a, _ in terms}) < 2:
            continue  # one shared amount: nothing to schedule
        matched[node.node_id] = (source, terms)
        consumed.update(interior)
    if not matched:
        return graph

    remap: Dict[int, int] = {}
    nodes: List[IrNode] = []

    def emit(op, args, attr, width, is_cipher) -> int:
        node_id = len(nodes)
        nodes.append(
            IrNode(node_id, op, tuple(args), tuple(attr), width, is_cipher)
        )
        return node_id

    def emit_xor_tree(items: List[int], width: int) -> int:
        def combine(a: int, b: int) -> int:
            if b < a:
                a, b = b, a  # canonical argument order (helps CSE)
            return emit(IrOp.ADD, (a, b), (), width, True)

        return fold_balanced(items, combine)

    residual_cache: Dict[Tuple[int, int], int] = {}
    for node in graph.nodes:
        nid = node.node_id
        hit = matched.get(nid)
        if hit is None:
            remap[nid] = emit(
                node.op,
                tuple(remap[a] for a in node.args),
                node.attr,
                node.width,
                node.is_cipher,
            )
            continue
        source, terms = hit
        width = node.width
        src = remap[source]
        pivot = min(a for a, _ in terms)
        parts: List[int] = []
        for amount, mask_bits in terms:
            residual = amount - pivot
            if residual == 0:
                value = src
            else:
                value = residual_cache.get((src, residual))
                if value is None:
                    value = emit(
                        IrOp.ROTATE, (src,), (residual,), width, True
                    )
                    residual_cache[(src, residual)] = value
            # rot(mask, -pivot): free at compile time for plaintext.
            rolled = np.roll(
                np.array(mask_bits, dtype=np.uint8), pivot
            )
            mask = emit(
                IrOp.CONST_PT,
                (),
                tuple(int(b) for b in rolled),
                width,
                False,
            )
            parts.append(
                emit(IrOp.CONST_MULT, (value, mask), (), width, True)
            )
        combined = emit_xor_tree(parts, width)
        if pivot:
            combined = emit(
                IrOp.ROTATE, (combined,), (pivot,), width, True
            )
        remap[nid] = combined
    return _rebuild(graph, remap, nodes)


def optimize(graph: IrGraph, max_iterations: int = 8) -> IrGraph:
    """Run fuse -> CSE -> DCE to a fixed point."""
    current = graph
    for _ in range(max_iterations):
        before = current.num_nodes
        current = dead_code_elimination(
            common_subexpression_elimination(fuse_rotations(current))
        )
        if current.num_nodes == before:
            break
    return current


# ---------------------------------------------------------------------------
# Analyses
# ---------------------------------------------------------------------------

#: How IR ops map to the tracker's primitive kinds for costing.  EXTEND
#: and TRUNCATE mirror the context's accounting: extension costs a
#: rotation, truncation is free.
_COST_KIND = {
    IrOp.ADD: OpKind.ADD,
    IrOp.CONST_ADD: OpKind.CONST_ADD,
    IrOp.MULTIPLY: OpKind.MULTIPLY,
    IrOp.CONST_MULT: OpKind.CONST_MULT,
    IrOp.ROTATE: OpKind.ROTATE,
    IrOp.EXTEND: OpKind.ROTATE,
}


def analyze_counts(graph: IrGraph) -> Dict[IrOp, int]:
    """Operation counts by kind (ciphertext operations only)."""
    counts: Dict[IrOp, int] = {}
    for node in graph.nodes:
        if not node.is_cipher:
            continue
        if node.op in (IrOp.INPUT_CT, IrOp.CONST_PT, IrOp.INPUT_PT,
                       IrOp.TRUNCATE):
            continue
        counts[node.op] = counts.get(node.op, 0) + 1
    return counts


def analyze_depth(graph: IrGraph) -> int:
    """Multiplicative depth of the graph."""
    depth = [0] * graph.num_nodes
    best = 0
    for node in graph.nodes:
        d = max((depth[a] for a in node.args), default=0)
        if node.op is IrOp.MULTIPLY:
            d += 1
        depth[node.node_id] = d
        best = max(best, d)
    return best


def cost_of_counts(counts: Dict[IrOp, int], cost_model: CostModel) -> float:
    """Simulated sequential ms of an op-count profile (see analyze_cost).

    Exposed separately so cached analyses (an
    :class:`~repro.ir.plan.InferencePlan` stores the counts of graphs it
    no longer holds) can be costed without the graph.
    """
    total = 0.0
    for op, count in counts.items():
        kind = _COST_KIND.get(op)
        if kind is not None:
            total += cost_model.cost_of(kind) * count
    return total


def analyze_cost(graph: IrGraph, cost_model: CostModel) -> float:
    """Simulated sequential milliseconds of the ciphertext operations."""
    return cost_of_counts(analyze_counts(graph), cost_model)
