"""Optimizer passes and analyses over IR graphs.

All passes are pure graph-to-graph functions; ``optimize`` runs the
standard pipeline (rotation fusion -> CSE -> DCE) to a fixed point.

* **fuse_rotations** — ``rot(rot(x, a), b)`` becomes ``rot(x, a+b mod w)``
  and zero rotations disappear (HElib would pay two key switches for the
  nested form);
* **common_subexpression_elimination** — nodes with identical
  ``(op, args, attr)`` merge; commutative ops were argument-ordered by
  the builder, so ``a XOR b`` and ``b XOR a`` share a key.  This is the
  pass that discovers COPSE's cross-level sharing: every level matrix
  extends the same rotated branch vectors, so the per-level extensions
  collapse to one set;
* **dead_code_elimination** — drops everything unreachable from outputs.

Analyses: ``analyze_counts`` (ops by kind, the Section 6 work measure),
``analyze_depth`` (multiplicative depth), ``analyze_cost`` (simulated ms
under a :class:`~repro.fhe.costmodel.CostModel`).
"""

from __future__ import annotations

from typing import Dict, List

from repro.fhe.costmodel import CostModel
from repro.fhe.tracker import OpKind
from repro.ir.nodes import IrGraph, IrNode, IrOp


def _rebuild(graph: IrGraph, remap: Dict[int, int], nodes: List[IrNode]) -> IrGraph:
    out = IrGraph(nodes=nodes)
    out.outputs = {name: remap[nid] for name, nid in graph.outputs.items()}
    out.inputs = {name: remap[nid] for name, nid in graph.inputs.items()}
    return out


def fuse_rotations(graph: IrGraph) -> IrGraph:
    """Collapse rotation chains and drop zero rotations."""
    remap: Dict[int, int] = {}
    nodes: List[IrNode] = []

    def emit(op, args, attr, width, is_cipher) -> int:
        node_id = len(nodes)
        nodes.append(IrNode(node_id, op, tuple(args), tuple(attr), width, is_cipher))
        return node_id

    for node in graph.nodes:
        args = tuple(remap[a] for a in node.args)
        if node.op is IrOp.ROTATE:
            amount = node.attr[0]
            target = args[0]
            # Walk through any rotation already emitted.
            while nodes[target].op is IrOp.ROTATE:
                amount += nodes[target].attr[0]
                target = nodes[target].args[0]
            amount %= nodes[target].width if nodes[target].width else 1
            if amount == 0:
                remap[node.node_id] = target
                continue
            remap[node.node_id] = emit(
                IrOp.ROTATE, (target,), (amount,), node.width, node.is_cipher
            )
            continue
        remap[node.node_id] = emit(
            node.op, args, node.attr, node.width, node.is_cipher
        )
    return _rebuild(graph, remap, nodes)


def common_subexpression_elimination(graph: IrGraph) -> IrGraph:
    """Merge semantically identical nodes (hash-consing)."""
    remap: Dict[int, int] = {}
    seen: Dict[tuple, int] = {}
    nodes: List[IrNode] = []
    for node in graph.nodes:
        args = tuple(remap[a] for a in node.args)
        key = (node.op, args, node.attr)
        # Distinct named inputs must stay distinct even though their key
        # includes the name (attr), so this is safe for inputs too.
        if key in seen:
            remap[node.node_id] = seen[key]
            continue
        node_id = len(nodes)
        nodes.append(
            IrNode(node_id, node.op, args, node.attr, node.width, node.is_cipher)
        )
        seen[key] = node_id
        remap[node.node_id] = node_id
    return _rebuild(graph, remap, nodes)


def dead_code_elimination(graph: IrGraph) -> IrGraph:
    """Drop nodes unreachable from the outputs (inputs are kept: they are
    part of the graph's interface even if unused)."""
    live = set(graph.outputs.values()) | set(graph.inputs.values())
    for node in reversed(graph.nodes):
        if node.node_id in live:
            live.update(node.args)
    remap: Dict[int, int] = {}
    nodes: List[IrNode] = []
    for node in graph.nodes:
        if node.node_id not in live:
            continue
        args = tuple(remap[a] for a in node.args)
        node_id = len(nodes)
        nodes.append(
            IrNode(node_id, node.op, args, node.attr, node.width, node.is_cipher)
        )
        remap[node.node_id] = node_id
    return _rebuild(graph, remap, nodes)


def optimize(graph: IrGraph, max_iterations: int = 8) -> IrGraph:
    """Run fuse -> CSE -> DCE to a fixed point."""
    current = graph
    for _ in range(max_iterations):
        before = current.num_nodes
        current = dead_code_elimination(
            common_subexpression_elimination(fuse_rotations(current))
        )
        if current.num_nodes == before:
            break
    return current


# ---------------------------------------------------------------------------
# Analyses
# ---------------------------------------------------------------------------

#: How IR ops map to the tracker's primitive kinds for costing.  EXTEND
#: and TRUNCATE mirror the context's accounting: extension costs a
#: rotation, truncation is free.
_COST_KIND = {
    IrOp.ADD: OpKind.ADD,
    IrOp.CONST_ADD: OpKind.CONST_ADD,
    IrOp.MULTIPLY: OpKind.MULTIPLY,
    IrOp.CONST_MULT: OpKind.CONST_MULT,
    IrOp.ROTATE: OpKind.ROTATE,
    IrOp.EXTEND: OpKind.ROTATE,
}


def analyze_counts(graph: IrGraph) -> Dict[IrOp, int]:
    """Operation counts by kind (ciphertext operations only)."""
    counts: Dict[IrOp, int] = {}
    for node in graph.nodes:
        if not node.is_cipher:
            continue
        if node.op in (IrOp.INPUT_CT, IrOp.CONST_PT, IrOp.INPUT_PT,
                       IrOp.TRUNCATE):
            continue
        counts[node.op] = counts.get(node.op, 0) + 1
    return counts


def analyze_depth(graph: IrGraph) -> int:
    """Multiplicative depth of the graph."""
    depth = [0] * graph.num_nodes
    best = 0
    for node in graph.nodes:
        d = max((depth[a] for a in node.args), default=0)
        if node.op is IrOp.MULTIPLY:
            d += 1
        depth[node.node_id] = d
        best = max(best, d)
    return best


def cost_of_counts(counts: Dict[IrOp, int], cost_model: CostModel) -> float:
    """Simulated sequential ms of an op-count profile (see analyze_cost).

    Exposed separately so cached analyses (an
    :class:`~repro.ir.plan.InferencePlan` stores the counts of graphs it
    no longer holds) can be costed without the graph.
    """
    total = 0.0
    for op, count in counts.items():
        kind = _COST_KIND.get(op)
        if kind is not None:
            total += cost_model.cost_of(kind) * count
    return total


def analyze_cost(graph: IrGraph, cost_model: CostModel) -> float:
    """Simulated sequential milliseconds of the ciphertext operations."""
    return cost_of_counts(analyze_counts(graph), cost_model)
