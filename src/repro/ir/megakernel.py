"""Megakernel execution: a compiled tape with zero per-instruction dispatch.

The compiled tape of :mod:`repro.ir.tape` already removed the per-node
graph walk, but its hot loop still pays one Python ``if/elif`` dispatch
per instruction — measured at roughly a microsecond each, a third of a
batched plan+vector evaluation.  A :class:`MegaKernel` compiles the tape
one level further, into a **single callable with no per-instruction
Python dispatch**:

* **one preallocated register plane** — values live as rows of a single
  ``(rows, lanes)`` ``uint8`` ndarray sized by a liveness pass: the
  instruction stream is rewritten into SSA values, scheduled by
  dependency level, and a linear-scan allocator reuses rows the moment
  their last reader has run, so ``rows`` tracks the peak number of
  simultaneously live values (plus a deduplicated constant pool and an
  all-ones row), not the instruction count.  The plane and the step
  scratch buffers persist across runs per thread — steady-state
  execution allocates nothing;
* **segment grammar** — SSA scheduling collapses the stream into one
  *segment* per dependency level, far fewer than the tape's hazard
  breaks allow (register reuse in the tape forces a new segment at every
  write-after-read).  Every instruction lowers to gather **terms**
  ``rot(src, amount) [& operand]``: adds contribute two bare terms,
  constant adds and multiplies read a constant-pool row, Halevi-Shoup
  products pair source and operand rows, and rotations / cyclic extends
  fold into precomputed fancy indices (``(lane + amount) % width``).  A
  level executes as a handful of *steps*: one small element-gather for
  the rotated terms, then per ``(width, terms-per-instruction)`` block
  one bulk row-gather, one AND against the stacked operand rows, and
  one ``bitwise_xor.reduce`` over the term axis — single-instruction
  levels compile to a single in-place ufunc call on row views;
* **bulk bookkeeping** — noise states, tracker op counts,
  multiplicative depth, and noise-*failure* points do not depend on
  slot data, only on input metadata (key partition, noise states, node
  ids, widths).  The kernel therefore runs the tape loop **once per
  input signature** on a scratch context of the same backend class,
  harvests the per-op counts, depth, and output noise/key/node-id
  metadata — or the exact exception the tape raised — and replays them
  on every subsequent run via one
  :meth:`~repro.fhe.tracker.CountingTracker.record_fused` call.  Bits,
  simulated cost, op counts, and failure points are byte-identical to
  the tape by construction: the bookkeeping *is* the tape's, recorded
  in bulk.  Key ids are canonicalized in the signature (serve mints
  fresh keys per batch; only the partition affects behavior), so the
  capture cost amortizes across a whole serve session.

The megakernel is an **optional backend capability**, discovered like
``fused_ops``: ``getattr(ctx, "megakernel_ops", None)``.  The vector
backend implements it (scratch-context minting, gated on its native
:class:`~repro.fhe.tracker.CountingTracker`); the reference and
plaintext backends leave it ``None`` and the kernel transparently falls
back to the tape loop — as it also does under a profiler (per-
instruction attribution needs per-instruction execution) and for the
rare tape shapes the gather grammar does not cover.  Either path runs
under the caller's phase, so engine-labelled serve stats hold on every
backend.

A kernel carries its tape's model fingerprint and performs the same
fail-closed bind check through
:func:`~repro.ir.plan.bind_model_query`; pickling (cluster
``ShippedModel`` shipment) ships only the tape — the compiled gather
planes, the bookkeeping cache, and the per-thread register planes
rebuild lazily on first worker-side execution, mirroring
:class:`~repro.ir.tape.FusedSpec`.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import RuntimeProtocolError
from repro.fhe.ciphertext import Ciphertext, PlainVector
from repro.ir.nodes import IrOp
from repro.ir.tape import (
    OP_ADD,
    OP_ANY,
    OP_CADD,
    OP_CMUL,
    OP_EXT,
    OP_FUSED,
    OP_MUL,
    OP_ROT,
    OP_TRUNC,
    CompiledTape,
)

__all__ = ["MegaKernel", "compile_megakernel"]


class _Book:
    """Cached bookkeeping of one tape run for one input signature.

    ``outputs`` maps output names to metadata tuples —
    ``("c", canonical_key, noise, node_id, length)`` for ciphertexts
    (the canonical key index resolves against the *current* bindings'
    key list at replay) or ``("p", length)`` for plain results.
    ``error`` caches the exact exception the tape raised, with the op
    counts recorded up to the failure point in ``counts``; replay lands
    the partial counts first and then re-raises, so the tracker state
    matches a live failure byte for byte.
    """

    __slots__ = ("counts", "depth", "outputs", "error")

    def __init__(self, counts, depth, outputs, error):
        self.counts = counts
        self.depth = depth
        self.outputs = outputs
        self.error = error


class _Term:
    """One gather term during compilation (pre-materialization).

    ``src`` and ``operand`` are SSA value ids; ``operand`` is ``None``
    for bare XOR terms.  ``amount`` is the left-rotation folded into
    the term's read.
    """

    __slots__ = ("src", "amount", "operand")

    def __init__(self, src, amount, operand=None):
        self.src = src
        self.amount = amount
        self.operand = operand


class _Instr:
    """One lowered instruction: ``value = XOR_t rot(src_t) [& op_t]``."""

    __slots__ = ("value", "width", "terms", "level")

    def __init__(self, value, width, terms, level):
        self.value = value
        self.width = width
        self.terms = terms
        self.level = level


class _GatherStep:
    """One element-gather step: rotated/tiled terms of one level+width.

    ``specs`` is a list of ``(src_value, amount, dest_value)`` — the
    materializer turns it into one flat-index matrix; execution is one
    ``np.take`` plus one row store.
    """

    __slots__ = ("width", "specs")

    def __init__(self, width, specs):
        self.width = width
        self.specs = specs

    @property
    def reads(self):
        return [s for s, _, _ in self.specs]

    @property
    def writes(self):
        return [d for _, _, d in self.specs]


class _BlockStep:
    """One row-gather block: same-level instructions of uniform
    ``(width, terms-per-instruction)`` shape."""

    __slots__ = ("width", "k", "instrs")

    def __init__(self, width, k, instrs):
        self.width = width
        self.k = k
        self.instrs = instrs

    @property
    def reads(self):
        out = []
        for instr in self.instrs:
            for term in instr.terms:
                out.append(term.src)
                if term.operand is not None:
                    out.append(term.operand)
        return out

    @property
    def writes(self):
        return [instr.value for instr in self.instrs]


class MegaKernel:
    """A :class:`~repro.ir.tape.CompiledTape` compiled past Python.

    Construction is cheap: the gather program builds lazily on first
    execution (and after unpickling), and the kernel exposes the tape's
    profile, fingerprint, and shape metadata unchanged, so baseline
    guards and cost estimates need no separate accounting.
    """

    def __init__(self, tape: CompiledTape):
        self.tape = tape
        self._lock = threading.Lock()
        self._local = threading.local()
        self._plan: Optional[_Plan] = None
        self._unsupported: Optional[str] = None
        self._input_names = sorted(tape.input_slots)
        self._input_set = frozenset(tape.input_slots)
        #: input-signature -> :class:`_Book`.  Plain dict: a racing
        #: duplicate capture is benign (identical value), a torn read is
        #: impossible (single assignment).
        self._book: Dict[Tuple, _Book] = {}
        #: Binding-layout cache: the input names of
        #: :func:`~repro.ir.plan.bind_model_query` depend only on the
        #: model/query *structure* (how many planes of each kind), not
        #: on the objects — and serve adopts the cached model into a
        #: fresh context every batch, so object identity is useless as
        #: a key.  The first bind records ``(structure, seats)``; later
        #: binds with the same structure seat the planes through the
        #: precomputed name map instead of re-formatting ~a hundred
        #: input names per batch.  The fail-closed fingerprint and
        #: encryption-shape checks still run on *every* bind.
        self._bound_layout = None

    # -- tape metadata passthrough (one source of truth) ----------------

    @property
    def profile(self):
        return self.tape.profile

    @property
    def peak_live(self) -> int:
        return self.tape.peak_live

    @property
    def num_slots(self) -> int:
        return self.tape.num_slots

    @property
    def num_instructions(self) -> int:
        return self.tape.num_instructions

    @property
    def rotations(self) -> int:
        return self.tape.rotations

    @property
    def input_widths(self) -> Dict[str, int]:
        return self.tape.input_widths

    @property
    def encrypted_model(self) -> bool:
        return self.tape.encrypted_model

    @property
    def model_fingerprint(self) -> Optional[str]:
        return self.tape.model_fingerprint

    @property
    def variant(self) -> str:
        return self.tape.variant

    @property
    def batched(self) -> bool:
        return self.tape.batched

    @property
    def batch_shape(self):
        return self.tape.batch_shape

    # -- compiled-plane metrics (build on demand) ------------------------

    def ensure_compiled(self) -> bool:
        """Build the gather program if needed; False on tape-loop fallback."""
        if self._plan is None and self._unsupported is None:
            with self._lock:
                if self._plan is None and self._unsupported is None:
                    try:
                        self._plan = _compile_plan(self.tape)
                    except _Unsupported as why:
                        self._unsupported = str(why)
        return self._plan is not None

    @property
    def supported(self) -> bool:
        return self.ensure_compiled()

    @property
    def num_rows(self) -> int:
        """Rows of the register plane (live values + constant pool)."""
        self.ensure_compiled()
        return self._plan.rows if self._plan else 0

    @property
    def data_rows(self) -> int:
        """Peak simultaneously-live values (the liveness allocator's
        high-water mark; ``num_rows`` minus the constant pool)."""
        self.ensure_compiled()
        return self._plan.data_rows if self._plan else 0

    @property
    def lanes(self) -> int:
        self.ensure_compiled()
        return self._plan.lanes if self._plan else 0

    @property
    def num_segments(self) -> int:
        """Dependency levels (each one hazard-free by construction)."""
        self.ensure_compiled()
        return self._plan.num_segments if self._plan else 0

    @property
    def num_blocks(self) -> int:
        """Execution steps (gathers + blocks) across all segments."""
        self.ensure_compiled()
        return len(self._plan.steps) if self._plan else 0

    def describe(self) -> str:
        if not self.ensure_compiled():
            return (
                f"megakernel[fallback: {self._unsupported}] over "
                f"{self.tape.describe()}"
            )
        return (
            f"megakernel: {self.num_instructions} instructions -> "
            f"{self.num_segments} segments ({self.num_blocks} steps) "
            f"over a {self.num_rows}x{self.lanes} register plane "
            f"({self.data_rows} live rows + constant pool), rotations "
            f"{self.rotations}, depth {self.profile.depth}"
        )

    # -- pickling: ship the tape, rebuild everything else lazily ---------

    def __getstate__(self):
        return self.tape

    def __setstate__(self, state):
        self.__init__(state)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(
        self,
        ctx,
        model,
        query,
        phase: Optional[str] = None,
        profiler=None,
    ) -> Ciphertext:
        """Execute against a runtime model bundle + encrypted query.

        Binding performs the tape's fail-closed fingerprint check; the
        phase defaults to the megakernel phase so serve stats attribute
        the work to this engine on every backend (including tape-loop
        fallbacks).
        """
        from repro.core.runtime import PHASE_MEGAKERNEL
        from repro.ir.plan import OUTPUT_LABELS

        if phase is None:
            phase = PHASE_MEGAKERNEL
        bindings = self._bindings_for(ctx, model, query)
        outputs = self.execute(ctx, bindings, phase=phase, profiler=profiler)
        result = outputs[OUTPUT_LABELS]
        if not isinstance(result, Ciphertext):  # pragma: no cover
            raise RuntimeProtocolError("megakernel result must be encrypted")
        return result

    def _bindings_for(self, ctx, model, query):
        """Bind with the full fail-closed checks, layout-cached.

        First contact goes through
        :func:`~repro.ir.plan.bind_model_query` — the single source of
        the binding rules and their exact error messages.  The *name
        layout* it produced (which input name seats which model/query
        plane) depends only on the bundle's structure — plane counts
        per kind — so it is cached against that structure and replayed
        without re-formatting ~a hundred input names per batch.  The
        fail-closed checks are **not** cached: every bind re-verifies
        the encryption shape and the model fingerprint with the same
        refusal messages, so an impostor bundle is rejected identically
        on the first batch and the millionth.
        """
        from repro.ir.plan import (
            FEATURE_PLANE,
            LEVEL_DIAG,
            LEVEL_MASK,
            NOT_ONE,
            RESHUFFLE_DIAG,
            THRESHOLD_PLANE,
            bind_model_query,
        )

        encrypted_model = self.encrypted_model
        planes = query.planes
        structure = None
        if model is not None:
            if encrypted_model:
                structure = (
                    len(planes),
                    len(model.threshold_planes),
                    len(model.reshuffle_diagonals),
                    tuple(len(level) for level in model.level_diagonals),
                    len(model.level_masks),
                )
            else:
                structure = (len(planes),)

        cached = self._bound_layout
        if cached is not None and cached[0] == structure:
            (_, feature_seats, model_seats, not_one_width) = cached
            if model.is_encrypted != encrypted_model:
                raise RuntimeProtocolError(
                    f"plan was lowered for an "
                    f"{'encrypted' if encrypted_model else 'plaintext'} "
                    f"model but received the opposite"
                )
            fingerprint = self.model_fingerprint
            if fingerprint is not None:
                model_fp = getattr(model, "fingerprint", None)
                if model_fp != fingerprint:
                    raise RuntimeProtocolError(
                        f"plan was lowered for model {fingerprint} "
                        f"but received model {model_fp}; lower a plan "
                        f"for this model (or register it, which does)"
                    )
            bindings = {}
            for name, i in feature_seats:
                bindings[name] = planes[i]
            if not_one_width:
                if query.public_key is None:
                    raise RuntimeProtocolError(
                        "the Aloufi SecComp variant needs the query's "
                        "public key to encrypt the all-ones helper"
                    )
                bindings[NOT_ONE] = ctx.encrypt(
                    [1] * not_one_width, query.public_key
                )
            if model_seats is not None:
                threshold_seats, reshuffle_seats, diag_seats, \
                    mask_seats = model_seats
                tp = model.threshold_planes
                for name, i in threshold_seats:
                    bindings[name] = tp[i]
                rd = model.reshuffle_diagonals
                for name, i in reshuffle_seats:
                    bindings[name] = rd[i]
                ld = model.level_diagonals
                for name, lv, i in diag_seats:
                    bindings[name] = ld[lv][i]
                lm = model.level_masks
                for name, lv in mask_seats:
                    bindings[name] = lm[lv]
            return bindings

        bindings = bind_model_query(
            ctx,
            self.input_widths,
            encrypted_model,
            self.model_fingerprint,
            model,
            query,
        )
        if structure is not None:
            widths = self.input_widths
            feature_seats = tuple(
                (FEATURE_PLANE.format(i=i), i)
                for i in range(len(planes))
                if FEATURE_PLANE.format(i=i) in widths
            )
            model_seats = None
            if encrypted_model:
                model_seats = (
                    tuple(
                        (THRESHOLD_PLANE.format(i=i), i)
                        for i in range(len(model.threshold_planes))
                        if THRESHOLD_PLANE.format(i=i) in widths
                    ),
                    tuple(
                        (RESHUFFLE_DIAG.format(i=i), i)
                        for i in range(len(model.reshuffle_diagonals))
                        if RESHUFFLE_DIAG.format(i=i) in widths
                    ),
                    tuple(
                        (LEVEL_DIAG.format(level=lv, i=i), lv, i)
                        for lv, level in enumerate(model.level_diagonals)
                        for i in range(len(level))
                        if LEVEL_DIAG.format(level=lv, i=i) in widths
                    ),
                    tuple(
                        (LEVEL_MASK.format(level=lv), lv)
                        for lv in range(len(model.level_masks))
                        if LEVEL_MASK.format(level=lv) in widths
                    ),
                )
            self._bound_layout = (
                structure,
                feature_seats,
                model_seats,
                widths.get(NOT_ONE, 0),
            )
        return bindings

    def execute(
        self,
        ctx,
        bindings,
        phase: Optional[str] = None,
        profiler=None,
    ):
        """Run with named input bindings (the tape executor API).

        Falls back to the tape loop when the backend lacks the
        ``megakernel_ops`` capability, when a profiler wants
        per-instruction attribution, or when the tape's shape escapes
        the gather grammar — identical bits and bookkeeping either way.
        """
        ops = getattr(ctx, "megakernel_ops", None)
        if profiler is not None or ops is None or not self.ensure_compiled():
            return self.tape.execute(
                ctx, bindings, phase=phase, profiler=profiler
            )

        if not bindings.keys() >= self._input_set:
            missing = self._input_set - bindings.keys()
            raise RuntimeProtocolError(
                f"unbound IR inputs: {sorted(missing)}"
            )

        signature, keys = self._signature(ctx, bindings)
        book = self._book.get(signature)
        if book is None:
            book = self._capture(ops, bindings, phase)
            self._book[signature] = book

        # Bookkeeping first, exactly as the tape would have produced it:
        # on a cached failure the partial counts land and the original
        # exception re-raises before any slot data moves, leaving the
        # identical tracker state a live noise overflow would.
        if phase is not None:
            with ctx.tracker.phase(phase):
                if book.counts:
                    ctx.tracker.record_fused(book.counts, book.depth)
        elif book.counts:
            ctx.tracker.record_fused(book.counts, book.depth)
        if book.error is not None:
            raise book.error

        plan = self._plan
        R, program = self._buffer(plan)
        self._bind(R, plan, bindings)
        for step in program:
            step()

        outputs = {}
        for name, ref in self.tape.output_refs.items():
            if not isinstance(ref, int):
                outputs[name] = ref
                continue
            row = plan.output_rows[name]
            meta = book.outputs[name]
            if meta[0] == "c":
                _, canon_key, noise, node_id, length = meta
                outputs[name] = Ciphertext._make(
                    R[row, :length].copy(), length,
                    keys[canon_key], noise, node_id,
                )
            else:
                outputs[name] = PlainVector(R[row, : meta[1]].copy())
        return outputs

    # -- per-run plumbing ------------------------------------------------

    def _signature(self, ctx, bindings):
        """(cache key, canonical key list) for the current bindings.

        The key covers everything the bookkeeping depends on — backend
        class, parameters, and per-input metadata — with key ids
        *canonicalized* to their first-appearance index: operations only
        ever compare keys for equality, so two binding sets with the
        same key partition produce identical counts, noise, and failure
        behavior even though serve mints fresh keys per batch.
        """
        canon: Dict[int, int] = {}
        keys: List[int] = []
        # One flat tuple: input order is fixed by ``_input_names`` and a
        # "c"/"p" marker leads each entry, so positions stay unambiguous
        # without hashing a hundred name strings and nested tuples.
        items: List = [type(ctx).__name__, ctx.params]
        extend = items.extend
        canon_get = canon.get
        for name in self._input_names:
            value = bindings[name]
            if isinstance(value, Ciphertext):
                key_id = value._key_id
                index = canon_get(key_id)
                if index is None:
                    index = canon[key_id] = len(keys)
                    keys.append(key_id)
                extend(
                    ("c", index, value._noise, value._node_id,
                     value._length)
                )
            else:
                extend(("p", value.length))
        return tuple(items), keys

    def _capture(self, ops, bindings, phase) -> _Book:
        """Run the tape once on a scratch context and harvest its books."""
        scratch = ops.scratch_context()
        tracker = scratch.tracker
        outputs = None
        error = None
        try:
            if phase is not None:
                with tracker.phase(phase):
                    outputs = self.tape._execute(scratch, bindings)
            else:
                outputs = self.tape._execute(scratch, bindings)
        except Exception as exc:
            error = exc
        counts = {
            kind: n for kind, n in tracker.total_counts().items() if n
        }
        depth = tracker.multiplicative_depth()
        _, keys = self._signature(scratch, bindings)
        canon = {key_id: index for index, key_id in enumerate(keys)}
        meta = {}
        if outputs is not None:
            for name, ref in self.tape.output_refs.items():
                if not isinstance(ref, int):
                    continue
                value = outputs[name]
                if isinstance(value, Ciphertext):
                    meta[name] = (
                        "c", canon[value._key_id], value._noise,
                        value._node_id, value._length,
                    )
                else:
                    meta[name] = ("p", value.length)
        return _Book(counts, depth, meta, error)

    def _buffer(self, plan):
        """Per-thread register plane + compiled step closures.

        Constant and ones rows are seated once — no step ever writes a
        constant-pool row, so they survive every run.  The closures bind
        this thread's plane and exact-size scratch buffers, so the
        steady-state loop is pure ufunc calls with no allocation.
        """
        state = getattr(self._local, "state", None)
        if state is None:
            R = np.zeros((plan.rows, plan.lanes), dtype=np.uint8)
            for row, arr in plan.const_seats:
                R[row, : arr.size] = arr
            if plan.ones_row is not None:
                R[plan.ones_row, :] = 1
            program = [_bind_step(R, spec) for spec in plan.steps]
            state = (R, program)
            self._local.state = state
        return state

    def _bind(self, R, plan, bindings) -> None:
        """Validate bindings with the tape's exact errors; seat the bits.

        When the allocator gave the inputs rows ``0..n-1`` at full lane
        width (``bind_contig``, the common batched-serve shape), all
        input slots land with a single ``np.concatenate`` into a flat
        view of the plane's top rows instead of a hundred row stores.
        """
        arrs = []
        append = arrs.append
        for name, row, width, is_cipher in plan.bind_specs:
            value = bindings[name]
            if is_cipher:
                if not isinstance(value, Ciphertext):
                    raise RuntimeProtocolError(
                        f"input {name!r} must be a ciphertext"
                    )
                length = value._length
            elif isinstance(value, PlainVector):
                length = value._slots.shape[0]
            else:
                raise RuntimeProtocolError(
                    f"input {name!r} must be a plaintext vector"
                )
            if length != width:
                raise RuntimeProtocolError(
                    f"input {name!r} has width {length}, "
                    f"declared {width}"
                )
            slots = value._slots
            append(slots if slots.shape[0] == width else slots[:width])
        if plan.bind_contig:
            try:
                np.concatenate(
                    arrs, out=R[: len(arrs)].reshape(-1)
                )
                return
            except (TypeError, ValueError):
                pass  # exotic dtype: fall back to per-row casts
        for spec, slots in zip(plan.bind_specs, arrs):
            R[spec[1], : spec[2]] = slots


def compile_megakernel(tape: CompiledTape) -> MegaKernel:
    """Compile a tape into a megakernel (the program builds lazily)."""
    return MegaKernel(tape)


# ---------------------------------------------------------------------------
# Compilation: tape -> SSA levels -> liveness rows -> gather/block steps
# ---------------------------------------------------------------------------


class _Unsupported(Exception):
    """Internal marker: this tape shape escapes the gather grammar.

    Raised only during plan compilation and never propagates — the
    kernel records the reason and falls back to the tape loop, which
    preserves the exact runtime behavior (including whatever error the
    tape itself raises for inconsistent widths).
    """


class _Plan:
    """The materialized program: row layout + executable step specs."""

    __slots__ = (
        "rows", "lanes", "steps", "const_seats", "ones_row",
        "input_rows", "output_rows", "num_segments", "data_rows",
        "bind_specs", "bind_contig",
    )

    def __init__(self, rows, lanes, steps, const_seats, ones_row,
                 input_rows, output_rows, num_segments, data_rows,
                 bind_specs, bind_contig):
        self.rows = rows
        self.lanes = lanes
        self.steps = steps
        self.const_seats = const_seats
        self.ones_row = ones_row
        self.input_rows = input_rows
        self.output_rows = output_rows
        self.num_segments = num_segments
        self.data_rows = data_rows
        #: ``(name, row, width, is_cipher)`` in allocation order.
        self.bind_specs = bind_specs
        #: True when inputs occupy rows ``0..n-1`` in order at full lane
        #: width, letting ``_bind`` seat them all with one concatenate.
        self.bind_contig = bind_contig


class _Value:
    """One SSA value: width, dependency level, and liveness extent."""

    __slots__ = ("width", "level", "row")

    def __init__(self, width, level):
        self.width = width
        self.level = level
        self.row = None


def _compile_plan(tape: CompiledTape) -> _Plan:
    """Lower the instruction stream into the level/liveness program."""
    values: List[_Value] = []
    const_pool: Dict[bytes, int] = {}
    const_arrays: List[np.ndarray] = []
    const_values: List[int] = []

    def new_value(width: int, level: int) -> int:
        values.append(_Value(width, level))
        return len(values) - 1

    def const_value(arr: np.ndarray) -> int:
        """SSA value of the pooled constant (deduplicated by bits)."""
        arr = np.ascontiguousarray(arr, dtype=np.uint8)
        key = arr.tobytes()
        v = const_pool.get(key)
        if v is None:
            if arr.size == 0:
                raise _Unsupported("zero-width constant")
            v = new_value(arr.size, 0)
            const_pool[key] = v
            const_arrays.append(arr)
            const_values.append(v)
        return v

    # SSA renaming: tape register slot -> current value id.
    slot_value: Dict[int, int] = {}
    input_values: Dict[str, int] = {}
    for name, slot in tape.input_slots.items():
        width = tape.input_widths[name]
        if width <= 0:
            raise _Unsupported("zero-width input")
        v = new_value(width, 0)
        slot_value[slot] = v
        input_values[name] = v

    def value_of(slot: int) -> int:
        v = slot_value.get(slot)
        if v is None:
            raise _Unsupported(f"read of unwritten slot {slot}")
        return v

    has_operand = [False]
    instrs: List[_Instr] = []

    def emit(dest_slot: int, width: int, terms: List[_Term]) -> None:
        if width <= 0:
            raise _Unsupported(f"zero-width result in slot {dest_slot}")
        level = 1 + max(
            max(
                values[t.src].level,
                values[t.operand].level if t.operand is not None else 0,
            )
            for t in terms
        )
        v = new_value(width, level)
        instrs.append(_Instr(v, width, terms, level))
        slot_value[dest_slot] = v

    def mul_term(src: int, operand: int, w: int) -> _Term:
        has_operand[0] = True
        return _Term(src, 0, operand=operand)

    for ins in tape.instructions:
        op, dest = ins[0], ins[1]
        if op == OP_ADD:
            a, b = value_of(ins[2]), value_of(ins[3])
            w = values[a].width
            if values[b].width != w:
                raise _Unsupported("ADD width mismatch")
            emit(dest, w, [_Term(a, 0), _Term(b, 0)])
        elif op == OP_CADD:
            a = value_of(ins[2])
            w = values[a].width
            arr = ins[3].to_array()
            if arr.size != w:
                raise _Unsupported("CADD width mismatch")
            emit(dest, w, [_Term(a, 0), _Term(const_value(arr), 0)])
        elif op == OP_MUL:
            a, b = value_of(ins[2]), value_of(ins[3])
            w = values[a].width
            if values[b].width != w:
                raise _Unsupported("MUL width mismatch")
            emit(dest, w, [mul_term(a, b, w)])
        elif op == OP_CMUL:
            a = value_of(ins[2])
            w = values[a].width
            arr = ins[3].to_array()
            if arr.size != w:
                raise _Unsupported("CMUL width mismatch")
            emit(dest, w, [mul_term(a, const_value(arr), w)])
        elif op == OP_ROT:
            a = value_of(ins[2])
            emit(dest, values[a].width, [_Term(a, ins[3])])
        elif op == OP_EXT:
            a = value_of(ins[2])
            length = ins[3]
            if length <= 0:
                raise _Unsupported("EXTEND to zero width")
            # the % source-width in the index build is the cyclic tiling
            emit(dest, length, [_Term(a, 0)])
        elif op == OP_TRUNC:
            a = value_of(ins[2])
            length = ins[3]
            if length <= 0 or length > values[a].width:
                raise _Unsupported("TRUNCATE outside the source width")
            emit(dest, length, [_Term(a, 0)])
        elif op == OP_FUSED:
            spec = ins[2]
            w = spec.width
            terms = []
            for amount, src, operand in spec.terms:
                a = value_of(src)
                if values[a].width != w:
                    raise _Unsupported("fused-term width mismatch")
                if operand is None:
                    terms.append(_Term(a, amount))
                elif isinstance(operand, int):
                    b = value_of(operand)
                    if values[b].width != w:
                        raise _Unsupported("fused-operand width mismatch")
                    terms.append(_Term(a, amount, operand=b))
                    has_operand[0] = True
                else:
                    arr = operand.to_array()
                    if arr.size != w:
                        raise _Unsupported("fused-mask width mismatch")
                    terms.append(mul_term(a, const_value(arr), w))
                    # masks apply after rotation; keep the amount
                    terms[-1].amount = amount
            emit(dest, w, terms)
        elif op == OP_ANY:
            width, terms = _lower_any(
                ins[2], ins[3], values, value_of, const_value, mul_term
            )
            emit(dest, width, terms)
        else:
            raise _Unsupported(f"unknown opcode {op}")

    output_values: Dict[str, int] = {}
    for name, ref in tape.output_refs.items():
        if isinstance(ref, int):
            output_values[name] = value_of(ref)

    ones_value = None
    if has_operand[0]:
        ones_value = new_value(1, 0)

    return _schedule(
        tape, values, instrs, const_arrays, const_values, ones_value,
        input_values, output_values,
    )


def _lower_any(ir_op, args, values, value_of, const_value, mul_term):
    """Lower one OP_ANY instruction (mixed plain/cipher) to terms.

    Args mirror :func:`repro.ir.tape._run_any`: register slots or
    inline :class:`PlainVector` constants, with the rotation amount
    appended for ROTATE.  Plain-plain products and plain rotations
    resolve at compile time into pooled constant rows.
    """

    def resolve(ref):
        return value_of(ref) if isinstance(ref, int) else None

    def resolved_width(ref, v):
        return values[v].width if v is not None else ref.length

    if ir_op in (IrOp.ADD, IrOp.CONST_ADD):
        a, b = args
        va, vb = resolve(a), resolve(b)
        w = resolved_width(a, va)
        if resolved_width(b, vb) != w:
            raise _Unsupported("mixed ADD width mismatch")
        terms = []
        for ref, v in ((a, va), (b, vb)):
            if v is None:
                v = const_value(ref.to_array())
            terms.append(_Term(v, 0))
        return w, terms
    if ir_op in (IrOp.MULTIPLY, IrOp.CONST_MULT):
        a, b = args
        va, vb = resolve(a), resolve(b)
        w = resolved_width(a, va)
        if resolved_width(b, vb) != w:
            raise _Unsupported("mixed MUL width mismatch")
        if va is None and vb is None:
            return w, [_Term(const_value(a.to_array() & b.to_array()), 0)]
        if va is None:
            va = const_value(a.to_array())
        if vb is None:
            vb = const_value(b.to_array())
        return w, [mul_term(va, vb, w)]
    if ir_op is IrOp.ROTATE:
        ref, amount = args[0], args[1]
        v = resolve(ref)
        if v is not None:
            return values[v].width, [_Term(v, amount)]
        row = const_value(np.roll(ref.to_array(), -amount))
        return ref.length, [_Term(row, 0)]
    raise _Unsupported(f"mixed op {ir_op!r}")


def _needs_gather(values, term: _Term, width: int) -> bool:
    """True when the term's read cannot be a plain row copy."""
    src_width = values[term.src].width
    return (term.amount % src_width != 0) or src_width < width


def _schedule(tape, values, instrs, const_arrays, const_values,
              ones_value, input_values, output_values) -> _Plan:
    """Level-schedule instructions, run liveness, materialize steps."""
    # -- group instructions by dependency level -------------------------
    by_level: Dict[int, List[_Instr]] = {}
    for instr in instrs:
        by_level.setdefault(instr.level, []).append(instr)

    # -- build abstract steps: per level, an element-gather for rotated /
    #    tiled terms (direct to the instruction's value when it is the
    #    whole instruction), then blocks grouped by (width, k).
    steps: List = []
    for level in sorted(by_level):
        gathers: Dict[int, List[Tuple[int, int, int]]] = {}
        blocks: Dict[Tuple[int, int], List[_Instr]] = {}
        for instr in by_level[level]:
            w = instr.width
            direct = (
                len(instr.terms) == 1
                and instr.terms[0].operand is None
                and _needs_gather(values, instr.terms[0], w)
            )
            if direct:
                term = instr.terms[0]
                gathers.setdefault(w, []).append(
                    (term.src, term.amount, instr.value)
                )
                continue
            for term in instr.terms:
                if _needs_gather(values, term, w):
                    scratch = len(values)
                    values.append(_Value(w, level))
                    gathers.setdefault(w, []).append(
                        (term.src, term.amount, scratch)
                    )
                    term.src = scratch
                    term.amount = 0
            blocks.setdefault((w, len(instr.terms)), []).append(instr)
        for w in sorted(gathers):
            steps.append(_GatherStep(w, gathers[w]))
        for (w, k) in sorted(blocks):
            steps.append(_BlockStep(w, k, blocks[(w, k)]))

    # -- liveness: last step reading each value -------------------------
    last_use = [None] * len(values)
    for s, step in enumerate(steps):
        for v in step.reads:
            last_use[v] = s
    permanent = set(const_values)
    if ones_value is not None:
        permanent.add(ones_value)
    permanent.update(output_values.values())

    # -- linear scan: rows recycle the step after their last read.
    #    Reads of step s complete before its writes, so a value last
    #    read at s can hand its row to a value written at s.
    free_at: Dict[int, List[int]] = {}
    for v, value in enumerate(values):
        if v in permanent:
            continue
        if last_use[v] is not None:
            free_at.setdefault(last_use[v], []).append(v)
    free_rows: List[int] = []
    next_row = [0]

    def alloc_row() -> int:
        if free_rows:
            return free_rows.pop()
        row = next_row[0]
        next_row[0] += 1
        return row

    for v in input_values.values():
        values[v].row = alloc_row()
    for s, step in enumerate(steps):
        freed = [values[v].row for v in free_at.get(s, ())]
        if isinstance(step, _GatherStep):
            # Element gathers may write a destination row view in the
            # same ``np.take`` that reads the plane, so their writes
            # must not reuse a row this step still reads; rows read
            # here free for the *next* step instead.
            for v in step.writes:
                values[v].row = alloc_row()
            free_rows.extend(freed)
        else:
            # Block reads are buffered (or exactly row-aligned for the
            # in-place single-instruction ufuncs), so a row last read
            # here can seat a value written here.
            free_rows.extend(freed)
            for v in step.writes:
                values[v].row = alloc_row()

    data_rows = next_row[0]
    # inputs never read (degenerate tapes) still need their seats kept.
    row = data_rows
    const_seats: List[Tuple[int, np.ndarray]] = []
    for v, arr in zip(const_values, const_arrays):
        values[v].row = row
        const_seats.append((row, arr))
        row += 1
    ones_row = None
    if ones_value is not None:
        ones_row = row
        values[ones_value].row = row
        row += 1
    rows = row

    lanes = max(value.width for value in values)

    # -- materialize executable step specs ------------------------------
    specs = []
    for step in steps:
        if isinstance(step, _GatherStep):
            w = step.width
            base = np.arange(w, dtype=np.intp)
            idx = np.stack([
                values[src].row * lanes
                + (base + amount) % values[src].width
                for src, amount, _ in step.specs
            ])
            dests = np.array(
                [values[d].row for _, _, d in step.specs], dtype=np.intp
            )
            specs.append(("gather", idx, dests, w))
        else:
            n, k = len(step.instrs), step.k
            s1 = np.array(
                [
                    values[t.src].row
                    for instr in step.instrs for t in instr.terms
                ],
                dtype=np.intp,
            )
            any_op = any(
                t.operand is not None
                for instr in step.instrs for t in instr.terms
            )
            s2 = None
            if any_op:
                s2 = np.array(
                    [
                        values[t.operand].row if t.operand is not None
                        else ones_row
                        for instr in step.instrs for t in instr.terms
                    ],
                    dtype=np.intp,
                )
            dests = np.array(
                [values[i.value].row for i in step.instrs], dtype=np.intp
            )
            specs.append(("block", s1, s2, n, k, dests))

    input_rows = {
        name: values[v].row for name, v in input_values.items()
    }
    output_rows = {
        name: values[v].row for name, v in output_values.items()
    }
    input_cipher = tape.input_cipher
    bind_specs = tuple(
        (name, values[v].row, values[v].width, input_cipher[name])
        for name, v in input_values.items()
    )
    bind_contig = bool(bind_specs) and all(
        spec[1] == i and spec[2] == lanes
        for i, spec in enumerate(bind_specs)
    )
    return _Plan(
        rows, lanes, specs, const_seats, ones_row, input_rows,
        output_rows, len(by_level), data_rows, bind_specs, bind_contig,
    )


def _bind_step(R: np.ndarray, spec):
    """Compile one step spec into a zero-arg closure over this thread's
    plane.

    Rows past a value's width hold don't-care bytes: element gathers
    index ``% source width`` and so never read them, row reads only
    ever feed instructions at most as wide as their source, and outputs
    slice ``[:length]`` — so every fast path below runs full-lane
    in-place ufuncs with no per-run slicing or allocation.
    """
    flat = R.reshape(-1)
    lanes = R.shape[1]
    tag = spec[0]
    take_flat = flat.take  # bound methods skip the np.take dispatch
    take_rows = R.take
    if tag == "gather":
        _, idx, dests, w = spec
        if len(dests) == 1:
            out = R[dests[0], :w]
            idx0 = idx[0]

            def step():
                take_flat(idx0, out=out)
        else:
            g = np.empty((len(dests), w), dtype=np.uint8)

            def step():
                take_flat(idx, out=g)
                R[dests, :w] = g
        return step

    _, s1, s2, n, k, dests = spec
    if n == 1 and k == 1:
        out = R[dests[0]]
        a = R[s1[0]]
        if s2 is None:
            def step():
                np.copyto(out, a)
        else:
            b = R[s2[0]]

            def step():
                np.bitwise_and(a, b, out=out)
        return step
    if n == 1 and k == 2 and s2 is None:
        out = R[dests[0]]
        a, b = R[s1[0]], R[s1[1]]

        def step():
            np.bitwise_xor(a, b, out=out)
        return step

    g1 = np.empty((n * k, lanes), dtype=np.uint8)
    g3 = g1.reshape(n, k, lanes)
    out = np.empty((n, lanes), dtype=np.uint8)
    if s2 is None:
        if k == 1:
            def step():
                take_rows(s1, axis=0, out=g1)
                R[dests] = g1
        else:
            def step():
                take_rows(s1, axis=0, out=g1)
                np.bitwise_xor.reduce(g3, axis=1, out=out)
                R[dests] = out
        return step
    g2 = np.empty((n * k, lanes), dtype=np.uint8)
    if k == 1:
        def step():
            take_rows(s1, axis=0, out=g1)
            take_rows(s2, axis=0, out=g2)
            np.bitwise_and(g1, g2, out=g1)
            R[dests] = g1
    else:
        def step():
            take_rows(s1, axis=0, out=g1)
            take_rows(s2, axis=0, out=g2)
            np.bitwise_and(g1, g2, out=g1)
            np.bitwise_xor.reduce(g3, axis=1, out=out)
            R[dests] = out
    return step
