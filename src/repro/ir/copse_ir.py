"""Staging a compiled COPSE model into one IR inference graph.

``build_inference_graph`` emits the whole of Algorithm 1 — SecComp,
reshuffle product, level products with masks, accumulation — as a single
graph.  The emission is deliberately *naive about scheduling* (each level
matrix rotates and extends the branch vector itself, as a direct
transliteration of the algorithm would); the optimizer then recovers and
surpasses the hand-written runtime's sharing:

* CSE unifies the per-level rotations of the branch vector (the runtime
  shares these by hand), and
* CSE also unifies the per-level *cyclic extensions* of those rotated
  vectors — which the hand-written runtime recomputes per level —
  saving ``(d - 1) * b`` rotations.

``ir_secure_inference`` runs the whole pipeline: build, optimize,
encrypt inputs, execute, decrypt; its results are bit-identical to
:func:`repro.core.runtime.secure_inference`.

:mod:`repro.ir.plan` builds on this emission: ``lower_inference`` wraps
the (optimized) graph and its binding spec into a cached
:class:`~repro.ir.plan.InferencePlan`, the unit the live servers execute
with ``engine="plan"`` — the input-name templates below are the shared
contract between the two modules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import CompileError, RuntimeProtocolError
from repro.core.compiler import CompiledModel
from repro.core.runtime import InferenceResult
from repro.core.seccomp import (
    SECCOMP_VARIANTS,
    VARIANT_ALOUFI,
    VARIANT_OPTIMIZED,
)
from repro.fhe.context import FheContext, Vector
from repro.fhe.params import EncryptionParams
from repro.fhe.simd import replicate, to_bitplanes
from repro.ir.builder import IrBuilder
from repro.ir.executor import execute
from repro.ir.nodes import IrGraph
from repro.ir.passes import optimize

#: Input-name templates shared by the graph builder and the binder.
FEATURE_PLANE = "feat_plane_{i}"
THRESHOLD_PLANE = "thresh_plane_{i}"
RESHUFFLE_DIAG = "reshuffle_diag_{i}"
LEVEL_DIAG = "level{level}_diag_{i}"
LEVEL_MASK = "level{level}_mask"
NOT_ONE = "not_one"
OUTPUT_LABELS = "labels"


def build_inference_graph(
    model: CompiledModel,
    encrypted_model: bool = True,
    variant: str = VARIANT_ALOUFI,
) -> IrGraph:
    """Emit Algorithm 1 for ``model`` as an (unoptimized) IR graph."""
    if variant not in SECCOMP_VARIANTS:
        raise CompileError(f"unknown SecComp variant {variant!r}")
    b = IrBuilder()
    p = model.precision
    q = model.quantized_branching
    branches_n = model.branching
    labels_n = model.num_labels
    d = model.max_depth

    x_planes = [b.input_ct(FEATURE_PLANE.format(i=i), q) for i in range(p)]

    def model_vector(name: str, bits) -> int:
        if encrypted_model:
            return b.input_ct(name, len(bits))
        return b.const(bits)

    y_planes = [
        model_vector(THRESHOLD_PLANE.format(i=i), model.threshold_planes[i])
        for i in range(p)
    ]
    not_one = None
    if variant == VARIANT_ALOUFI:
        not_one = b.input_ct(NOT_ONE, q)

    decisions = _emit_seccomp(b, x_planes, y_planes, variant, not_one)

    reshuffle_diags = [
        model_vector(RESHUFFLE_DIAG.format(i=i), model.reshuffle.diagonal(i))
        for i in range(q)
    ]
    branches = _emit_matvec(b, reshuffle_diags, branches_n, q, decisions)

    level_results: List[int] = []
    for level in range(d):
        matrix = model.level_matrices[level]
        diags = [
            model_vector(
                LEVEL_DIAG.format(level=level, i=i), matrix.diagonal(i)
            )
            for i in range(branches_n)
        ]
        product = _emit_matvec(b, diags, labels_n, branches_n, branches)
        mask = model_vector(
            LEVEL_MASK.format(level=level), model.level_masks[level]
        )
        level_results.append(b.xor(product, mask))

    b.output(OUTPUT_LABELS, b.and_all(level_results))
    return b.build()


def _emit_seccomp(
    b: IrBuilder,
    x_planes: Sequence[int],
    y_planes: Sequence[int],
    variant: str,
    not_one: Optional[int],
) -> int:
    p = len(x_planes)
    diffs = [b.xor(x_planes[i], y_planes[i]) for i in range(p)]
    eqs = [b.negate(diff) for diff in diffs]

    if variant == VARIANT_ALOUFI:
        assert not_one is not None
        not_xs = [b.xor(x_planes[i], not_one) for i in range(p)]
        lts = [b.and_(not_xs[i], y_planes[i]) for i in range(p)]
        prefixes = _uniform_scan(b, eqs, not_one)
        terms = [lts[0]] + [
            b.and_(lts[i], prefixes[i]) for i in range(1, p)
        ]
        return _or_tree(b, terms)

    lts = [
        b.xor(y_planes[i], b.and_(x_planes[i], y_planes[i]))
        for i in range(p)
    ]
    prefixes = _triangle_scan(b, eqs)
    terms = [lts[0]] + [b.and_(lts[i], prefixes[i]) for i in range(1, p)]
    return b.xor_all(terms)


def _uniform_scan(b: IrBuilder, eqs: Sequence[int], not_one: int) -> List[int]:
    p = len(eqs)
    scan = list(eqs)
    offset = 1
    while offset < p:
        scan = [
            b.and_(scan[i], scan[i - offset] if i >= offset else not_one)
            for i in range(p)
        ]
        offset *= 2
    return [scan[0]] + scan[: p - 1]


def _triangle_scan(b: IrBuilder, eqs: Sequence[int]) -> List[int]:
    p = len(eqs)
    scan = list(eqs)
    offset = 1
    while offset < p:
        nxt = list(scan)
        for i in range(offset, p):
            nxt[i] = b.and_(scan[i], scan[i - offset])
        scan = nxt
        offset *= 2
    return [scan[0]] + scan[: p - 1]


def _or_tree(b: IrBuilder, terms: Sequence[int]) -> int:
    layer = list(terms)
    while len(layer) > 1:
        nxt = []
        for i in range(0, len(layer) - 1, 2):
            x, y = layer[i], layer[i + 1]
            nxt.append(b.xor(b.xor(x, y), b.and_(x, y)))
        if len(layer) % 2 == 1:
            nxt.append(layer[-1])
        layer = nxt
    return layer[0]


def _emit_matvec(
    b: IrBuilder, diagonals: Sequence[int], rows: int, cols: int, vector: int
) -> int:
    products = []
    for i, diagonal in enumerate(diagonals):
        rotated = b.rotate(vector, i) if i else vector
        if rows > cols:
            rotated = b.extend(rotated, rows)
        elif rows < cols:
            rotated = b.truncate(rotated, rows)
        products.append(b.and_(diagonal, rotated))
    return b.xor_all(products)


# ---------------------------------------------------------------------------
# End-to-end IR inference
# ---------------------------------------------------------------------------


@dataclass
class IrInferenceOutcome:
    """Result of one IR-path secure inference."""

    result: InferenceResult
    graph: IrGraph
    context: FheContext

    @property
    def tracker(self):
        return self.context.tracker


def ir_secure_inference(
    compiled: CompiledModel,
    features: Sequence[int],
    optimize_graph: bool = True,
    encrypted_model: bool = True,
    variant: str = VARIANT_ALOUFI,
    params: Optional[EncryptionParams] = None,
    graph: Optional[IrGraph] = None,
) -> IrInferenceOutcome:
    """Secure inference through the IR pipeline.

    Pass a prebuilt ``graph`` to amortize building/optimizing across
    queries (the staging pattern: optimize once per model).
    """
    if params is None:
        params = EncryptionParams.paper_defaults()
    compiled.check_parameters(params)
    if graph is None:
        graph = build_inference_graph(compiled, encrypted_model, variant)
        if optimize_graph:
            graph = optimize(graph)

    ctx = FheContext(params)
    keys = ctx.keygen()

    limit = 1 << compiled.precision
    if len(features) != compiled.n_features:
        raise RuntimeProtocolError(
            f"model expects {compiled.n_features} features, "
            f"got {len(features)}"
        )
    for value in features:
        if not 0 <= int(value) < limit:
            raise RuntimeProtocolError(
                f"feature value {value} does not fit in "
                f"{compiled.precision} unsigned bits"
            )

    replicated = replicate(
        [int(v) for v in features], compiled.max_multiplicity
    )
    planes = to_bitplanes(replicated, compiled.precision)

    bindings: Dict[str, Vector] = {}
    with ctx.tracker.phase("data_encrypt"):
        for i in range(compiled.precision):
            bindings[FEATURE_PLANE.format(i=i)] = ctx.encrypt(
                planes[i], keys.public
            )
    if NOT_ONE in graph.inputs:
        bindings[NOT_ONE] = ctx.encrypt(
            [1] * compiled.quantized_branching, keys.public
        )
    if encrypted_model:
        with ctx.tracker.phase("model_encrypt"):
            for i in range(compiled.precision):
                bindings[THRESHOLD_PLANE.format(i=i)] = ctx.encrypt(
                    compiled.threshold_planes[i], keys.public
                )
            for i in range(compiled.quantized_branching):
                bindings[RESHUFFLE_DIAG.format(i=i)] = ctx.encrypt(
                    compiled.reshuffle.diagonal(i), keys.public
                )
            for level in range(compiled.max_depth):
                matrix = compiled.level_matrices[level]
                for i in range(compiled.branching):
                    bindings[LEVEL_DIAG.format(level=level, i=i)] = (
                        ctx.encrypt(matrix.diagonal(i), keys.public)
                    )
                bindings[LEVEL_MASK.format(level=level)] = ctx.encrypt(
                    compiled.level_masks[level], keys.public
                )

    # Inputs that the optimizer may have eliminated need no binding.
    bindings = {
        name: value
        for name, value in bindings.items()
        if name in graph.inputs
    }
    outputs = execute(graph, ctx, bindings, phase="ir_inference")
    result_ct = outputs[OUTPUT_LABELS]
    bits = ctx.decrypt_bits(result_ct, keys.secret)
    result = InferenceResult(
        bitvector=bits,
        codebook=list(compiled.codebook),
        label_names=list(compiled.label_names),
    )
    return IrInferenceOutcome(result=result, graph=graph, context=ctx)
