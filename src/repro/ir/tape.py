"""Compiled tapes: linearized inference plans with register reuse.

The plan engine (:mod:`repro.ir.plan`) executes an optimized
:class:`~repro.ir.nodes.IrGraph` by re-walking it per batch through the
interpreter of :mod:`repro.ir.executor`: one Python ``if/elif`` dispatch
per node, arguments resolved through a ``values`` list that keeps every
intermediate ciphertext alive until the run ends.  A
:class:`CompiledTape` compiles that hot structure exactly once:

* **linearization** — the graph becomes a flat instruction array with
  integer opcodes; per-batch execution is one tight loop, no graph in
  sight;
* **liveness analysis + register allocation** — every SSA value gets a
  *slot* whose lifetime ends at its last use, so slots are reused and
  intermediates become garbage the moment they are dead.  The peak
  number of simultaneously live ciphertexts is computed at compile time
  (:attr:`CompiledTape.peak_live`) and regression-tested;
* **rotation scheduling** — the tape pipeline runs
  :func:`~repro.ir.passes.schedule_rotations` (plus CSE/DCE) over the
  plan's graph, so the per-(level, diagonal) masked-gather rotations
  collapse into shared pivot/residual chains: strictly fewer rotations
  than the plan executes, at identical bits;
* **kernel fusion** — XOR-accumulation trees over masked/rotated
  products become single fused instructions (``rotate-mask-xor`` for
  one-source gathers, ``mask-mult-accumulate`` for Halevi-Shoup
  combines).  A backend exposing the optional ``fused_ops`` capability
  (the vector backend) executes each as one numpy pass; every other
  backend runs the recorded de-fused sequence, so bits, noise states,
  and tracker counts are byte-identical either way.

A tape carries the plan's :meth:`~repro.core.compiler.CompiledModel.
fingerprint` and performs the same fail-closed bind check: a cached tape
refuses to execute against any model it was not compiled for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import CompileError, RuntimeProtocolError
from repro.fhe.backend import FheBackend, fold_balanced
from repro.fhe.ciphertext import Ciphertext, PlainVector
from repro.fhe.context import Vector
from repro.fhe.tracker import OpKind
from repro.ir.executor import tile_plain_extend
from repro.ir.nodes import IrGraph, IrOp
from repro.ir.passes import (
    _use_counts,
    collect_xor_tree,
    optimize,
    schedule_rotations,
)

__all__ = [
    "CompiledTape",
    "FusedSpec",
    "OPCODE_NAMES",
    "compile_tape",
    "fold_balanced",
]

# Integer opcodes: dispatch in the execution loop is one int comparison
# chain, not an enum walk.
OP_ADD = 0       # dest = cipher ^ cipher
OP_CADD = 1      # dest = cipher ^ inline PlainVector
OP_MUL = 2       # dest = cipher & cipher
OP_CMUL = 3      # dest = cipher & inline PlainVector
OP_ROT = 4       # dest = rotate(cipher, amount)
OP_EXT = 5       # dest = cyclic_extend(value, length)
OP_TRUNC = 6     # dest = truncate(value, length)
OP_FUSED = 7     # dest = fused accumulation (see FusedSpec)
OP_ANY = 8       # mixed plain/cipher fallback (rare: INPUT_PT graphs)

#: Human-readable opcode names, indexed by opcode — the profiler's and
#: report generator's vocabulary.
OPCODE_NAMES = (
    "add", "const_add", "mul", "const_mul", "rotate",
    "extend", "truncate", "fused", "any",
)

#: Minimum product terms before an XOR tree is worth fusing (a two-term
#: tree is just one add; fusing it only adds dispatch overhead).
_MIN_FUSED_PRODUCTS = 2


# The canonical balanced fold is defined next to the fused-ops contract
# it underpins (repro.fhe.backend) and re-exported here for tape users.


class FusedSpec:
    """One fused accumulation: ``dest = XOR_k rot(src_k, a_k) [& op_k]``.

    ``terms`` is a tuple of ``(amount, src_slot, operand)`` where
    ``operand`` is ``None`` (bare value), a :class:`PlainVector`
    (plaintext mask — a *rotate-mask-xor* / *mask-mult-accumulate*
    term), or an ``int`` register slot (ciphertext operand — an
    encrypted-model Halevi-Shoup product term).  ``kind`` is ``"rmx"``
    when every term rotates the *same* source under plaintext masks
    (executable as a single gather over a precomputed index matrix) and
    ``"mmacc"`` otherwise.

    The semantics — also the de-fused fallback and the bookkeeping
    recipe every fused backend must reproduce — are: for each term in
    order, rotate (when ``amount != 0``), then multiply by the operand
    (when present); finally combine all term values with the balanced
    XOR fold of :func:`fold_balanced`.
    """

    __slots__ = (
        "kind", "width", "terms", "op_counts", "_idx", "_maskmat",
    )

    def __init__(self, terms: Tuple, width: int):
        self.terms = terms
        self.width = width
        rotations = sum(1 for a, _, _ in terms if a)
        const_mults = sum(
            1 for _, _, op in terms if isinstance(op, PlainVector)
        )
        multiplies = sum(1 for _, _, op in terms if isinstance(op, int))
        self.op_counts: Dict[OpKind, int] = {OpKind.ADD: len(terms) - 1}
        if rotations:
            self.op_counts[OpKind.ROTATE] = rotations
        if const_mults:
            self.op_counts[OpKind.CONST_MULT] = const_mults
        if multiplies:
            self.op_counts[OpKind.MULTIPLY] = multiplies
        single_source = len({src for _, src, _ in terms}) == 1
        plain_only = multiplies == 0
        self.kind = "rmx" if (single_source and plain_only) else "mmacc"
        self._idx = None
        self._maskmat = None

    def gather_arrays(self, length: int):
        """(index matrix, mask matrix) for the single-pass ``rmx`` kernel.

        Row ``k`` of the index matrix gathers ``rot(src, a_k)``; the mask
        matrix stacks the plaintext masks (all-ones rows for bare
        terms, or ``None`` when no term carries a mask).  Built once per
        tape and cached — the arrays depend only on the spec.
        """
        if self._idx is None:
            base = np.arange(length, dtype=np.intp)
            idx = np.stack(
                [(base + amount) % length for amount, _, _ in self.terms]
            )
            if any(isinstance(op, PlainVector) for _, _, op in self.terms):
                rows = []
                for _, _, op in self.terms:
                    if isinstance(op, PlainVector):
                        rows.append(op.to_array())
                    else:
                        rows.append(np.ones(length, dtype=np.uint8))
                self._maskmat = np.stack(rows)
            # Publish the index matrix last: tapes are shared across
            # serve worker threads, and a reader that sees ``_idx``
            # non-None must also see the finished mask matrix (a racing
            # duplicate build is benign; a half-published one is not).
            self._idx = idx
        return self._idx, self._maskmat

    # ``__slots__`` classes pickle their slot dict by default, which
    # would ship the lazily-built gather caches (dense index/mask
    # matrices) to every spawned serve worker.  Ship only the defining
    # fields; ``__init__`` recomputes kind/op_counts and the caches
    # rebuild lazily on first worker-side execution.
    def __getstate__(self):
        return (self.terms, self.width)

    def __setstate__(self, state):
        self.__init__(*state)


def _defused(ctx: FheBackend, spec: FusedSpec, regs: List) -> Ciphertext:
    """Execute a fused instruction as its primitive op sequence."""
    values = []
    for amount, src, operand in spec.terms:
        value = regs[src]
        if amount:
            value = ctx.rotate(value, amount)
        if operand is not None:
            if isinstance(operand, int):
                value = ctx.multiply(value, regs[operand])
            else:
                value = ctx.const_mult(value, operand)
        values.append(value)
    return fold_balanced(values, ctx.add)


# ---------------------------------------------------------------------------
# The compiled tape
# ---------------------------------------------------------------------------


@dataclass
class CompiledTape:
    """A linearized, register-allocated, fusion-compiled inference plan.

    ``instructions`` are ``(opcode, dest_slot, a, b, frees)`` tuples;
    ``frees`` lists the slots whose values die at that instruction (the
    executor drops the references, so register reuse is also memory
    reuse).  ``profile`` is the :class:`~repro.ir.plan.GraphProfile` of
    the rotation-scheduled graph the tape was compiled from — its
    ``rotations`` are the counts the regression baseline pins below the
    plan engine's.
    """

    instructions: List[Tuple]
    num_slots: int
    #: Peak number of simultaneously live ciphertext values (inputs
    #: included) at any point of the execution — the register allocator's
    #: reported, regression-tested memory metric.
    peak_live: int
    input_slots: Dict[str, int]
    input_widths: Dict[str, int]
    input_cipher: Dict[str, bool]
    #: name -> register slot (int) or baked plaintext constant.
    output_refs: Dict[str, Union[int, PlainVector]]
    profile: "GraphProfile"
    variant: str = ""
    encrypted_model: bool = True
    width: int = 0
    batch_shape: Optional[Tuple[int, int]] = None
    model_fingerprint: Optional[str] = None
    fused: bool = True

    @property
    def batched(self) -> bool:
        return self.batch_shape is not None

    @property
    def num_instructions(self) -> int:
        return len(self.instructions)

    @property
    def rotations(self) -> int:
        return self.profile.rotations

    def describe(self) -> str:
        shape = (
            f"batched {self.batch_shape[1]}x{self.batch_shape[0]}"
            if self.batched
            else "single-query"
        )
        return (
            f"tape[{shape}]: {self.num_instructions} instructions, "
            f"{self.num_slots} slots (peak live {self.peak_live}), "
            f"rotations {self.rotations}, depth {self.profile.depth}"
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(
        self,
        ctx,
        model,
        query,
        phase: Optional[str] = None,
        profiler=None,
    ) -> Ciphertext:
        """Execute against a runtime model bundle + encrypted query.

        Binding performs the same fail-closed fingerprint check as
        :meth:`~repro.ir.plan.InferencePlan.bindings_for`: a bundle that
        cannot prove it is the model this tape was compiled for is
        refused.  ``phase`` defaults to the tape phase.  ``profiler``
        (a :class:`~repro.obs.profiler.TapeProfiler`) opts into
        per-instruction attribution; ``None`` keeps the hot loop
        instrumentation-free.
        """
        from repro.core.runtime import PHASE_TAPE
        from repro.ir.plan import OUTPUT_LABELS, bind_model_query

        if phase is None:
            phase = PHASE_TAPE
        bindings = bind_model_query(
            ctx,
            self.input_widths,
            self.encrypted_model,
            self.model_fingerprint,
            model,
            query,
        )
        outputs = self.execute(ctx, bindings, phase=phase, profiler=profiler)
        result = outputs[OUTPUT_LABELS]
        if not isinstance(result, Ciphertext):  # pragma: no cover
            raise RuntimeProtocolError("tape result must be encrypted")
        return result

    def execute(
        self,
        ctx: FheBackend,
        bindings: Dict[str, Vector],
        phase: Optional[str] = None,
        profiler=None,
    ) -> Dict[str, Vector]:
        """Run the tape with named input bindings (the executor API).

        A ``profiler`` branches to a separate instrumented loop
        (:meth:`_execute_profiled`); the un-profiled :meth:`_execute`
        hot loop carries no callbacks or timestamps.
        """
        missing = set(self.input_slots) - set(bindings)
        if missing:
            raise RuntimeProtocolError(
                f"unbound IR inputs: {sorted(missing)}"
            )
        if profiler is not None:
            if phase is not None:
                with ctx.tracker.phase(phase):
                    return self._execute_profiled(ctx, bindings, profiler)
            return self._execute_profiled(ctx, bindings, profiler)
        if phase is not None:
            with ctx.tracker.phase(phase):
                return self._execute(ctx, bindings)
        return self._execute(ctx, bindings)

    def _bind_inputs(self, bindings) -> List:
        """Validate input bindings and seat them in a fresh register file."""
        regs: List[Optional[Vector]] = [None] * self.num_slots
        for name, slot in self.input_slots.items():
            value = bindings[name]
            if self.input_cipher[name]:
                if not isinstance(value, Ciphertext):
                    raise RuntimeProtocolError(
                        f"input {name!r} must be a ciphertext"
                    )
            elif not isinstance(value, PlainVector):
                raise RuntimeProtocolError(
                    f"input {name!r} must be a plaintext vector"
                )
            if value.length != self.input_widths[name]:
                raise RuntimeProtocolError(
                    f"input {name!r} has width {value.length}, "
                    f"declared {self.input_widths[name]}"
                )
            regs[slot] = value
        return regs

    def _execute(self, ctx: FheBackend, bindings) -> Dict[str, Vector]:
        regs = self._bind_inputs(bindings)
        fused = getattr(ctx, "fused_ops", None) if self.fused else None
        add = ctx.add
        const_add = ctx.const_add
        multiply = ctx.multiply
        const_mult = ctx.const_mult
        rotate = ctx.rotate
        for ins in self.instructions:
            op = ins[0]
            if op == OP_MUL:
                value = multiply(regs[ins[2]], regs[ins[3]])
            elif op == OP_CMUL:
                value = const_mult(regs[ins[2]], ins[3])
            elif op == OP_ADD:
                value = add(regs[ins[2]], regs[ins[3]])
            elif op == OP_CADD:
                value = const_add(regs[ins[2]], ins[3])
            elif op == OP_FUSED:
                spec = ins[2]
                if fused is not None:
                    value = fused.execute(spec, regs)
                else:
                    value = _defused(ctx, spec, regs)
            elif op == OP_ROT:
                value = rotate(regs[ins[2]], ins[3])
            elif op == OP_EXT:
                source = regs[ins[2]]
                if isinstance(source, Ciphertext):
                    value = ctx.cyclic_extend(source, ins[3])
                else:
                    value = PlainVector(
                        tile_plain_extend(
                            source.to_array(), ins[3],
                            f"tape register {ins[2]}",
                        )
                    )
            elif op == OP_TRUNC:
                source = regs[ins[2]]
                if isinstance(source, Ciphertext):
                    value = ctx.truncate(source, ins[3])
                else:
                    value = PlainVector(source.to_array()[: ins[3]])
            elif op == OP_ANY:
                value = _run_any(ctx, regs, ins[2], ins[3])
            else:  # pragma: no cover - opcode set is closed
                raise CompileError(f"unknown tape opcode {op}")
            regs[ins[1]] = value
            frees = ins[4]
            if frees:
                for slot in frees:
                    regs[slot] = None
        return {
            name: (regs[ref] if isinstance(ref, int) else ref)
            for name, ref in self.output_refs.items()
        }

    def _execute_profiled(
        self, ctx: FheBackend, bindings, profiler
    ) -> Dict[str, Vector]:
        """:meth:`_execute` with per-instruction attribution.

        A separate loop so the un-profiled path pays nothing: each
        instruction here is bracketed by a timer read and a tracker
        counts snapshot, and the delta plus the produced value's noise
        read-out go to the profiler.  Dispatch goes through the same
        opcode chain, so results are bit-identical to :meth:`_execute`.
        """
        regs = self._bind_inputs(bindings)
        fused = getattr(ctx, "fused_ops", None) if self.fused else None
        tracker = ctx.tracker
        timer = profiler.timer
        profiler.begin_run()
        for index, ins in enumerate(self.instructions):
            op = ins[0]
            before = tracker.counts_snapshot()
            t0 = timer()
            if op == OP_MUL:
                value = ctx.multiply(regs[ins[2]], regs[ins[3]])
            elif op == OP_CMUL:
                value = ctx.const_mult(regs[ins[2]], ins[3])
            elif op == OP_ADD:
                value = ctx.add(regs[ins[2]], regs[ins[3]])
            elif op == OP_CADD:
                value = ctx.const_add(regs[ins[2]], ins[3])
            elif op == OP_FUSED:
                spec = ins[2]
                if fused is not None:
                    value = fused.execute(spec, regs)
                else:
                    value = _defused(ctx, spec, regs)
            elif op == OP_ROT:
                value = ctx.rotate(regs[ins[2]], ins[3])
            elif op == OP_EXT:
                source = regs[ins[2]]
                if isinstance(source, Ciphertext):
                    value = ctx.cyclic_extend(source, ins[3])
                else:
                    value = PlainVector(
                        tile_plain_extend(
                            source.to_array(), ins[3],
                            f"tape register {ins[2]}",
                        )
                    )
            elif op == OP_TRUNC:
                source = regs[ins[2]]
                if isinstance(source, Ciphertext):
                    value = ctx.truncate(source, ins[3])
                else:
                    value = PlainVector(source.to_array()[: ins[3]])
            elif op == OP_ANY:
                value = _run_any(ctx, regs, ins[2], ins[3])
            else:  # pragma: no cover - opcode set is closed
                raise CompileError(f"unknown tape opcode {op}")
            wall_s = timer() - t0
            profiler.instruction(
                index, OPCODE_NAMES[op], wall_s, before,
                tracker.counts_snapshot(), value,
            )
            regs[ins[1]] = value
            frees = ins[4]
            if frees:
                for slot in frees:
                    regs[slot] = None
        return {
            name: (regs[ref] if isinstance(ref, int) else ref)
            for name, ref in self.output_refs.items()
        }


def _run_any(ctx: FheBackend, regs, ir_op: IrOp, args) -> Vector:
    """Mixed plain/cipher fallback, mirroring the graph executor."""

    def resolve(ref):
        return regs[ref] if isinstance(ref, int) else ref

    if ir_op in (IrOp.ADD, IrOp.CONST_ADD):
        return ctx.xor_any(resolve(args[0]), resolve(args[1]))
    if ir_op in (IrOp.MULTIPLY, IrOp.CONST_MULT):
        return ctx.and_any(resolve(args[0]), resolve(args[1]))
    if ir_op is IrOp.ROTATE:
        return ctx.rotate_any(resolve(args[0]), args[1])
    raise CompileError(f"unsupported mixed op {ir_op!r}")  # pragma: no cover


# ---------------------------------------------------------------------------
# Compilation: fusion discovery, linearization, register allocation
# ---------------------------------------------------------------------------


@dataclass
class _AbstractInstr:
    """A pre-regalloc instruction whose references are graph node ids."""

    opcode: int
    node_id: int                 # the graph node this defines
    refs: List[int] = field(default_factory=list)  # node-id operands
    attr: object = None          # amount/length/IrOp for generic
    terms: Optional[List[Tuple[int, int, object]]] = None  # fused


def _find_fusable_trees(graph: IrGraph, uses, pinned):
    """Match XOR-accumulation trees worth fusing.

    Returns ``(matched, folded)``: ``matched`` maps tree-root node id to
    its ordered term list ``(amount, src_node, operand)`` with operand
    ``None`` / const node id (marked plain) / cipher node id; ``folded``
    is the set of node ids absorbed into fused instructions (interior
    XORs, product leaves, single-use rotations).
    """
    matched: Dict[int, List[Tuple[int, int, object]]] = {}
    folded: set = set()

    def leaf_term(nid: int):
        """(amount, src, operand, absorbed_ids) for a product leaf, or
        None when the leaf must stay a bare materialized value."""
        node = graph.node(nid)
        if (
            node.op not in (IrOp.MULTIPLY, IrOp.CONST_MULT)
            or uses[nid] != 1
            or nid in pinned
            or not node.is_cipher
        ):
            return None
        absorbed = [nid]
        if node.op is IrOp.CONST_MULT:
            value, const = node.args
            if graph.node(const).op is not IrOp.CONST_PT:
                return None
            operand: object = ("const", const)
        else:
            a, b = node.args
            if not (graph.node(a).is_cipher and graph.node(b).is_cipher):
                return None
            # Prefer folding a single-use rotation operand into the term.
            value, operand = a, ("cipher", b)
            rot = graph.node(b)
            if (
                rot.op is IrOp.ROTATE
                and uses[b] == 1
                and b not in pinned
                and graph.node(rot.args[0]).is_cipher
                and not _foldable_rotate(a)
            ):
                value, operand = b, ("cipher", a)
        amount = 0
        if _foldable_rotate(value):
            rot = graph.node(value)
            absorbed.append(value)
            value, amount = rot.args[0], rot.attr[0]
        return amount, value, operand, absorbed

    def _foldable_rotate(nid: int) -> bool:
        node = graph.node(nid)
        return (
            node.op is IrOp.ROTATE
            and uses[nid] == 1
            and nid not in pinned
            and node.is_cipher
            and graph.node(node.args[0]).is_cipher
        )

    for root in reversed(graph.nodes):
        rid = root.node_id
        if root.op is not IrOp.ADD or rid in folded or not root.is_cipher:
            continue
        leaves, interior = collect_xor_tree(graph, rid, uses, pinned)
        terms: List[Tuple[int, int, object]] = []
        absorbed_all: List[int] = []
        products = 0
        ok = True
        for leaf in leaves:
            hit = leaf_term(leaf)
            if hit is None:
                node = graph.node(leaf)
                if not node.is_cipher:
                    ok = False  # plain leaves take the unfused path
                    break
                terms.append((0, leaf, None))
                continue
            amount, value, operand, absorbed = hit
            terms.append((amount, value, operand))
            absorbed_all.extend(absorbed)
            products += 1
        if not ok or products < _MIN_FUSED_PRODUCTS:
            continue
        matched[rid] = terms
        folded.update(interior)
        folded.update(absorbed_all)
    return matched, folded


def compile_tape(
    graph: IrGraph,
    *,
    fuse: bool = True,
    schedule: bool = True,
    variant: str = "",
    encrypted_model: bool = True,
    width: int = 0,
    batch_shape: Optional[Tuple[int, int]] = None,
    model_fingerprint: Optional[str] = None,
) -> CompiledTape:
    """Lower an (optimized) graph into a :class:`CompiledTape`.

    ``schedule`` runs the rotation scheduler (plus CSE/DCE) first;
    ``fuse`` emits fused accumulation instructions — disable it to get a
    tape whose every instruction is one primitive op (used by the parity
    tests; execution results are byte-identical either way).
    """
    from repro.ir.plan import GraphProfile

    if schedule:
        graph = optimize(schedule_rotations(graph))
    profile = GraphProfile.of(graph)

    uses = _use_counts(graph)
    pinned = set(graph.outputs.values()) | set(graph.inputs.values())

    if fuse:
        matched, folded = _find_fusable_trees(graph, uses, pinned)
    else:
        matched, folded = {}, set()

    # Dispositions: const nodes become inline PlainVectors, inputs bind
    # to slots at run start, folded nodes vanish into fused terms, and
    # everything else defines one instruction.
    consts: Dict[int, PlainVector] = {}
    abstract: List[_AbstractInstr] = []
    input_nodes: List[int] = []
    for node in graph.nodes:
        nid = node.node_id
        if node.op is IrOp.CONST_PT:
            consts[nid] = PlainVector(np.array(node.attr, dtype=np.uint8))
            continue
        if node.op in (IrOp.INPUT_CT, IrOp.INPUT_PT):
            input_nodes.append(nid)
            continue
        if nid in folded:
            continue
        if nid in matched:
            terms = []
            refs = []
            for amount, src, operand in matched[nid]:
                refs.append(src)
                if operand is None:
                    terms.append((amount, src, None))
                elif operand[0] == "const":
                    terms.append((amount, src, consts[operand[1]]))
                else:
                    refs.append(operand[1])
                    terms.append((amount, src, operand[1]))
            abstract.append(
                _AbstractInstr(OP_FUSED, nid, refs, node.width, terms)
            )
            continue
        abstract.append(_make_abstract(graph, node, consts))

    # Liveness: last instruction index referencing each node; outputs
    # live to the end.  Inputs occupy slots from position 0.
    end = len(abstract)
    last_use: Dict[int, int] = {}
    for i, ins in enumerate(abstract):
        for ref in ins.refs:
            last_use[ref] = i
    for nid in graph.outputs.values():
        if nid not in consts:
            last_use[nid] = end

    slot_of: Dict[int, int] = {}
    free: List[int] = []
    num_slots = 0
    live_cipher = 0
    peak_live = 0

    def alloc(nid: int) -> int:
        nonlocal num_slots
        slot = free.pop() if free else num_slots
        if slot == num_slots:
            num_slots += 1
        slot_of[nid] = slot
        return slot

    input_slots: Dict[str, int] = {}
    for nid in input_nodes:
        alloc(nid)
        if graph.node(nid).is_cipher:
            live_cipher += 1
    peak_live = live_cipher
    for name, nid in graph.inputs.items():
        input_slots[name] = slot_of[nid]

    instructions: List[Tuple] = []
    for i, ins in enumerate(abstract):
        node = graph.node(ins.node_id)
        # Resolve operand slots before releasing anything: operands
        # dying here free their slots for reuse from this instruction's
        # destination onward (reads happen before the write in the
        # executor, so dest may alias a dead operand).
        resolved = {ref: slot_of[ref] for ref in ins.refs}
        dying = [
            ref for ref in sorted(resolved)
            if last_use.get(ref) == i
        ]
        if node.is_cipher:
            live_cipher += 1
            if live_cipher > peak_live:
                peak_live = live_cipher
        frees: List[int] = []
        for ref in dying:
            slot = slot_of.pop(ref)
            free.append(slot)
            frees.append(slot)
            if graph.node(ref).is_cipher:
                live_cipher -= 1
        dest = alloc(ins.node_id)
        # A slot both freed and immediately reused as dest must not be
        # cleared after the instruction writes it.
        frees = tuple(s for s in frees if s != dest)
        instructions.append(
            _concretize(ins, dest, resolved, consts, frees)
        )

    output_refs: Dict[str, Union[int, PlainVector]] = {}
    for name, nid in graph.outputs.items():
        if nid in consts:
            output_refs[name] = consts[nid]
        else:
            output_refs[name] = slot_of[nid]

    return CompiledTape(
        instructions=instructions,
        num_slots=num_slots,
        peak_live=peak_live,
        input_slots=input_slots,
        input_widths={
            name: graph.node(nid).width
            for name, nid in graph.inputs.items()
        },
        input_cipher={
            name: graph.node(nid).op is IrOp.INPUT_CT
            for name, nid in graph.inputs.items()
        },
        output_refs=output_refs,
        profile=profile,
        variant=variant,
        encrypted_model=encrypted_model,
        width=width,
        batch_shape=batch_shape,
        model_fingerprint=model_fingerprint,
        fused=fuse,
    )


def _make_abstract(graph: IrGraph, node, consts) -> _AbstractInstr:
    """Map one unfused graph node to its abstract instruction."""
    nid = node.node_id
    args = node.args
    arg_nodes = [graph.node(a) for a in args]
    statically_cipher = all(
        n.is_cipher or n.op is IrOp.CONST_PT for n in arg_nodes
    )
    if node.op is IrOp.ADD and node.is_cipher and statically_cipher:
        return _AbstractInstr(OP_ADD, nid, list(args))
    if node.op is IrOp.MULTIPLY and node.is_cipher and statically_cipher:
        return _AbstractInstr(OP_MUL, nid, list(args))
    if node.op in (IrOp.CONST_ADD, IrOp.CONST_MULT) and node.is_cipher:
        value, const = args
        if graph.node(const).op is IrOp.CONST_PT and graph.node(value).is_cipher:
            opcode = OP_CADD if node.op is IrOp.CONST_ADD else OP_CMUL
            return _AbstractInstr(opcode, nid, [value], consts[const])
    if node.op is IrOp.ROTATE and node.is_cipher:
        return _AbstractInstr(OP_ROT, nid, [args[0]], node.attr[0])
    if node.op is IrOp.EXTEND:
        return _AbstractInstr(OP_EXT, nid, [args[0]], node.attr[0])
    if node.op is IrOp.TRUNCATE:
        return _AbstractInstr(OP_TRUNC, nid, [args[0]], node.attr[0])
    # Mixed plain/cipher arithmetic (INPUT_PT operands): generic path.
    if node.op in (
        IrOp.ADD, IrOp.CONST_ADD, IrOp.MULTIPLY, IrOp.CONST_MULT,
        IrOp.ROTATE,
    ):
        refs = [a for a in args if a not in consts]
        return _AbstractInstr(OP_ANY, nid, refs, node)
    raise CompileError(f"cannot compile IR op {node.op!r} to a tape")


def _concretize(ins: _AbstractInstr, dest, slot_of, consts, frees) -> Tuple:
    """Resolve an abstract instruction's node ids to register slots."""
    if ins.opcode == OP_FUSED:
        terms = tuple(
            (
                amount,
                slot_of[src],
                slot_of[operand] if isinstance(operand, int) else operand,
            )
            for amount, src, operand in ins.terms
        )
        return (OP_FUSED, dest, FusedSpec(terms, ins.attr), None, frees)
    if ins.opcode in (OP_ADD, OP_MUL):
        return (
            ins.opcode, dest, slot_of[ins.refs[0]], slot_of[ins.refs[1]],
            frees,
        )
    if ins.opcode in (OP_CADD, OP_CMUL, OP_ROT, OP_EXT, OP_TRUNC):
        return (ins.opcode, dest, slot_of[ins.refs[0]], ins.attr, frees)
    # OP_ANY: resolve each original argument to a slot or inline const.
    node = ins.attr
    resolved = []
    for a in node.args:
        if a in consts:
            resolved.append(consts[a])
        else:
            resolved.append(slot_of[a])
    if node.op is IrOp.ROTATE:
        resolved.append(node.attr[0])
    return (OP_ANY, dest, node.op, tuple(resolved), frees)
