"""Graph construction with context-like combinators.

The builder mirrors :class:`~repro.fhe.context.FheContext`'s vocabulary
(xor / and / rotate / extend / truncate / xor_all / and_all) but produces
IR nodes instead of executing.  Plaintext-only arithmetic is folded at
build time — a plaintext constant XOR a plaintext constant is just
another constant — so ADD/MULTIPLY nodes always involve a ciphertext.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import CompileError
from repro.fhe.ciphertext import coerce_bits
from repro.ir.nodes import IrGraph, IrOp


class IrBuilder:
    """Builds an :class:`IrGraph` through combinator calls."""

    def __init__(self) -> None:
        self.graph = IrGraph()

    # ------------------------------------------------------------------
    # Inputs and constants
    # ------------------------------------------------------------------

    def input_ct(self, name: str, width: int) -> int:
        node_id = self.graph.add(
            IrOp.INPUT_CT, (), attr=(name,), width=width, is_cipher=True
        )
        self.graph.mark_input(name, node_id)
        return node_id

    def input_pt(self, name: str, width: int) -> int:
        node_id = self.graph.add(
            IrOp.INPUT_PT, (), attr=(name,), width=width, is_cipher=False
        )
        self.graph.mark_input(name, node_id)
        return node_id

    def const(self, bits) -> int:
        arr = coerce_bits(bits)
        return self.graph.add(
            IrOp.CONST_PT,
            (),
            attr=tuple(int(b) for b in arr),
            width=arr.size,
            is_cipher=False,
        )

    def ones(self, width: int) -> int:
        return self.const(np.ones(width, dtype=np.uint8))

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------

    def _width(self, node_id: int) -> int:
        return self.graph.node(node_id).width

    def _check_widths(self, a: int, b: int) -> int:
        wa, wb = self._width(a), self._width(b)
        if wa != wb:
            raise CompileError(
                f"IR width mismatch: {wa} vs {wb} "
                f"(nodes {a} and {b})"
            )
        return wa

    def _const_bits(self, node_id: int):
        node = self.graph.node(node_id)
        if node.op is not IrOp.CONST_PT:
            return None
        return np.array(node.attr, dtype=np.uint8)

    def xor(self, a: int, b: int) -> int:
        width = self._check_widths(a, b)
        na, nb = self.graph.node(a), self.graph.node(b)
        ca, cb = self._const_bits(a), self._const_bits(b)
        if ca is not None and cb is not None:
            return self.const(np.bitwise_xor(ca, cb))
        if na.is_cipher and nb.is_cipher:
            return self.graph.add(IrOp.ADD, _ordered(a, b), width=width)
        if na.is_cipher:
            return self.graph.add(IrOp.CONST_ADD, (a, b), width=width)
        if nb.is_cipher:
            return self.graph.add(IrOp.CONST_ADD, (b, a), width=width)
        # plaintext inputs (not constants): still a plaintext value.
        return self.graph.add(
            IrOp.CONST_ADD, (a, b), width=width, is_cipher=False
        )

    def and_(self, a: int, b: int) -> int:
        width = self._check_widths(a, b)
        na, nb = self.graph.node(a), self.graph.node(b)
        ca, cb = self._const_bits(a), self._const_bits(b)
        if ca is not None and cb is not None:
            return self.const(np.bitwise_and(ca, cb))
        if na.is_cipher and nb.is_cipher:
            return self.graph.add(IrOp.MULTIPLY, _ordered(a, b), width=width)
        if na.is_cipher:
            return self.graph.add(IrOp.CONST_MULT, (a, b), width=width)
        if nb.is_cipher:
            return self.graph.add(IrOp.CONST_MULT, (b, a), width=width)
        return self.graph.add(
            IrOp.CONST_MULT, (a, b), width=width, is_cipher=False
        )

    def negate(self, a: int) -> int:
        return self.xor(a, self.ones(self._width(a)))

    def rotate(self, a: int, amount: int) -> int:
        width = self._width(a)
        amount %= width
        if amount == 0:
            return a
        node = self.graph.node(a)
        # Build-time fusion: rotating a rotation is one rotation.
        if node.op is IrOp.ROTATE:
            inner_amount = node.attr[0]
            return self.rotate(node.args[0], inner_amount + amount)
        ca = self._const_bits(a)
        if ca is not None:
            return self.const(np.roll(ca, -amount))
        return self.graph.add(
            IrOp.ROTATE, (a,), attr=(amount,), width=width,
            is_cipher=node.is_cipher,
        )

    def extend(self, a: int, length: int) -> int:
        width = self._width(a)
        if length == width:
            return a
        if length < width:
            raise CompileError(
                f"extend target {length} shorter than width {width}"
            )
        ca = self._const_bits(a)
        if ca is not None:
            reps = -(-length // width)
            return self.const(np.tile(ca, reps)[:length])
        node = self.graph.node(a)
        return self.graph.add(
            IrOp.EXTEND, (a,), attr=(length,), width=length,
            is_cipher=node.is_cipher,
        )

    def truncate(self, a: int, length: int) -> int:
        width = self._width(a)
        if length == width:
            return a
        if length > width:
            raise CompileError(
                f"truncate target {length} longer than width {width}"
            )
        ca = self._const_bits(a)
        if ca is not None:
            return self.const(ca[:length])
        node = self.graph.node(a)
        return self.graph.add(
            IrOp.TRUNCATE, (a,), attr=(length,), width=length,
            is_cipher=node.is_cipher,
        )

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------

    def xor_all(self, items: Sequence[int]) -> int:
        return self._reduce(items, self.xor)

    def and_all(self, items: Sequence[int]) -> int:
        return self._reduce(items, self.and_)

    def _reduce(self, items: Sequence[int], combine) -> int:
        if not items:
            raise CompileError("cannot reduce an empty list")
        layer: List[int] = list(items)
        while len(layer) > 1:
            nxt: List[int] = []
            for i in range(0, len(layer) - 1, 2):
                nxt.append(combine(layer[i], layer[i + 1]))
            if len(layer) % 2 == 1:
                nxt.append(layer[-1])
            layer = nxt
        return layer[0]

    # ------------------------------------------------------------------

    def output(self, name: str, node_id: int) -> None:
        self.graph.mark_output(name, node_id)

    def build(self) -> IrGraph:
        from repro.ir.nodes import validate_graph

        validate_graph(self.graph)
        return self.graph


def _ordered(a: int, b: int):
    """Canonical argument order for commutative ops (helps CSE)."""
    return (a, b) if a <= b else (b, a)
