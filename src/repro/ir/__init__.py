"""An encrypted-vector-arithmetic IR with an optimizer.

The paper's conclusion names this as the next step: "implementing
COPSE's primitives not in terms of low-level FHE libraries like HElib
but instead in terms of higher-level FHE-based intermediate languages,
like EVA, allowing for further tuning and optimization."

This subpackage is that layer, scaled to the simulator — and since the
plan-compiled execution path it is the layer the *live* inference
pipeline runs through: :mod:`repro.ir.plan` lowers a compiled model
(single-query or batched) into an :class:`~repro.ir.plan.InferencePlan`
that :class:`~repro.core.runtime.CopseServer` and the serve registry
execute with ``engine="plan"`` (the serve default):

* :mod:`repro.ir.nodes` — a small SSA graph over packed vectors: inputs
  (ciphertext or plaintext), constants, XOR/AND (with constant-operand
  forms), rotation, cyclic extension, truncation;
* :mod:`repro.ir.builder` — graph construction with the same combinator
  vocabulary as :class:`~repro.fhe.context.FheContext`, folding
  plaintext-only operations at build time;
* :mod:`repro.ir.passes` — the optimizer: rotation fusion, common
  subexpression elimination, dead-code elimination, plus op-count and
  multiplicative-depth analyses;
* :mod:`repro.ir.executor` — runs a graph against a context and input
  bindings (all costs land in the context's tracker as usual);
* :mod:`repro.ir.copse_ir` — stages a compiled COPSE model into one
  inference graph and runs optimized secure inference;
* :mod:`repro.ir.plan` — :func:`lower_inference` /
  :func:`lower_batched_inference` wrap the lowered-and-optimized graph,
  its input-binding spec, and raw-vs-optimized analyses into a cached,
  executable :class:`InferencePlan`;
* :mod:`repro.ir.tape` — :meth:`InferencePlan.compile_tape` lowers the
  optimized graph one tier further into a :class:`CompiledTape`: a flat
  instruction array with liveness-based register reuse, the
  baby-step/giant-step rotation schedule of
  :func:`~repro.ir.passes.schedule_rotations`, and fused kernels the
  vector backend executes as single numpy passes (``engine="tape"``,
  the serve default).

The headline win (measured in ``benchmarks/test_ablation_ir.py``): CSE
discovers that the cyclic extensions of the rotated branch vector are
identical across all ``d`` level matrices and shares them, saving
``(d-1) * b`` rotations beyond even the hand-scheduled runtime.
"""

from repro.ir.nodes import IrGraph, IrNode, IrOp
from repro.ir.builder import IrBuilder
from repro.ir.passes import (
    analyze_cost,
    analyze_counts,
    analyze_depth,
    common_subexpression_elimination,
    dead_code_elimination,
    fuse_rotations,
    optimize,
    schedule_rotations,
)
from repro.ir.executor import execute
from repro.ir.copse_ir import build_inference_graph, ir_secure_inference
from repro.ir.plan import (
    GraphProfile,
    InferencePlan,
    build_batched_inference_graph,
    lower_batched_inference,
    lower_inference,
)
from repro.ir.tape import CompiledTape, compile_tape

__all__ = [
    "IrOp",
    "IrNode",
    "IrGraph",
    "IrBuilder",
    "optimize",
    "fuse_rotations",
    "schedule_rotations",
    "common_subexpression_elimination",
    "dead_code_elimination",
    "analyze_cost",
    "analyze_counts",
    "analyze_depth",
    "execute",
    "build_inference_graph",
    "build_batched_inference_graph",
    "ir_secure_inference",
    "GraphProfile",
    "InferencePlan",
    "CompiledTape",
    "compile_tape",
    "lower_inference",
    "lower_batched_inference",
]
