"""Structural validation for decision forests.

The compiler front end calls :func:`validate_forest` before doing any
analysis, so malformed models fail with a actionable message instead of an
index error deep inside matrix construction.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ValidationError
from repro.forest.forest import DecisionForest
from repro.forest.node import Branch, Leaf


def validate_forest(
    forest: DecisionForest,
    precision: Optional[int] = None,
    max_depth_limit: int = 64,
) -> None:
    """Validate a forest's structure; raise ``ValidationError`` on problems.

    Checks feature/label index ranges, threshold domain (must fit in
    ``precision`` unsigned bits when a precision is given), and a sanity
    bound on depth (pathological chains blow up level-matrix sizes).
    """
    if forest.n_features <= 0:
        raise ValidationError("forest has no features")
    if forest.n_labels <= 0:
        raise ValidationError("forest has no labels")

    threshold_limit = (1 << precision) if precision is not None else None

    for t_index, tree in enumerate(forest.trees):
        if tree.depth > max_depth_limit:
            raise ValidationError(
                f"tree {t_index} has depth {tree.depth}, beyond the supported "
                f"limit of {max_depth_limit}"
            )
        for node in tree.preorder():
            if isinstance(node, Branch):
                if node.feature >= forest.n_features:
                    raise ValidationError(
                        f"tree {t_index}: branch uses feature {node.feature} "
                        f"but the forest has {forest.n_features} features"
                    )
                if threshold_limit is not None and node.threshold >= threshold_limit:
                    raise ValidationError(
                        f"tree {t_index}: threshold {node.threshold} does not "
                        f"fit in {precision} unsigned bits; retrain or "
                        f"increase the compiler precision"
                    )
            elif isinstance(node, Leaf):
                if node.label_index >= forest.n_labels:
                    raise ValidationError(
                        f"tree {t_index}: leaf uses label {node.label_index} "
                        f"but the forest has {forest.n_labels} labels"
                    )
            else:  # pragma: no cover - type system prevents this
                raise ValidationError(f"unknown node type {type(node)!r}")
