"""Decision-forest models: representation, training, generation, I/O.

This subpackage is the model substrate the COPSE compiler consumes:

* :mod:`repro.forest.node` / :mod:`repro.forest.tree` /
  :mod:`repro.forest.forest` — the in-memory model (branches compare a
  feature against an integer threshold; the *true* child is taken when
  ``feature < threshold``), with plaintext inference used as the
  correctness oracle for all secure evaluations;
* :mod:`repro.forest.serialize` — the paper's Section 5 text format;
* :mod:`repro.forest.train` — a from-scratch CART / random-forest trainer
  (standing in for scikit-learn, which the paper used);
* :mod:`repro.forest.synthetic` — random model generation, including the
  Table 6 microbenchmark suite;
* :mod:`repro.forest.datasets` — synthetic stand-ins for the mldata.io
  ``census_income`` and ``soccer_international_history`` datasets;
* :mod:`repro.forest.validate` — structural validation.
"""

from repro.forest.node import Branch, Leaf, Node
from repro.forest.tree import DecisionTree
from repro.forest.forest import DecisionForest
from repro.forest.serialize import dumps_forest, loads_forest
from repro.forest.train import CartTrainer, RandomForestTrainer
from repro.forest.synthetic import (
    MICROBENCHMARKS,
    MicrobenchmarkSpec,
    random_forest,
    random_tree,
)
from repro.forest.datasets import make_income_dataset, make_soccer_dataset
from repro.forest.validate import validate_forest

__all__ = [
    "Node",
    "Branch",
    "Leaf",
    "DecisionTree",
    "DecisionForest",
    "dumps_forest",
    "loads_forest",
    "CartTrainer",
    "RandomForestTrainer",
    "random_tree",
    "random_forest",
    "MicrobenchmarkSpec",
    "MICROBENCHMARKS",
    "make_income_dataset",
    "make_soccer_dataset",
    "validate_forest",
]
