"""Synthetic stand-ins for the paper's real-world datasets.

The paper trains its income5/15 and soccer5/15 models on two mldata.io
datasets (``census_income``, ``soccer_international_history``) that are not
redistributable and not reachable offline.  These generators produce
datasets with the same *shape*: the census stand-in has 14 mixed
categorical/continuous features and a binary target; the soccer stand-in
has 9 match-history features and a 3-way outcome.  Targets follow latent
rule structure (not pure noise) so CART learns trees of realistic size.

All features are emitted already quantized to unsigned ``precision``-bit
integers, the domain the secure pipeline computes over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import TrainingError

INCOME_FEATURE_NAMES: Tuple[str, ...] = (
    "age",
    "workclass",
    "education_num",
    "marital_status",
    "occupation",
    "relationship",
    "race",
    "sex",
    "capital_gain",
    "capital_loss",
    "hours_per_week",
    "native_region",
    "fnlwgt_bucket",
    "investment_flag",
)

INCOME_LABELS: Tuple[str, ...] = ("under_50k", "over_50k")

SOCCER_FEATURE_NAMES: Tuple[str, ...] = (
    "home_rank",
    "away_rank",
    "rank_gap",
    "home_recent_goals",
    "away_recent_goals",
    "home_win_streak",
    "away_win_streak",
    "neutral_venue",
    "tournament_stage",
)

SOCCER_LABELS: Tuple[str, ...] = ("home_win", "draw", "away_win")


@dataclass(frozen=True)
class Dataset:
    """A generated dataset: integer features, labels, and names."""

    features: np.ndarray
    labels: np.ndarray
    feature_names: Tuple[str, ...]
    label_names: Tuple[str, ...]

    @property
    def n_samples(self) -> int:
        return int(self.features.shape[0])

    @property
    def n_features(self) -> int:
        return int(self.features.shape[1])


def _quantize(column: np.ndarray, precision: int) -> np.ndarray:
    """Scale a real-valued column into the unsigned fixed-point domain."""
    lo = float(column.min())
    hi = float(column.max())
    top = (1 << precision) - 1
    if hi <= lo:
        return np.zeros(column.shape, dtype=np.int64)
    scaled = (column - lo) / (hi - lo) * top
    return np.clip(np.round(scaled), 0, top).astype(np.int64)


def make_income_dataset(
    n_samples: int = 2000,
    precision: int = 8,
    seed: Optional[int] = 7,
) -> Dataset:
    """Census-income stand-in: 14 features, binary >50k target."""
    if n_samples < 10:
        raise TrainingError(f"need at least 10 samples, got {n_samples}")
    rng = np.random.default_rng(seed)

    age = rng.normal(40, 13, n_samples).clip(17, 90)
    workclass = rng.integers(0, 8, n_samples).astype(float)
    education_num = rng.integers(1, 17, n_samples).astype(float)
    marital = rng.integers(0, 7, n_samples).astype(float)
    occupation = rng.integers(0, 14, n_samples).astype(float)
    relationship = rng.integers(0, 6, n_samples).astype(float)
    race = rng.integers(0, 5, n_samples).astype(float)
    sex = rng.integers(0, 2, n_samples).astype(float)
    capital_gain = rng.exponential(900, n_samples).clip(0, 20000)
    capital_loss = rng.exponential(90, n_samples).clip(0, 4000)
    hours = rng.normal(41, 11, n_samples).clip(1, 99)
    region = rng.integers(0, 10, n_samples).astype(float)
    fnlwgt = rng.integers(0, 20, n_samples).astype(float)
    invest = (capital_gain > 3000).astype(float)

    columns = [
        age, workclass, education_num, marital, occupation, relationship,
        race, sex, capital_gain, capital_loss, hours, region, fnlwgt, invest,
    ]
    X = np.stack([_quantize(c, precision) for c in columns], axis=1)

    # Latent income rule: education, hours, age, and capital activity push
    # the target over the threshold; interactions keep trees non-trivial.
    score = (
        0.45 * education_num
        + 0.10 * hours
        + 0.06 * age
        + 1.2 * invest
        + 0.0006 * capital_gain
        - 0.0005 * capital_loss
        + 0.55 * (marital == 2).astype(float)
        + 0.25 * np.where(occupation >= 10, 1.0, 0.0) * (education_num > 10)
        + rng.normal(0, 0.9, n_samples)
    )
    y = (score > np.quantile(score, 0.70)).astype(np.int64)
    return Dataset(X, y, INCOME_FEATURE_NAMES, INCOME_LABELS)


def make_soccer_dataset(
    n_samples: int = 2000,
    precision: int = 8,
    seed: Optional[int] = 11,
) -> Dataset:
    """International-soccer stand-in: 9 features, 3-way match outcome."""
    if n_samples < 10:
        raise TrainingError(f"need at least 10 samples, got {n_samples}")
    rng = np.random.default_rng(seed)

    home_rank = rng.integers(1, 120, n_samples).astype(float)
    away_rank = rng.integers(1, 120, n_samples).astype(float)
    rank_gap = away_rank - home_rank
    home_goals = rng.poisson(1.6, n_samples).astype(float).clip(0, 8)
    away_goals = rng.poisson(1.4, n_samples).astype(float).clip(0, 8)
    home_streak = rng.integers(0, 9, n_samples).astype(float)
    away_streak = rng.integers(0, 9, n_samples).astype(float)
    neutral = rng.integers(0, 2, n_samples).astype(float)
    stage = rng.integers(0, 5, n_samples).astype(float)

    columns = [
        home_rank, away_rank, rank_gap, home_goals, away_goals,
        home_streak, away_streak, neutral, stage,
    ]
    X = np.stack([_quantize(c, precision) for c in columns], axis=1)

    # Latent outcome: ranking gap plus form plus home advantage.
    advantage = (
        0.035 * rank_gap
        + 0.5 * (home_goals - away_goals)
        + 0.22 * (home_streak - away_streak)
        + np.where(neutral == 0, 0.45, 0.0)
        + rng.normal(0, 1.1, n_samples)
    )
    y = np.full(n_samples, 1, dtype=np.int64)  # draw
    y[advantage > 0.8] = 0  # home win
    y[advantage < -0.8] = 2  # away win
    return Dataset(X, y, SOCCER_FEATURE_NAMES, SOCCER_LABELS)


def dataset_by_name(name: str, **kwargs) -> Dataset:
    """Lookup helper used by the benchmark workloads."""
    if name == "income":
        return make_income_dataset(**kwargs)
    if name == "soccer":
        return make_soccer_dataset(**kwargs)
    raise TrainingError(f"unknown dataset {name!r}; known: income, soccer")


def list_datasets() -> List[str]:
    return ["income", "soccer"]
