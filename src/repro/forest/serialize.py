"""The paper's Section 5 serialized model format.

    The format consists of a line defining the label names as strings,
    followed by a line for each tree in the forest.  Each leaf node
    outputs the index of the label it corresponds to.  For every branch
    node, the serialized output contains the index of its feature, the
    threshold value it's compared to, and the serializations of its left
    and right subtrees respectively.

Concretely (the paper leaves token syntax open; we fix one):

* line 1 — ``labels: <name> <name> ...``
* line 2 — ``features: <count>`` (our addition: the arity cannot always be
  inferred when trailing features are unused)
* one line per tree — a prefix token stream where a branch is
  ``b <feature> <threshold> <true-subtree> <false-subtree>`` and a leaf is
  ``l <label-index>``.

Example — a single-branch tree over 2 features and 2 labels::

    labels: reject accept
    features: 2
    b 0 130 l 1 l 0

Round-tripping (``loads_forest(dumps_forest(f))``) preserves structure
exactly; the property tests verify this on random forests.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.errors import SerializationError
from repro.forest.forest import DecisionForest
from repro.forest.node import Branch, Leaf, Node
from repro.forest.tree import DecisionTree

_LABELS_PREFIX = "labels:"
_FEATURES_PREFIX = "features:"


def dumps_forest(forest: DecisionForest) -> str:
    """Serialize a forest to the text format."""
    lines = [
        f"{_LABELS_PREFIX} " + " ".join(forest.label_names),
        f"{_FEATURES_PREFIX} {forest.n_features}",
    ]
    for tree in forest.trees:
        lines.append(" ".join(_emit(tree.root)))
    return "\n".join(lines) + "\n"


def loads_forest(text: str) -> DecisionForest:
    """Parse the text format back into a :class:`DecisionForest`."""
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    if len(lines) < 3:
        raise SerializationError(
            "expected a labels line, a features line, and at least one tree"
        )
    labels = _parse_labels(lines[0])
    n_features = _parse_features(lines[1])
    trees = [DecisionTree(root=_parse_tree(line)) for line in lines[2:]]
    return DecisionForest(trees=trees, label_names=labels, n_features=n_features)


# ---------------------------------------------------------------------------
# Emission
# ---------------------------------------------------------------------------


def _emit(node: Node) -> Iterator[str]:
    if isinstance(node, Leaf):
        yield "l"
        yield str(node.label_index)
    else:
        yield "b"
        yield str(node.feature)
        yield str(node.threshold)
        yield from _emit(node.true_child)
        yield from _emit(node.false_child)


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


def _parse_labels(line: str) -> List[str]:
    if not line.startswith(_LABELS_PREFIX):
        raise SerializationError(
            f"first line must start with {_LABELS_PREFIX!r}, got {line!r}"
        )
    names = line[len(_LABELS_PREFIX):].split()
    if not names:
        raise SerializationError("the labels line names no labels")
    return names


def _parse_features(line: str) -> int:
    if not line.startswith(_FEATURES_PREFIX):
        raise SerializationError(
            f"second line must start with {_FEATURES_PREFIX!r}, got {line!r}"
        )
    body = line[len(_FEATURES_PREFIX):].strip()
    try:
        count = int(body)
    except ValueError as exc:
        raise SerializationError(f"feature count {body!r} is not an integer") from exc
    if count <= 0:
        raise SerializationError(f"feature count must be positive, got {count}")
    return count


def _parse_tree(line: str) -> Node:
    tokens = line.split()
    node, rest = _parse_node(tokens, 0)
    if rest != len(tokens):
        raise SerializationError(
            f"trailing tokens after tree: {' '.join(tokens[rest:])!r}"
        )
    return node


def _parse_node(tokens: List[str], pos: int) -> Tuple[Node, int]:
    if pos >= len(tokens):
        raise SerializationError("unexpected end of tree serialization")
    tag = tokens[pos]
    if tag == "l":
        label = _parse_int(tokens, pos + 1, "label index")
        return Leaf(label_index=label), pos + 2
    if tag == "b":
        feature = _parse_int(tokens, pos + 1, "feature index")
        threshold = _parse_int(tokens, pos + 2, "threshold")
        true_child, pos2 = _parse_node(tokens, pos + 3)
        false_child, pos3 = _parse_node(tokens, pos2)
        return (
            Branch(
                feature=feature,
                threshold=threshold,
                true_child=true_child,
                false_child=false_child,
            ),
            pos3,
        )
    raise SerializationError(f"unknown node tag {tag!r} at token {pos}")


def _parse_int(tokens: List[str], pos: int, what: str) -> int:
    if pos >= len(tokens):
        raise SerializationError(f"missing {what} at end of tree serialization")
    try:
        return int(tokens[pos])
    except ValueError as exc:
        raise SerializationError(f"{what} {tokens[pos]!r} is not an integer") from exc
