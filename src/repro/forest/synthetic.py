"""Random decision-forest generation and the Table 6 microbenchmark suite.

The paper evaluates on eight synthetic microbenchmarks that vary maximum
depth, branch count, and threshold precision (Table 6); every one has two
features and three distinct labels, and the ``width`` names encode the
per-tree branch counts (width78 = trees with 7 and 8 branches).

:func:`random_tree` grows a tree with an *exact* branch count, a depth
bound, and optionally an exact depth — the generator used both by the
microbenchmark suite and the property-based tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.forest.forest import DecisionForest
from repro.forest.node import Branch, Leaf, Node
from repro.forest.tree import DecisionTree


def _subtree_capacity(depth: int) -> int:
    """Maximum branch count of a tree with at most ``depth`` levels."""
    if depth >= 62:
        return 2**62  # effectively unbounded; avoids overflow
    return (1 << depth) - 1


def random_tree(
    rng: np.random.Generator,
    n_branches: int,
    max_depth: int,
    n_features: int,
    n_labels: int,
    precision: int,
    exact_depth: Optional[int] = None,
) -> DecisionTree:
    """Grow a random tree with exactly ``n_branches`` branch nodes.

    ``exact_depth`` forces the longest root-to-leaf path to contain exactly
    that many branches (used by the depth4/5/6 microbenchmarks).
    """
    if n_branches < 1:
        raise ValidationError("a tree needs at least one branch")
    if n_branches > _subtree_capacity(max_depth):
        raise ValidationError(
            f"{n_branches} branches cannot fit within depth {max_depth}"
        )
    must = exact_depth if exact_depth is not None else 0
    if must > max_depth:
        raise ValidationError(
            f"exact depth {must} exceeds the depth bound {max_depth}"
        )
    if must > n_branches:
        raise ValidationError(
            f"a depth-{must} path needs at least {must} branches, "
            f"only {n_branches} available"
        )

    max_threshold = (1 << precision) - 1

    def grow(n: int, budget: int, need: int) -> Node:
        if n == 0:
            return Leaf(label_index=int(rng.integers(0, n_labels)))
        child_cap = _subtree_capacity(budget - 1)
        remaining = n - 1
        lo = max(0, remaining - child_cap)
        hi = min(child_cap, remaining)
        need_child = max(0, need - 1)
        deep_on_true = bool(rng.integers(0, 2))
        if need_child > 0:
            if deep_on_true:
                lo = max(lo, need_child)
            else:
                hi = min(hi, remaining - need_child)
        if lo > hi:
            # The depth requirement conflicts with the random side choice;
            # flip the deep side (always feasible given the entry checks).
            deep_on_true = not deep_on_true
            lo = max(0, remaining - child_cap)
            hi = min(child_cap, remaining)
            if deep_on_true:
                lo = max(lo, need_child)
            else:
                hi = min(hi, remaining - need_child)
        true_count = int(rng.integers(lo, hi + 1))
        false_count = remaining - true_count
        return Branch(
            feature=int(rng.integers(0, n_features)),
            threshold=int(rng.integers(1, max_threshold + 1)),
            true_child=grow(
                true_count, budget - 1, need_child if deep_on_true else 0
            ),
            false_child=grow(
                false_count, budget - 1, 0 if deep_on_true else need_child
            ),
        )

    tree = DecisionTree(root=grow(n_branches, max_depth, must))
    if exact_depth is not None and tree.depth != exact_depth:
        raise ValidationError(
            f"generator bug: requested depth {exact_depth}, got {tree.depth}"
        )
    return tree


def random_forest(
    rng: np.random.Generator,
    branches_per_tree: Sequence[int],
    max_depth: int,
    n_features: int = 2,
    n_labels: int = 3,
    precision: int = 8,
    force_max_depth: bool = True,
) -> DecisionForest:
    """Generate a random forest with the given per-tree branch counts.

    When ``force_max_depth`` is set, the deepest feasible tree is pinned to
    exactly ``max_depth`` so the forest statistic ``d`` is deterministic.
    """
    if not branches_per_tree:
        raise ValidationError("at least one tree is required")
    trees: List[DecisionTree] = []
    # Pin the first tree that can reach max_depth to exactly max_depth.
    pinned = False
    for count in branches_per_tree:
        exact = None
        if force_max_depth and not pinned and count >= max_depth:
            exact = max_depth
            pinned = True
        trees.append(
            random_tree(
                rng,
                n_branches=count,
                max_depth=max_depth,
                n_features=n_features,
                n_labels=n_labels,
                precision=precision,
                exact_depth=exact,
            )
        )
    if force_max_depth and not pinned:
        raise ValidationError(
            f"no tree has enough branches to reach depth {max_depth}"
        )
    labels = [f"L{i}" for i in range(n_labels)]
    return DecisionForest(trees=trees, label_names=labels, n_features=n_features)


@dataclass(frozen=True)
class MicrobenchmarkSpec:
    """One row of Table 6."""

    name: str
    max_depth: int
    precision: int
    tree_branches: Tuple[int, ...]
    n_features: int = 2
    n_labels: int = 3
    seed: int = 0

    @property
    def n_trees(self) -> int:
        return len(self.tree_branches)

    @property
    def total_branches(self) -> int:
        """The Table 6 "# q of branches" column (total branch count)."""
        return sum(self.tree_branches)

    def build(self) -> DecisionForest:
        """Deterministically generate this microbenchmark's forest."""
        rng = np.random.default_rng(self.seed)
        return random_forest(
            rng,
            branches_per_tree=self.tree_branches,
            max_depth=self.max_depth,
            n_features=self.n_features,
            n_labels=self.n_labels,
            precision=self.precision,
        )


def _seed_from_name(name: str) -> int:
    return sum(ord(c) * (i + 1) for i, c in enumerate(name))


#: Table 6 — the eight microbenchmark models.  Trees per forest and total
#: branch counts match the table; per-tree branch splits follow the width
#: naming convention (width78 = 7- and 8-branch trees).
MICROBENCHMARKS: Tuple[MicrobenchmarkSpec, ...] = (
    MicrobenchmarkSpec("depth4", 4, 8, (7, 8), seed=_seed_from_name("depth4")),
    MicrobenchmarkSpec("depth5", 5, 8, (7, 8), seed=_seed_from_name("depth5")),
    MicrobenchmarkSpec("depth6", 6, 8, (7, 8), seed=_seed_from_name("depth6")),
    MicrobenchmarkSpec("width55", 5, 8, (5, 5), seed=_seed_from_name("width55")),
    MicrobenchmarkSpec("width78", 5, 8, (7, 8), seed=_seed_from_name("width78")),
    MicrobenchmarkSpec(
        "width677", 5, 8, (6, 7, 7), seed=_seed_from_name("width677")
    ),
    MicrobenchmarkSpec("prec8", 5, 8, (7, 8), seed=_seed_from_name("prec8")),
    MicrobenchmarkSpec("prec16", 5, 16, (7, 8), seed=_seed_from_name("prec16")),
)


def microbenchmark(name: str) -> MicrobenchmarkSpec:
    """Look up a Table 6 microbenchmark by name."""
    for spec in MICROBENCHMARKS:
        if spec.name == name:
            return spec
    known = ", ".join(s.name for s in MICROBENCHMARKS)
    raise ValidationError(f"unknown microbenchmark {name!r}; known: {known}")
