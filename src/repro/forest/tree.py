"""A single decision tree: traversal, inference, structural queries.

Inference follows Section 2.1: starting at the root, each branch compares
one feature against its threshold and descends into the *true* child when
``feature < threshold`` holds, until a leaf assigns the class label.

Structural queries implement the definitions of Section 4.1.1:

* *preorder enumeration* of branches and of leaves (the canonical order the
  reshuffling matrix restores and the label bitvector uses);
* *level* of a node — branches on the longest node-to-leaf path, inclusive;
* *downstream set* of a branch — the leaf positions reachable from it;
* *width* — the size of the downstream set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.errors import ValidationError
from repro.forest.node import Branch, Leaf, Node


@dataclass
class DecisionTree:
    """A decision tree over integer (fixed-point) features."""

    root: Node
    _levels: Dict[int, int] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def classify(self, features: Sequence[int]) -> int:
        """Return the label index this tree assigns to a feature vector."""
        node = self.root
        while isinstance(node, Branch):
            node = node.true_child if node.decide(features) else node.false_child
        return node.label_index

    def decision_path(self, features: Sequence[int]) -> List[bool]:
        """The sequence of decision bits taken from root to leaf."""
        path: List[bool] = []
        node = self.root
        while isinstance(node, Branch):
            bit = node.decide(features)
            path.append(bit)
            node = node.true_child if bit else node.false_child
        return path

    # ------------------------------------------------------------------
    # Traversals
    # ------------------------------------------------------------------

    def preorder(self) -> Iterator[Node]:
        """All nodes in preorder (node, true subtree, false subtree)."""
        stack: List[Node] = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, Branch):
                stack.append(node.false_child)
                stack.append(node.true_child)

    def branches(self) -> List[Branch]:
        """Branches in preorder (the paper's branch enumeration)."""
        return [n for n in self.preorder() if isinstance(n, Branch)]

    def leaves(self) -> List[Leaf]:
        """Leaves in preorder (the paper's label enumeration)."""
        return [n for n in self.preorder() if isinstance(n, Leaf)]

    # ------------------------------------------------------------------
    # Structural statistics
    # ------------------------------------------------------------------

    @property
    def num_branches(self) -> int:
        return sum(1 for n in self.preorder() if isinstance(n, Branch))

    @property
    def num_leaves(self) -> int:
        return sum(1 for n in self.preorder() if isinstance(n, Leaf))

    @property
    def depth(self) -> int:
        """Level of the root: the maximum number of branches on any path."""
        return self.node_level(self.root)

    def node_level(self, node: Node) -> int:
        """Level of a node, memoized (Section 4.1.1)."""
        key = id(node)
        cached = self._levels.get(key)
        if cached is not None:
            return cached
        if isinstance(node, Leaf):
            level = 0
        else:
            level = 1 + max(
                self.node_level(node.true_child), self.node_level(node.false_child)
            )
        self._levels[key] = level
        return level

    def feature_indices(self) -> List[int]:
        """Feature index of every branch, in preorder (the paper's ``f``)."""
        return [b.feature for b in self.branches()]

    def thresholds(self) -> List[int]:
        """Threshold of every branch, in preorder (the paper's ``t``)."""
        return [b.threshold for b in self.branches()]

    def downstream_labels(self, branch: Branch) -> List[Tuple[int, bool]]:
        """Leaf positions under a branch, tagged with the side they lie on.

        Returns ``(leaf_position, under_true_side)`` pairs, where the leaf
        position indexes this tree's preorder leaf enumeration.  The width
        of the branch is the length of this list.
        """
        positions: Dict[int, int] = {
            id(leaf): i for i, leaf in enumerate(self.leaves())
        }

        def collect(node: Node, acc: List[int]) -> None:
            if isinstance(node, Leaf):
                acc.append(positions[id(node)])
            else:
                collect(node.true_child, acc)
                collect(node.false_child, acc)

        true_side: List[int] = []
        false_side: List[int] = []
        collect(branch.true_child, true_side)
        collect(branch.false_child, false_side)
        return [(p, True) for p in true_side] + [(p, False) for p in false_side]

    def validate(self, n_features: int, n_labels: int) -> None:
        """Check feature/label indices are in range; raise otherwise."""
        for node in self.preorder():
            if isinstance(node, Branch):
                if node.feature >= n_features:
                    raise ValidationError(
                        f"branch references feature {node.feature} but the "
                        f"model has only {n_features} features"
                    )
            else:
                if node.label_index >= n_labels:
                    raise ValidationError(
                        f"leaf references label {node.label_index} but the "
                        f"model has only {n_labels} labels"
                    )
