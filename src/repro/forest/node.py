"""Decision-tree nodes.

A tree is built from two node types:

* :class:`Leaf` — carries the index of a class label;
* :class:`Branch` — carries a feature index and an integer threshold, plus
  a *true* child and a *false* child.

Decision semantics, fixed once for the whole system (plaintext oracle,
COPSE masks, and the baseline's polynomials must all agree): the branch
decision bit is ``feature_value < threshold``; when the bit is 1 the
*true* child is evaluated, otherwise the *false* child.

Thresholds and feature values are unsigned integers — the model layer is
already fixed-point.  :mod:`repro.core.fixedpoint` provides the codec that
maps real-valued data into this domain at a chosen precision, and
:mod:`repro.forest.train` quantizes continuous features before training so
the plaintext and secure evaluations agree bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import ValidationError


@dataclass(frozen=True)
class Leaf:
    """A leaf node holding a class-label index."""

    label_index: int

    def __post_init__(self) -> None:
        if self.label_index < 0:
            raise ValidationError(
                f"label index must be non-negative, got {self.label_index}"
            )

    @property
    def is_leaf(self) -> bool:
        return True

    @property
    def level(self) -> int:
        """A label node has level 0 (Section 4.1.1)."""
        return 0

    def __repr__(self) -> str:
        return f"Leaf(L{self.label_index})"


@dataclass(frozen=True)
class Branch:
    """An interior node: ``feature < threshold`` selects the true child."""

    feature: int
    threshold: int
    true_child: "Node"
    false_child: "Node"

    def __post_init__(self) -> None:
        if self.feature < 0:
            raise ValidationError(
                f"feature index must be non-negative, got {self.feature}"
            )
        if self.threshold < 0:
            raise ValidationError(
                f"thresholds are unsigned fixed-point values, got {self.threshold}"
            )

    @property
    def is_leaf(self) -> bool:
        return False

    def decide(self, features) -> bool:
        """Evaluate this branch's decision bit on a feature vector."""
        return bool(features[self.feature] < self.threshold)

    @property
    def level(self) -> int:
        """Number of branches on the longest path to a label, inclusive."""
        return 1 + max(self.true_child.level, self.false_child.level)

    def __repr__(self) -> str:
        return f"Branch(x{self.feature} < {self.threshold})"


Node = Union[Leaf, Branch]
