"""From-scratch CART and random-forest training.

The paper trains its real-world models with scikit-learn's
``RandomForestClassifier``; scikit-learn is not available offline, and only
the *structure* of the trained forests matters to the evaluation (branch
counts, depths, multiplicities — not accuracies).  This module provides a
standard CART implementation (Gini impurity, exhaustive threshold search)
and a bagging random-forest trainer (bootstrap resampling plus per-split
feature subsampling), sufficient to produce forests with realistic shape
statistics from the synthetic datasets in :mod:`repro.forest.datasets`.

Features must already be quantized to unsigned integers (fixed-point); the
datasets module produces them that way, keeping the plaintext oracle and
the secure evaluation bit-for-bit consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TrainingError
from repro.forest.forest import DecisionForest
from repro.forest.node import Branch, Leaf, Node
from repro.forest.tree import DecisionTree


def gini_impurity(counts: np.ndarray) -> float:
    """Gini impurity of a class-count vector."""
    total = counts.sum()
    if total == 0:
        return 0.0
    proportions = counts / total
    return float(1.0 - np.sum(proportions * proportions))


@dataclass
class CartTrainer:
    """CART decision-tree trainer (Gini criterion, binary splits).

    Parameters
    ----------
    max_depth:
        Maximum number of branches on any root-to-leaf path.
    min_samples_split:
        Do not split nodes with fewer samples than this.
    min_samples_leaf:
        Reject splits that would create a child smaller than this.
    max_features:
        If set, consider only this many randomly chosen features per split
        (the random-forest trainer uses this for decorrelation).
    """

    max_depth: int = 8
    min_samples_split: int = 2
    min_samples_leaf: int = 1
    max_features: Optional[int] = None

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        n_labels: int,
        rng: Optional[np.random.Generator] = None,
    ) -> DecisionTree:
        """Fit one tree.  ``features`` is (samples, n_features) ints."""
        X = np.asarray(features)
        y = np.asarray(labels)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise TrainingError(
                f"inconsistent training shapes: X{X.shape}, y{y.shape}"
            )
        if X.shape[0] == 0:
            raise TrainingError("cannot train on an empty dataset")
        if np.any(X < 0):
            raise TrainingError("features must be unsigned fixed-point integers")
        if rng is None:
            rng = np.random.default_rng()
        root = self._grow(X, y, n_labels, depth=0, rng=rng)
        return DecisionTree(root=root)

    # ------------------------------------------------------------------

    def _grow(
        self,
        X: np.ndarray,
        y: np.ndarray,
        n_labels: int,
        depth: int,
        rng: np.random.Generator,
    ) -> Node:
        counts = np.bincount(y, minlength=n_labels)
        majority = int(np.argmax(counts))
        if (
            depth >= self.max_depth
            or X.shape[0] < self.min_samples_split
            or counts.max() == X.shape[0]
        ):
            return Leaf(label_index=majority)

        split = self._best_split(X, y, n_labels, rng)
        if split is None:
            return Leaf(label_index=majority)
        feature, threshold = split
        mask = X[:, feature] < threshold
        true_child = self._grow(X[mask], y[mask], n_labels, depth + 1, rng)
        false_child = self._grow(X[~mask], y[~mask], n_labels, depth + 1, rng)
        # A split whose children agree on the label adds a useless branch.
        if (
            isinstance(true_child, Leaf)
            and isinstance(false_child, Leaf)
            and true_child.label_index == false_child.label_index
        ):
            return true_child
        return Branch(
            feature=feature,
            threshold=int(threshold),
            true_child=true_child,
            false_child=false_child,
        )

    def _best_split(
        self,
        X: np.ndarray,
        y: np.ndarray,
        n_labels: int,
        rng: np.random.Generator,
    ) -> Optional[Tuple[int, int]]:
        n_samples, n_features = X.shape
        feature_pool = np.arange(n_features)
        if self.max_features is not None and self.max_features < n_features:
            feature_pool = rng.choice(n_features, size=self.max_features, replace=False)

        parent_impurity = gini_impurity(np.bincount(y, minlength=n_labels))
        best: Optional[Tuple[int, int]] = None
        best_gain = 1e-12  # demand strictly positive improvement

        for feature in feature_pool:
            column = X[:, feature]
            order = np.argsort(column, kind="stable")
            sorted_vals = column[order]
            sorted_labels = y[order]
            # Prefix class counts let each candidate threshold be scored in
            # O(n_labels) instead of re-scanning the partition.
            one_hot = np.zeros((n_samples, n_labels), dtype=np.int64)
            one_hot[np.arange(n_samples), sorted_labels] = 1
            prefix = np.cumsum(one_hot, axis=0)
            total = prefix[-1]
            for i in range(n_samples - 1):
                if sorted_vals[i] == sorted_vals[i + 1]:
                    continue
                left_n = i + 1
                right_n = n_samples - left_n
                if left_n < self.min_samples_leaf or right_n < self.min_samples_leaf:
                    continue
                left_counts = prefix[i]
                right_counts = total - left_counts
                weighted = (
                    left_n * gini_impurity(left_counts)
                    + right_n * gini_impurity(right_counts)
                ) / n_samples
                gain = parent_impurity - weighted
                if gain > best_gain:
                    best_gain = gain
                    # The integer threshold between two distinct values:
                    # x < t puts everything <= sorted_vals[i] on the left.
                    threshold = int(sorted_vals[i]) + 1
                    best = (int(feature), threshold)
        return best


@dataclass
class RandomForestTrainer:
    """Bagging random forest: bootstrap samples + feature subsampling."""

    n_trees: int = 5
    max_depth: int = 8
    min_samples_split: int = 2
    min_samples_leaf: int = 1
    max_features: Optional[int] = None
    seed: Optional[int] = None

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        label_names: Sequence[str],
        feature_names: Optional[Sequence[str]] = None,
    ) -> DecisionForest:
        """Fit a forest; feature matrix must be unsigned-integer valued."""
        X = np.asarray(features)
        y = np.asarray(labels)
        if X.ndim != 2:
            raise TrainingError(f"feature matrix must be 2-D, got shape {X.shape}")
        n_labels = len(label_names)
        if n_labels < 2:
            raise TrainingError("need at least two labels to classify")
        if np.any(y >= n_labels) or np.any(y < 0):
            raise TrainingError("label values must index into label_names")
        rng = np.random.default_rng(self.seed)
        max_features = self.max_features
        if max_features is None:
            max_features = max(1, int(np.sqrt(X.shape[1])))
        trainer = CartTrainer(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=max_features,
        )
        trees: List[DecisionTree] = []
        n_samples = X.shape[0]
        for _ in range(self.n_trees):
            idx = rng.integers(0, n_samples, size=n_samples)
            trees.append(trainer.fit(X[idx], y[idx], n_labels, rng=rng))
        return DecisionForest(
            trees=trees,
            label_names=list(label_names),
            n_features=X.shape[1],
            feature_names=list(feature_names) if feature_names else [],
        )


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    test_fraction: float = 0.25,
    seed: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split a dataset (helper for the examples)."""
    if not 0.0 < test_fraction < 1.0:
        raise TrainingError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = np.random.default_rng(seed)
    n = X.shape[0]
    order = rng.permutation(n)
    cut = int(n * (1.0 - test_fraction))
    train_idx, test_idx = order[:cut], order[cut:]
    return X[train_idx], y[train_idx], X[test_idx], y[test_idx]


def accuracy(predictions: Sequence[int], truth: Sequence[int]) -> float:
    """Fraction of matching predictions (helper for the examples)."""
    if len(predictions) != len(truth):
        raise TrainingError("prediction/truth length mismatch")
    if not predictions:
        return 0.0
    hits = sum(1 for p, t in zip(predictions, truth) if p == t)
    return hits / len(predictions)
