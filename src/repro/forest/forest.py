"""Decision forests: a set of trees over a shared feature space.

Implements the model-level definitions of Section 4.1.1:

* the forest-wide preorder enumeration of branches and labels (tree by
  tree, without restarting the count);
* *multiplicity* ``kappa_i`` of a feature — how many branches compare
  against it across the whole forest;
* *maximum multiplicity* ``K`` — the one model statistic COPSE reveals;
* *branching* ``b`` — total branch count, ``sum(kappa_i)``;
* *quantized branching* ``q = K * n_features`` — the padded width of the
  threshold vector.

Plaintext inference returns the per-tree label choices (matching COPSE's
N-hot result bitvector, Section 4.1.2) plus a plurality vote helper for
applications that want a single classification.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.errors import ValidationError
from repro.forest.node import Branch, Leaf
from repro.forest.tree import DecisionTree


@dataclass
class DecisionForest:
    """A forest of decision trees with named labels and a fixed arity."""

    trees: List[DecisionTree]
    label_names: List[str]
    n_features: int
    feature_names: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.trees:
            raise ValidationError("a decision forest needs at least one tree")
        if not self.label_names:
            raise ValidationError("a decision forest needs at least one label")
        if self.n_features <= 0:
            raise ValidationError(
                f"n_features must be positive, got {self.n_features}"
            )
        if self.feature_names and len(self.feature_names) != self.n_features:
            raise ValidationError(
                f"{len(self.feature_names)} feature names for "
                f"{self.n_features} features"
            )
        for tree in self.trees:
            tree.validate(self.n_features, len(self.label_names))

    # ------------------------------------------------------------------
    # Inference (the plaintext oracle)
    # ------------------------------------------------------------------

    @property
    def n_labels(self) -> int:
        return len(self.label_names)

    @property
    def n_trees(self) -> int:
        return len(self.trees)

    def classify_per_tree(self, features: Sequence[int]) -> List[int]:
        """Label index chosen by each tree (COPSE's notion of the result)."""
        self._check_features(features)
        return [tree.classify(features) for tree in self.trees]

    def classify(self, features: Sequence[int]) -> int:
        """Plurality vote across trees; ties break to the smaller index."""
        votes = Counter(self.classify_per_tree(features))
        best = max(votes.items(), key=lambda kv: (kv[1], -kv[0]))
        return best[0]

    def label_bitvector(self, features: Sequence[int]) -> List[int]:
        """The N-hot leaf bitvector COPSE computes (Section 4.1.2).

        One slot per leaf in the forest-wide preorder enumeration; a slot
        is 1 exactly when its leaf is the one its tree selects.
        """
        self._check_features(features)
        bits: List[int] = []
        for tree in self.trees:
            chosen = self._chosen_leaf_position(tree, features)
            bits.extend(
                1 if i == chosen else 0 for i in range(tree.num_leaves)
            )
        return bits

    @staticmethod
    def _chosen_leaf_position(tree: DecisionTree, features: Sequence[int]) -> int:
        leaves = tree.leaves()
        node = tree.root
        while isinstance(node, Branch):
            node = node.true_child if node.decide(features) else node.false_child
        for i, leaf in enumerate(leaves):
            if leaf is node:
                return i
        raise ValidationError("chosen leaf not found in enumeration")

    # ------------------------------------------------------------------
    # Model statistics (Section 4.1.1)
    # ------------------------------------------------------------------

    def multiplicities(self) -> Dict[int, int]:
        """``kappa_i`` for every feature index (0 when a feature is unused)."""
        kappa = {i: 0 for i in range(self.n_features)}
        for tree in self.trees:
            for branch in tree.branches():
                kappa[branch.feature] += 1
        return kappa

    @property
    def max_multiplicity(self) -> int:
        """``K`` — the statistic revealed to enable feature replication."""
        return max(self.multiplicities().values())

    @property
    def branching(self) -> int:
        """``b`` — total number of branch nodes in the forest."""
        return sum(tree.num_branches for tree in self.trees)

    @property
    def quantized_branching(self) -> int:
        """``q = K * n_features`` — the padded threshold-vector width."""
        return self.max_multiplicity * self.n_features

    @property
    def num_leaves(self) -> int:
        """Total leaves: the width of the classification bitvector."""
        return sum(tree.num_leaves for tree in self.trees)

    @property
    def max_depth(self) -> int:
        """``d`` — the maximum level over all trees."""
        return max(tree.depth for tree in self.trees)

    def all_branches(self) -> List[Branch]:
        """Forest-wide preorder branch enumeration (count never restarts)."""
        out: List[Branch] = []
        for tree in self.trees:
            out.extend(tree.branches())
        return out

    def all_leaves(self) -> List[Leaf]:
        """Forest-wide preorder label enumeration."""
        out: List[Leaf] = []
        for tree in self.trees:
            out.extend(tree.leaves())
        return out

    def describe(self) -> str:
        """One-line structural summary used in reports."""
        return (
            f"forest: trees={self.n_trees} features={self.n_features} "
            f"labels={self.n_labels} b={self.branching} "
            f"K={self.max_multiplicity} q={self.quantized_branching} "
            f"d={self.max_depth} leaves={self.num_leaves}"
        )

    # ------------------------------------------------------------------

    def _check_features(self, features: Sequence[int]) -> None:
        if len(features) != self.n_features:
            raise ValidationError(
                f"expected {self.n_features} features, got {len(features)}"
            )
