"""Multi-process serve cluster: a placing/verifying router over workers.

The threaded :class:`~repro.serve.service.CopseService` keeps every
batch evaluation inside one GIL-bound process.  This module shards the
same scheduler over a pool of **worker processes** in the PR 4 style —
one pure decision core, thin engines:

* :class:`RouterCore` — the pure front end.  It wraps the existing
  :class:`~repro.serve.scheduler.SchedulerCore` (bounded queues,
  fair-share batch cutting, requeue-at-original-seq crash retries) and
  adds the cluster concerns: deterministic model->worker **placement**
  (each model prefers a stable rotation of the pool), **ship-once**
  tracking (a worker receives a model's
  :class:`~repro.serve.transport.ShippedModel` envelope exactly once
  per (worker, epoch), keyed by the compiled model's fingerprint),
  **worker epochs** (a crash bumps the epoch; completions that echo a
  stale epoch are dropped, generalizing the simulator's epoch guard to
  real processes), **heartbeat liveness**, and **draining restarts**
  for redeploys.  Every method takes an explicit ``now`` and every
  choice lands in an ordered decision record — the determinism witness.
* :class:`ClusterSimRunner` — the discrete-event engine: replays a
  seeded arrival timeline with injected worker crashes under a
  :class:`~repro.serve.simclock.VirtualClock`.  A 10^5-query soak with
  mid-run crashes replays with byte-identical routing decisions and
  stats per seed.
* :class:`ClusterService` — the thin real engine: actual
  ``multiprocessing`` (spawn) workers behind pipes, a receiver thread
  that completes batches, detects dead pipes, respawns crashed workers
  under a new epoch, and re-dispatches.  Queries submitted to a
  1-worker and an N-worker cluster decrypt to identical bits — the
  workers are pure functions of (shipped model, features).

The fault-domain layer (:mod:`repro.serve.faults`) rides on the same
decision core: crashed batches park behind a **deterministic backoff**
instead of requeueing immediately, a batch that keeps killing workers is
**bisected** until the poison query is isolated in a bounded
**dead-letter queue**, per ``(model, worker)`` **circuit breakers**
steer placement away from failing pairs, and (when enabled) a batch in
flight past ``k x`` its cost estimate is **hedged** onto a second worker
— first valid completion wins, the loser is discarded by the existing
epoch/busy staleness check.

Decision records are ``(kind, ...)`` tuples ordered by emission:
``("ship", worker, epoch, model, t)``,
``("assign", batch_id, queue, worker, epoch, size, first_seq, t)``,
``("crash", worker, new_epoch, t)``, ``("restart", worker, epoch, t)``,
``("drain", worker, t)``, ``("redeploy", model, fingerprint, t)``,
``("stale", batch_id, worker, epoch, t)``, plus the fault-domain kinds:
``("park", queue, seq, attempt, release_t, t)``,
``("bisect", origin_batch, queue, size, left, right, release_t, t)``,
``("dead_letter", queue, tenant, seq, origin_batch, t)``,
``("breaker", model, worker, state, t)``,
``("hedge", batch_id, primary, worker, epoch, t)``,
``("hedge_win", batch_id, winner, t)``,
``("hedge_promote", batch_id, dead, survivor, t)``,
``("hedge_drop", batch_id, dead, t)`` and
``("degrade", model, from_engine, to_engine, t)``.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import zlib
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    PoisonQueryError,
    RejectedQuery,
    ServeError,
    ValidationError,
)
from repro.serve.faults import (
    CircuitBreaker,
    DeadLetter,
    DeadLetterQueue,
    RetryPolicy,
)
from repro.serve.loadgen import (
    Arrival,
    FaultPlan,
    ModelProfile,
    SimReport,
)
from repro.serve.scheduler import (
    OUTCOME_ERROR,
    OUTCOME_OK,
    Assignment,
    QueryTicket,
    SchedulerCore,
    SchedulerStats,
    deliver_failures,
)
from repro.serve.simclock import MS, RealClock, VirtualClock
from repro.serve.transport import (
    MSG_EVAL,
    MSG_LOAD,
    MSG_PING,
    MSG_PONG,
    MSG_READY,
    MSG_RESULT,
    MSG_STOP,
    BatchRequest,
    ShippedModel,
)

__all__ = [
    "ShipAction",
    "AssignAction",
    "HedgeAction",
    "RouterCore",
    "ClusterSimRunner",
    "ClusterService",
]

#: Default liveness horizon: a worker silent for this long is declared
#: dead by :meth:`RouterCore.check_health`.  Generous, because a worker
#: evaluating a batch cannot answer pings until it finishes — pipe EOF,
#: not the heartbeat, is the fast path for real process death.
DEFAULT_HEARTBEAT_TIMEOUT_S = 60.0


@dataclass(frozen=True)
class ShipAction:
    """Engine instruction: send ``model``'s envelope to ``worker``."""

    worker: int
    epoch: int
    model: str


@dataclass
class AssignAction:
    """Engine instruction: evaluate ``assignment`` on its bound worker."""

    assignment: Assignment
    epoch: int
    #: True when a ShipAction for the same worker precedes this batch —
    #: the simulator charges the ship latency to this batch.
    newly_shipped: bool = False


@dataclass
class HedgeAction:
    """Engine instruction: *also* evaluate ``assignment`` on ``worker``.

    Emitted when a batch has been in flight past its hedge threshold:
    the engine sends the same batch to a second worker and lets the
    first valid completion win (the loser is dropped by the epoch/busy
    staleness check).  ``assignment.worker`` still names the primary.
    """

    assignment: Assignment
    worker: int
    epoch: int
    newly_shipped: bool = False


class _Flight:
    """Hedge bookkeeping for one in-flight batch (hedging enabled only)."""

    __slots__ = ("assignment", "started", "estimate_s", "hedge_worker",
                 "hedge_epoch")

    def __init__(self, assignment: Assignment, started: float,
                 estimate_s: float):
        self.assignment = assignment
        self.started = started
        self.estimate_s = estimate_s
        self.hedge_worker: Optional[int] = None
        self.hedge_epoch: Optional[int] = None


class RouterCore:
    """Pure cluster placement/failover over a :class:`SchedulerCore`.

    Thread-unsafe by design, like the scheduler core it wraps: engines
    serialize access and pass ``now`` explicitly, so simulated and real
    clusters make identical routing decisions from identical inputs.
    """

    def __init__(
        self,
        workers: int,
        max_retries: int = 1,
        record_decisions: bool = True,
        tracer=None,
        metrics=None,
        heartbeat_timeout_s: float = DEFAULT_HEARTBEAT_TIMEOUT_S,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        dlq_limit: int = 64,
    ):
        if workers < 1:
            raise ValidationError(
                f"cluster workers must be >= 1, got {workers}"
            )
        if heartbeat_timeout_s <= 0:
            raise ValidationError(
                f"heartbeat_timeout_s must be > 0, got "
                f"{heartbeat_timeout_s}"
            )
        self.core = SchedulerCore(
            workers=workers,
            max_retries=max_retries,
            record_decisions=False,  # the router keeps the richer log
            tracer=tracer,
            metrics=metrics,
        )
        self.workers = workers
        self.tracer = tracer
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.epochs: List[int] = [0] * workers
        self.alive: List[bool] = [True] * workers
        self.draining: List[bool] = [False] * workers
        #: Last heartbeat per worker (None until the engine reports one).
        self.last_heartbeat: List[Optional[float]] = [None] * workers
        #: Per-worker map of model name -> shipped fingerprint, reset on
        #: every epoch change: the ship-exactly-once ledger.
        self.shipped: List[Dict[str, str]] = [{} for _ in range(workers)]
        self._busy: Dict[int, Assignment] = {}
        #: model name -> current fingerprint (the placement/ship key).
        self._models: Dict[str, str] = {}
        self.decisions: Optional[List[Tuple]] = (
            [] if record_decisions else None
        )
        # -- fault-domain state (see repro.serve.faults) --------------
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.dlq = DeadLetterQueue(limit=dlq_limit)
        #: Tickets waiting out a crash backoff: (release_t, order, ticket).
        self._parked: List[Tuple[float, int, QueryTicket]] = []
        #: Quarantine cohorts awaiting solo re-execution:
        #: (release_t, order, {"queue", "tickets", "origin"}).
        self._cohorts: List[Tuple[float, int, dict]] = []
        self._park_order = itertools.count()
        #: batch_id -> origin batch_id for in-flight quarantine cohorts.
        self._quarantined: Dict[int, int] = {}
        #: batch_id -> hedge bookkeeping (populated only when the retry
        #: policy enables hedging).
        self._flights: Dict[int, _Flight] = {}
        #: (model, to_engine) pairs already logged by record_degrade.
        self._degraded_seen: set = set()
        m = self.metrics
        self._ships = m.counter("cluster_ships")
        self._crashes = m.counter("cluster_crashes")
        self._restarts = m.counter("cluster_restarts")
        self._drains = m.counter("cluster_drains")
        self._heartbeats = m.counter("cluster_heartbeats")
        self._stale = m.counter("cluster_epoch_invalidated")
        self._redeploys = m.counter("cluster_redeploys")
        self._scale_ups = m.counter("cluster_scale_ups")
        self._retires = m.counter("cluster_retires")
        self._parks = m.counter("cluster_parks")
        self._bisections = m.counter("cluster_bisections")
        self._dead_letters = m.counter("cluster_dead_letters")
        self._hedges = m.counter("cluster_hedges")
        self._hedge_wins = m.counter("cluster_hedge_wins")
        self._breaker_trips = m.counter("cluster_breaker_trips")
        m.gauge("cluster_workers").set(workers)

    # ------------------------------------------------------------------
    # Shared surface (delegated to the scheduler core)
    # ------------------------------------------------------------------

    @property
    def metrics(self):
        return self.core.metrics

    def add_model(
        self,
        name: str,
        capacity: int,
        weight: float = 1.0,
        max_pending: Optional[int] = None,
        service_ms: Optional[float] = None,
        fingerprint: Optional[str] = None,
    ) -> None:
        """Register one served model (queue + placement identity).

        ``fingerprint`` keys the ship-once ledger; profile-only callers
        (the simulator) may omit it and get a synthetic stand-in.
        """
        self.core.add_queue(
            name,
            capacity=capacity,
            weight=weight,
            max_pending=max_pending,
            service_ms=service_ms,
        )
        self._models[name] = (
            fingerprint if fingerprint is not None else f"profile:{name}"
        )

    def remove_model(self, name: str,
                     now: Optional[float] = None) -> int:
        self._models.pop(name, None)
        for ledger in self.shipped:
            ledger.pop(name, None)
        return self.core.remove_queue(name, now=now)

    def submit(self, name: str, payload, now: float, tenant="default",
               deadline=None, priority: int = 0):
        return self.core.submit(
            name, payload, now, tenant=tenant, deadline=deadline,
            priority=priority,
        )

    def flush(self, name: Optional[str] = None) -> None:
        self.core.flush(name)

    def drain_failures(self):
        return self.core.drain_failures()

    def stats(self) -> SchedulerStats:
        stats = self.core.stats()
        self.metrics.gauge("cluster_workers_alive").set(
            sum(1 for a in self.alive if a)
        )
        self.metrics.gauge("cluster_dlq_depth").set(len(self.dlq))
        self.metrics.gauge("cluster_parked").set(
            len(self._parked)
            + sum(len(c["tickets"]) for _, _, c in self._cohorts)
        )
        return stats

    @property
    def outstanding(self) -> int:
        # Parked tickets and quarantine cohorts left the scheduler's
        # queues but still owe their callers a resolution.
        return (
            self.core.outstanding
            + len(self._parked)
            + sum(len(c["tickets"]) for _, _, c in self._cohorts)
        )

    def set_weight(self, name: str, weight: float, now: float) -> float:
        """Retune a model's fair-share weight; returns the old one."""
        old = self.core.set_weight(name, weight)
        self._record("set_weight", name, round(weight, 9), round(now, 9))
        return old

    def set_admission_limit(self, name: str, limit: Optional[int],
                            now: float) -> Optional[int]:
        """Rebound a model's admission limit; returns the old one."""
        old = self.core.set_max_pending(name, limit)
        self._record(
            "set_admission_limit", name,
            -1 if limit is None else limit, round(now, 9),
        )
        return old

    def next_cut_time(self) -> Optional[float]:
        return self.core.next_cut_time()

    def close(self) -> None:
        self.core.close()

    # ------------------------------------------------------------------
    # Decision recording
    # ------------------------------------------------------------------

    def _record(self, *fields) -> None:
        if self.decisions is not None:
            self.decisions.append(fields)

    # ------------------------------------------------------------------
    # Placement + dispatch
    # ------------------------------------------------------------------

    def placement_order(self, model: str) -> List[int]:
        """The model's stable preferred-worker rotation.

        Sharding by a deterministic hash of the model name spreads
        *first choices* across the pool (so co-served models do not all
        pile onto worker 0) while keeping each model's batches sticky to
        the same few workers — which is what makes the ship-once ledger
        pay off.  Salted hashes (``hash``) are banned here: placement
        must replay across processes and runs.
        """
        start = zlib.crc32(model.encode()) % self.workers
        return [(start + k) % self.workers for k in range(self.workers)]

    def _place(self, model: str, now: float,
               exclude: Tuple[int, ...] = ()) -> Optional[int]:
        for worker in self.placement_order(model):
            if worker in exclude:
                continue
            if (
                self.alive[worker]
                and not self.draining[worker]
                and worker not in self._busy
            ):
                allowed, transition = self.breaker.allow(
                    (model, worker), now
                )
                if transition is not None:
                    self._record("breaker", model, worker, transition,
                                 round(now, 9))
                if allowed:
                    return worker
        return None

    def _ship_if_needed(self, name: str, worker: int, epoch: int,
                        now: float,
                        actions: List[object]) -> bool:
        """Update the ship-once ledger; returns True on a fresh ship."""
        fingerprint = self._models[name]
        if self.shipped[worker].get(name) == fingerprint:
            return False
        self.shipped[worker][name] = fingerprint
        self._ships.inc()
        self._record("ship", worker, epoch, name, round(now, 9))
        if self.tracer is not None:
            self.tracer.event(
                "ship", now, track=f"worker:{worker}",
                model=name, epoch=epoch,
            )
        actions.append(ShipAction(worker=worker, epoch=epoch, model=name))
        return True

    def _track_flight(self, assignment: Assignment, now: float) -> None:
        if not self.retry_policy.hedging_enabled:
            return
        self._flights[assignment.batch_id] = _Flight(
            assignment, started=now,
            estimate_s=self.core.service_estimate_s(assignment.queue),
        )

    def dispatch(self, now: float) -> List[object]:
        """Cut and place every batch that can run right now.

        First releases due backoff parks and quarantine cohorts, then
        walks the scheduler's ready queues in fair-share order, pins
        each cut to the first eligible worker of the model's placement
        rotation (circuit breakers veto failing (model, worker) pairs),
        and emits the engine's work list: a :class:`ShipAction` the
        first time a (worker, epoch) sees a model (or a redeployed
        fingerprint), then the :class:`AssignAction` for the batch
        itself.  A queue no eligible worker can take is skipped without
        starving the others.  Finally, batches in flight past their
        hedge threshold get a :class:`HedgeAction` (when hedging is on).
        """
        actions: List[object] = []
        self._release_parked(now)
        self._dispatch_cohorts(now, actions)
        while True:
            progressed = False
            for name in self.core.ready_queues(now):
                worker = self._place(name, now)
                if worker is None:
                    continue
                assignment = self.core.assign(now, worker=worker,
                                              queue=name)
                if assignment is None:
                    self.breaker.release_probe((name, worker))
                    continue  # the whole cut was cancelled
                epoch = self.epochs[worker]
                newly = self._ship_if_needed(name, worker, epoch, now,
                                             actions)
                self._busy[worker] = assignment
                self._track_flight(assignment, now)
                self._record(
                    "assign", assignment.batch_id, name, worker, epoch,
                    assignment.size, assignment.tickets[0].seq,
                    round(now, 9),
                )
                actions.append(AssignAction(
                    assignment=assignment, epoch=epoch,
                    newly_shipped=newly,
                ))
                progressed = True
                break  # re-evaluate fair-share order after every cut
            if not progressed:
                break
        if self.retry_policy.hedging_enabled:
            self._check_hedges(now, actions)
        return actions

    # ------------------------------------------------------------------
    # Fault domains: backoff parks, quarantine cohorts, hedges
    # ------------------------------------------------------------------

    def _release_parked(self, now: float) -> None:
        """Requeue parked tickets whose backoff has elapsed."""
        released: List[str] = []
        while self._parked and self._parked[0][0] <= now:
            _, _, ticket = heapq.heappop(self._parked)
            if self.core.requeue(ticket):
                released.append(ticket.queue)
        for name in dict.fromkeys(released):
            # The crashed tickets were already cut once; re-flush so a
            # requeued partial batch re-cuts now instead of waiting for
            # a flush nobody will send again.
            self.core.flush(name)

    def _dispatch_cohorts(self, now: float,
                          actions: List[object]) -> None:
        """Re-execute due quarantine cohorts on breaker-cleared workers."""
        deferred: List[Tuple[float, int, dict]] = []
        while self._cohorts and self._cohorts[0][0] <= now:
            release_t, order, cohort = heapq.heappop(self._cohorts)
            name = cohort["queue"]
            worker = self._place(name, now)
            if worker is None:
                deferred.append((release_t, order, cohort))
                continue
            assignment = self.core.assign_direct(
                name, cohort["tickets"], worker, now
            )
            if assignment is None:
                self.breaker.release_probe((name, worker))
                continue  # every cohort ticket was cancelled meanwhile
            epoch = self.epochs[worker]
            newly = self._ship_if_needed(name, worker, epoch, now,
                                         actions)
            self._busy[worker] = assignment
            self._quarantined[assignment.batch_id] = cohort["origin"]
            self._track_flight(assignment, now)
            self._record(
                "assign", assignment.batch_id, name, worker, epoch,
                assignment.size, assignment.tickets[0].seq,
                round(now, 9),
            )
            actions.append(AssignAction(
                assignment=assignment, epoch=epoch, newly_shipped=newly,
            ))
        for entry in deferred:
            heapq.heappush(self._cohorts, entry)

    def _check_hedges(self, now: float, actions: List[object]) -> None:
        """Speculatively re-place batches stuck past the hedge threshold."""
        for batch_id in sorted(self._flights):
            flight = self._flights[batch_id]
            if flight.hedge_worker is not None:
                continue
            threshold = self.retry_policy.hedge_after_s(flight.estimate_s)
            if now - flight.started < threshold:
                continue
            assignment = flight.assignment
            name = assignment.queue
            worker = self._place(name, now,
                                 exclude=(assignment.worker,))
            if worker is None:
                continue
            self.core.reserve_worker(worker)
            epoch = self.epochs[worker]
            newly = self._ship_if_needed(name, worker, epoch, now,
                                         actions)
            self._busy[worker] = assignment
            flight.hedge_worker = worker
            flight.hedge_epoch = epoch
            self._hedges.inc()
            self._record("hedge", batch_id, assignment.worker, worker,
                         epoch, round(now, 9))
            actions.append(HedgeAction(
                assignment=assignment, worker=worker, epoch=epoch,
                newly_shipped=newly,
            ))

    def next_wake_time(self, now: float) -> Optional[float]:
        """Earliest future moment a dispatch could make progress.

        Covers slack-cut deadlines, backoff park releases, quarantine
        cohort releases, hedge thresholds, and (while retry work is
        pending) circuit-breaker reopen times — the engine's one timer
        seam, so parked work can never stall a run.
        """
        times: List[float] = []
        cut = self.core.next_cut_time()
        if cut is not None:
            times.append(cut)
        if self._parked:
            times.append(self._parked[0][0])
        if self._cohorts:
            times.append(self._cohorts[0][0])
        if self.retry_policy.hedging_enabled:
            for flight in self._flights.values():
                if flight.hedge_worker is None:
                    times.append(
                        flight.started
                        + self.retry_policy.hedge_after_s(
                            flight.estimate_s
                        )
                    )
        if self._parked or self._cohorts:
            reopen = self.breaker.next_transition_time()
            if reopen is not None:
                times.append(reopen)
        return min(times) if times else None

    # ------------------------------------------------------------------
    # Completion + the epoch guard
    # ------------------------------------------------------------------

    def complete(self, assignment: Assignment, epoch: int, now: float,
                 outcome: str = OUTCOME_OK,
                 worker: Optional[int] = None) -> bool:
        """Account one finished batch — unless its worker epoch is stale.

        A completion echoing an epoch the router has since bumped comes
        from a superseded worker incarnation: its tickets were already
        requeued (crash) or belong to a drained-and-restarted worker.
        Counting it would double-complete queries, so it is dropped and
        recorded.  ``worker`` identifies the delivering worker when it
        may differ from the binding (hedged batches); it defaults to
        ``assignment.worker``.  Returns True when accepted.
        """
        if worker is None:
            worker = assignment.worker
        if (
            epoch != self.epochs[worker]
            or self._busy.get(worker) is not assignment
        ):
            self._stale.inc()
            self._record("stale", assignment.batch_id, worker, epoch,
                         round(now, 9))
            return False
        flight = self._flights.pop(assignment.batch_id, None)
        if flight is not None and flight.hedge_worker is not None:
            # Two executors raced; settle the loser before accounting.
            if worker == flight.hedge_worker:
                self._busy.pop(assignment.worker, None)
                self.core.rebind(assignment, worker)
                self._hedge_wins.inc()
            else:
                self._busy.pop(flight.hedge_worker, None)
                self.core.release_worker(flight.hedge_worker)
            self._record("hedge_win", assignment.batch_id, worker,
                         round(now, 9))
        del self._busy[worker]
        self._quarantined.pop(assignment.batch_id, None)
        if outcome == OUTCOME_OK:
            healed = self.breaker.record_success(
                (assignment.queue, worker), now
            )
            if healed is not None:
                self._record("breaker", assignment.queue, worker,
                             healed, round(now, 9))
        self.core.complete(assignment, now, outcome)
        return True

    # ------------------------------------------------------------------
    # Liveness: heartbeats, crashes, restarts, draining
    # ------------------------------------------------------------------

    def worker_started(self, worker: int, now: float) -> None:
        """Seed the liveness clock when the engine spawns/hears a worker."""
        self.last_heartbeat[worker] = now

    def heartbeat(self, worker: int, epoch: int, now: float) -> bool:
        """Record a worker heartbeat; stale-epoch beats are ignored."""
        if epoch != self.epochs[worker] or not self.alive[worker]:
            return False
        self.last_heartbeat[worker] = now
        self._heartbeats.inc()
        return True

    def check_health(self, now: float) -> List[int]:
        """Workers whose heartbeats have gone silent past the timeout.

        The caller decides the response (normally
        :meth:`crash_worker` + respawn + :meth:`restart_worker`).
        """
        dead = []
        for worker in range(self.workers):
            beat = self.last_heartbeat[worker]
            if (
                self.alive[worker]
                and beat is not None
                and now - beat > self.heartbeat_timeout_s
            ):
                dead.append(worker)
        return dead

    def crash_worker(self, worker: int,
                     now: float) -> Optional[Assignment]:
        """Declare a worker dead: bump its epoch, park its batch.

        The epoch bump is what invalidates any completion the dead
        incarnation still manages to deliver.  The in-flight batch (if
        any) takes the fault-domain path: tickets with retries left
        **park** behind the policy's deterministic backoff; tickets
        that exhausted ``max_retries`` enter **quarantine** — bisected
        into cohorts that re-execute independently until the poison
        query is isolated in the dead-letter queue.  Hedged batches
        survive a single crash by promoting the other replica.  The
        worker stays out of placement until :meth:`restart_worker`, and
        the (model, worker) breaker records the failure.

        Returns the interrupted assignment when its tickets left the
        worker (parked/quarantined), or None when the batch survives on
        a hedge replica or the worker was idle.
        """
        self.epochs[worker] += 1
        self.alive[worker] = False
        self.draining[worker] = False
        self.shipped[worker] = {}
        assignment = self._busy.pop(worker, None)
        self._crashes.inc()
        self._record("crash", worker, self.epochs[worker], round(now, 9))
        if self.tracer is not None:
            self.tracer.event(
                "crash", now, track=f"worker:{worker}",
                epoch=self.epochs[worker],
            )
        if assignment is None:
            self.core.count_crash()
            return None
        trip = self.breaker.record_failure(
            (assignment.queue, worker), now
        )
        if trip is not None:
            self._breaker_trips.inc()
            self._record("breaker", assignment.queue, worker, trip,
                         round(now, 9))
        flight = self._flights.get(assignment.batch_id)
        if flight is not None and flight.hedge_worker is not None:
            self.core.count_crash()
            if worker == flight.hedge_worker:
                # The hedge replica died; the primary runs on.
                self.core.release_worker(worker)
                self._record("hedge_drop", assignment.batch_id, worker,
                             round(now, 9))
            else:
                # The primary died; promote the hedge to sole executor.
                survivor = flight.hedge_worker
                self.core.rebind(assignment, survivor)
                self._record("hedge_promote", assignment.batch_id,
                             worker, survivor, round(now, 9))
            flight.hedge_worker = None
            flight.hedge_epoch = None
            flight.started = now  # re-arm the hedge window
            return None
        self._flights.pop(assignment.batch_id, None)
        tickets = self.core.release_crashed(assignment, now)
        self._handle_crashed_tickets(assignment, tickets, now)
        return assignment

    def _handle_crashed_tickets(self, assignment: Assignment,
                                tickets: List[QueryTicket],
                                now: float) -> None:
        """Decide the fate of every ticket freed by a worker crash."""
        queue = assignment.queue
        origin = self._quarantined.pop(assignment.batch_id, None)
        if origin is not None:
            # A quarantine cohort crashed again: narrow further.
            if len(tickets) == 1:
                self._dead_letter(queue, tickets[0], origin, now)
            else:
                self._quarantine(queue, tickets, origin, now)
            return
        exhausted: List[QueryTicket] = []
        for ticket in tickets:
            if ticket.retries >= self.core.max_retries:
                exhausted.append(ticket)
                continue
            self.core.prepare_retry(ticket, now)
            release = now + self.retry_policy.backoff_s(
                ticket.retries, key=f"{queue}:{ticket.seq}"
            )
            heapq.heappush(
                self._parked,
                (release, next(self._park_order), ticket),
            )
            self._parks.inc()
            self._record("park", queue, ticket.seq, ticket.retries,
                         round(release, 9), round(now, 9))
        if exhausted:
            self._quarantine(queue, exhausted, assignment.batch_id, now)

    def _quarantine(self, queue: str, tickets: List[QueryTicket],
                    origin: int, now: float) -> None:
        """Bisect a worker-killing ticket group into re-execution cohorts.

        A group of one gets a single solo cohort (its last chance); a
        larger group splits in half, so log2(size) crash rounds isolate
        one poison query while every innocent neighbor completes.
        """
        mid = len(tickets) // 2
        halves = [h for h in (tickets[:mid], tickets[mid:]) if h]
        release = now + self.retry_policy.backoff_s(
            1, key=f"bisect:{origin}:{len(tickets)}"
        )
        for half in halves:
            for ticket in half:
                self.core.prepare_retry(ticket, now)
            heapq.heappush(
                self._cohorts,
                (release, next(self._park_order),
                 {"queue": queue, "tickets": half, "origin": origin}),
            )
        self._bisections.inc()
        self._record(
            "bisect", origin, queue, len(tickets), len(halves[0]),
            len(halves[-1]) if len(halves) > 1 else 0,
            round(release, 9), round(now, 9),
        )

    def _dead_letter(self, queue: str, ticket: QueryTicket,
                     origin: int, now: float) -> None:
        """Terminally isolate one bisection-convicted poison query."""
        attempts = ticket.retries + 1
        self._dead_letters.inc()
        self.dlq.append(DeadLetter(
            model=queue,
            tenant=ticket.tenant,
            seq=ticket.seq,
            origin_batch=origin,
            attempts=attempts,
            reason=(
                f"crashed {attempts} worker(s); isolated by quarantine "
                f"bisection from batch {origin}"
            ),
            time=round(now, 9),
        ))
        self._record("dead_letter", queue, ticket.tenant, ticket.seq,
                     origin, round(now, 9))
        if self.tracer is not None:
            self.tracer.event(
                "dead_letter", now, track=f"tenant:{ticket.tenant}",
                model=queue, seq=ticket.seq,
            )
        self.core.dead_letter_ticket(ticket, PoisonQueryError(
            f"query seq={ticket.seq} (model {queue!r}) crashed "
            f"{attempts} workers and was quarantined to the "
            f"dead-letter queue",
            model=queue, tenant=ticket.tenant, seq=ticket.seq,
            attempts=attempts,
        ), now)

    def record_degrade(self, model: str, from_engine: str,
                       to_engine: str, now: float) -> None:
        """Account a worker-reported engine degradation (auditable).

        The per-model counter rises on every degraded batch (the
        control plane's signal); the decision record lands once per
        (model, to_engine) so a long soak's log stays readable.
        """
        self.metrics.counter(
            "cluster_degraded", labels={"model": model}
        ).inc()
        if (model, to_engine) not in self._degraded_seen:
            self._degraded_seen.add((model, to_engine))
            self._record("degrade", model, from_engine, to_engine,
                         round(now, 9))

    def restart_worker(self, worker: int, now: float) -> int:
        """Bring a worker (back) into placement under a fresh epoch.

        Used both to replace a crashed worker and to finish a draining
        redeploy.  The ship ledger is cleared — the new incarnation owns
        nothing until the router ships it — and the new epoch is
        returned for the engine to hand to the spawned process.
        """
        if worker in self._busy:
            raise ValidationError(
                f"cannot restart worker {worker} with batch "
                f"{self._busy[worker].batch_id} in flight; drain first"
            )
        self.epochs[worker] += 1
        self.alive[worker] = True
        self.draining[worker] = False
        self.shipped[worker] = {}
        self.last_heartbeat[worker] = now
        self._restarts.inc()
        self._record("restart", worker, self.epochs[worker],
                     round(now, 9))
        if self.tracer is not None:
            self.tracer.event(
                "restart", now, track=f"worker:{worker}",
                epoch=self.epochs[worker],
            )
        return self.epochs[worker]

    def drain(self, worker: int, now: float) -> None:
        """Stop placing new batches on a worker (in-flight work finishes)."""
        if not self.draining[worker]:
            self.draining[worker] = True
            self._drains.inc()
            self._record("drain", worker, round(now, 9))

    def drained(self, worker: int) -> bool:
        return worker not in self._busy

    def redeploy_model(self, name: str, fingerprint: str,
                       now: float) -> None:
        """Publish a new fingerprint for ``name``.

        Every worker's ledger entry is now stale, so the next batch
        placed on each worker re-ships the new envelope first — a
        rolling redeploy with no restart needed.  (Engines that must
        also replace worker *code* drain + restart each worker instead.)
        """
        if name not in self._models:
            raise ValidationError(f"no cluster model named {name!r}")
        self._models[name] = fingerprint
        self._redeploys.inc()
        self._record("redeploy", name, fingerprint, round(now, 9))

    # ------------------------------------------------------------------
    # Elastic pool: scale-up / scale-down under controller actuation
    # ------------------------------------------------------------------

    def add_worker(self, now: float) -> int:
        """Grow the pool by one live worker; returns its (fresh) id.

        The id extends the index space (ids are never reused, like
        epochs), starts at epoch 0 with an empty ship ledger, and enters
        placement immediately.  Growing the pool re-shapes every model's
        placement rotation — deterministically, since the rotation is a
        pure function of (model, pool size).
        """
        worker = self.core.add_worker()
        # Core ids and router index space only ever grow together, so
        # the fresh id always lands exactly one past the current lists.
        while len(self.epochs) <= worker:
            self.epochs.append(0)
            self.alive.append(True)
            self.draining.append(False)
            self.last_heartbeat.append(None)
            self.shipped.append({})
        self.workers = len(self.epochs)
        self._scale_ups.inc()
        self.metrics.gauge("cluster_workers").set(self.workers)
        self._record("add_worker", worker, round(now, 9))
        if self.tracer is not None:
            self.tracer.event(
                "add_worker", now, track=f"worker:{worker}",
            )
        return worker

    def retire_worker(self, worker: int, now: float) -> None:
        """Permanently remove an **idle** worker from placement.

        Unlike :meth:`crash_worker` (which expects a restart), a retired
        worker never comes back: its id stays dead, its epoch is bumped
        so any straggling completion from it is dropped as stale, and
        the scheduler core forgets it.  Refuses while a batch is in
        flight (drain first — in-flight epoch safety) and refuses to
        retire the last live worker.
        """
        if not self.alive[worker]:
            raise ValidationError(
                f"worker {worker} is not alive; only live idle workers "
                f"can be retired"
            )
        if worker in self._busy:
            raise ValidationError(
                f"cannot retire worker {worker} with batch "
                f"{self._busy[worker].batch_id} in flight; drain first"
            )
        live = sum(
            1 for w in range(self.workers)
            if self.alive[w] and w != worker
        )
        if live < 1:
            raise ValidationError(
                "cannot retire the last live worker"
            )
        self.core.remove_worker(worker)
        self.epochs[worker] += 1
        self.alive[worker] = False
        self.draining[worker] = False
        self.shipped[worker] = {}
        self.last_heartbeat[worker] = None
        self._retires.inc()
        self._record("retire", worker, self.epochs[worker], round(now, 9))
        if self.tracer is not None:
            self.tracer.event(
                "retire", now, track=f"worker:{worker}",
                epoch=self.epochs[worker],
            )

    def idle_live_workers(self) -> List[int]:
        """Live, non-draining workers with no batch in flight."""
        return [
            w for w in range(self.workers)
            if self.alive[w] and not self.draining[w]
            and w not in self._busy
        ]

    @property
    def live_workers(self) -> int:
        return sum(1 for a in self.alive if a)


# ---------------------------------------------------------------------------
# Discrete-event engine (the determinism harness)
# ---------------------------------------------------------------------------

#: Event kinds, in processing order at equal timestamps (mirrors
#: :mod:`repro.serve.loadgen`): completions free workers before crashes,
#: arrivals, timers, control ticks, health checks, and hangs look at
#: the pool.
_COMPLETION, _CRASH, _ARRIVAL, _TIMER, _CONTROL, _HEALTH, _HANG = (
    0, 1, 2, 3, 4, 5, 6
)

#: Completion-event fault flags (decided deterministically at schedule
#: time from the FaultPlan's counters).
_F_CORRUPT, _F_DROP, _F_DUP = 1, 2, 4


class _SimQuery:
    """Minimal router payload: just a future."""

    __slots__ = ("future",)

    def __init__(self):
        self.future: "Future" = Future()


class ClusterSimRunner:
    """Discrete-event execution of a :class:`RouterCore`.

    The cluster-shaped sibling of
    :class:`~repro.serve.loadgen.SimRunner`: same seeded arrival
    timelines and :class:`~repro.serve.loadgen.FaultPlan`, but crashes
    go through the router's epoch protocol (crash -> immediate respawn
    under a new epoch -> re-ship on next placement), and every routing
    decision — ship, assign, crash, restart, stale-drop — lands in the
    report's decision log.  ``ship_ms`` charges a simulated one-time
    shipping latency to the first batch a (worker, epoch) runs per
    model.
    """

    def __init__(
        self,
        profiles: Sequence[ModelProfile],
        workers: int = 2,
        max_retries: int = 1,
        tracer=None,
        metrics=None,
        ship_ms: float = 0.0,
        controller=None,
        control_interval_s: float = 1.0,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        heartbeat_interval_s: float = 1.0,
        heartbeat_timeout_s: float = DEFAULT_HEARTBEAT_TIMEOUT_S,
        dlq_limit: int = 64,
    ):
        if not profiles:
            raise ValidationError(
                "ClusterSimRunner needs at least one profile"
            )
        if ship_ms < 0:
            raise ValidationError(f"ship_ms must be >= 0, got {ship_ms}")
        if controller is not None and control_interval_s <= 0:
            raise ValidationError(
                f"control_interval_s must be > 0, got {control_interval_s}"
            )
        if heartbeat_interval_s <= 0:
            raise ValidationError(
                f"heartbeat_interval_s must be > 0, got "
                f"{heartbeat_interval_s}"
            )
        self.profiles: Dict[str, ModelProfile] = {
            p.name: p for p in profiles
        }
        self.workers = workers
        self.ship_ms = ship_ms
        self.heartbeat_interval_s = heartbeat_interval_s
        self.clock = VirtualClock()
        self.tracer = tracer
        self.router = RouterCore(
            workers=workers,
            max_retries=max_retries,
            record_decisions=True,
            tracer=tracer,
            metrics=metrics,
            heartbeat_timeout_s=heartbeat_timeout_s,
            retry_policy=retry_policy,
            breaker=breaker,
            dlq_limit=dlq_limit,
        )
        for profile in profiles:
            self.router.add_model(
                profile.name,
                capacity=profile.capacity,
                weight=profile.weight,
                max_pending=profile.max_pending,
                service_ms=profile.service_ms,
            )
        #: Optional control plane (``repro.control.Controller``): ticked
        #: every ``control_interval_s`` of virtual time while the run
        #: has work, between event processing and dispatch — so an
        #: actuation (scale-up, weight change) affects the very next
        #: placement decision, deterministically.
        self.controller = controller
        self.control_interval_s = control_interval_s
        self._used = False

    # -- controller actuation seams (used by repro.control plants) ------

    def add_worker(self, now: float) -> int:
        """Grow the simulated pool mid-run; returns the new worker id."""
        worker = self.router.add_worker(now)
        self.router.worker_started(worker, now)
        return worker

    def retire_worker(self, worker: int, now: float) -> None:
        """Retire an idle simulated worker mid-run."""
        self.router.retire_worker(worker, now)

    def run(self, arrivals: Sequence[Arrival],
            faults: FaultPlan = FaultPlan()) -> SimReport:
        if self._used:
            raise ValidationError(
                "a ClusterSimRunner runs once; build a fresh one per run"
            )
        self._used = True
        clock, router = self.clock, self.router
        for worker in range(self.workers):
            router.worker_started(worker, 0.0)

        events: List[Tuple[float, int, int, object]] = []
        order = itertools.count()

        def push(time: float, kind: int, data: object) -> None:
            heapq.heappush(events, (time, kind, next(order), data))

        for index, arrival in enumerate(arrivals):
            push(arrival.time, _ARRIVAL, (index, arrival))
        for k, crash_time in enumerate(faults.worker_crashes):
            push(crash_time, _CRASH, k % self.workers)
        for k, hang_time in enumerate(faults.worker_hangs):
            push(hang_time, _HANG, k % self.workers)
        if faults.worker_hangs:
            push(self.heartbeat_interval_s, _HEALTH, None)
        if self.controller is not None:
            push(self.control_interval_s, _CONTROL, None)

        batch_counter = 0
        slow_hits = 0
        ship_counter = 0
        completion_counter = 0
        service_ms_total = 0.0
        capacity_total = 0
        packed_order: Dict[str, List[int]] = {}
        timers_scheduled: set = set()
        remaining_arrivals = len(arrivals)
        flushed = False
        last_completion_t = 0.0
        poison_indices = set(faults.poison_queries)
        poison_seqs: set = set()
        #: ticket seq -> arrival index (the bit-identity key).
        seq_value: Dict[int, int] = {}
        results: Dict[int, int] = {}
        hung: set = set()
        dropped_batches: set = set()

        def sim_result(queue: str, index: int) -> int:
            # The simulated "bits": a pure function of (model, query),
            # so a faulted run must reproduce the fault-free values
            # exactly or the identity check fails.
            return zlib.crc32(f"{queue}:{index}".encode())

        def crash_and_respawn(worker: int, now: float) -> None:
            router.crash_worker(worker, now)
            # The pool keeps its size: the replacement spawns
            # immediately under the bumped epoch with an empty ship
            # ledger (its first batch per model pays ship_ms again).
            router.restart_worker(worker, now)
            hung.discard(worker)

        def dispatch(now: float) -> None:
            nonlocal batch_counter, slow_hits, ship_counter
            nonlocal completion_counter, service_ms_total, capacity_total
            ship_delay: Dict[int, float] = {}
            corrupted_ship: set = set()
            for action in router.dispatch(now):
                if isinstance(action, ShipAction):
                    ship_delay[action.worker] = (
                        ship_delay.get(action.worker, 0.0) + self.ship_ms
                    )
                    if faults.corrupt_ship_every:
                        ship_counter += 1
                        if ship_counter % faults.corrupt_ship_every == 0:
                            corrupted_ship.add(action.worker)
                    continue
                assignment = action.assignment
                worker = (
                    action.worker if isinstance(action, HedgeAction)
                    else assignment.worker
                )
                batch_counter += 1
                profile = self.profiles[assignment.queue]
                service_ms = profile.service_ms
                if (
                    faults.slow_every
                    and batch_counter % faults.slow_every == 0
                ):
                    # Optionally ramp: each hit is slower than the last.
                    service_ms *= (
                        faults.slow_factor + faults.slow_ramp * slow_hits
                    )
                    slow_hits += 1
                service_ms += ship_delay.pop(worker, 0.0)
                service_ms_total += service_ms
                if not isinstance(action, HedgeAction):
                    capacity_total += profile.capacity
                    for ticket in assignment.tickets:
                        packed_order.setdefault(
                            ticket.tenant, []
                        ).append(ticket.seq)
                if worker in corrupted_ship:
                    # The envelope arrived corrupted: the worker's
                    # fail-closed verify kills it at load time.
                    corrupted_ship.discard(worker)
                    push(now + service_ms * MS, _CRASH,
                         (worker, router.epochs[worker]))
                    continue
                if any(t.seq in poison_seqs
                       for t in assignment.tickets):
                    # Poison: the worker dies mid-batch, no completion.
                    push(now + 0.5 * service_ms * MS, _CRASH,
                         (worker, router.epochs[worker]))
                    continue
                flags = 0
                completion_counter += 1
                n = completion_counter
                if (
                    faults.corrupt_completion_every
                    and n % faults.corrupt_completion_every == 0
                ):
                    flags |= _F_CORRUPT
                if (
                    faults.drop_completion_every
                    and n % faults.drop_completion_every == 0
                ):
                    flags |= _F_DROP
                if (
                    faults.duplicate_completion_every
                    and n % faults.duplicate_completion_every == 0
                ):
                    flags |= _F_DUP
                push(
                    now + service_ms * MS,
                    _COMPLETION,
                    (assignment, action.epoch, worker, flags),
                )
            wake_at = router.next_wake_time(now)
            if wake_at is not None and wake_at > now:
                key = round(wake_at, 9)
                if key not in timers_scheduled:
                    timers_scheduled.add(key)
                    push(wake_at, _TIMER, None)

        while events or router.outstanding:
            if not events:
                # Only partial batches remain and nothing will ever cut
                # them: the end-of-run flush.
                router.flush()
                dispatch(clock.now())
                if not events:
                    break  # every remaining future is terminal
                continue
            time, kind, _, data = heapq.heappop(events)
            now = clock.advance_to(time)
            if kind == _COMPLETION:
                assignment, epoch, worker, flags = data
                if worker in hung and router.epochs[worker] == epoch:
                    pass  # frozen mid-batch: the result never arrives
                elif (
                    flags & _F_DROP
                    and assignment.batch_id not in dropped_batches
                ):
                    # Lost completion: at most once per batch, so the
                    # hedge replica's result can still land.
                    dropped_batches.add(assignment.batch_id)
                elif flags & _F_CORRUPT:
                    # Corrupted completion envelope: fail-closed — the
                    # engine treats the sender as faulty and crashes it
                    # (the batch takes the normal park/quarantine path).
                    if (
                        router.epochs[worker] == epoch
                        and router.alive[worker]
                    ):
                        crash_and_respawn(worker, now)
                else:
                    accepted = router.complete(
                        assignment, epoch, now, OUTCOME_OK,
                        worker=worker,
                    )
                    if accepted:
                        last_completion_t = now
                        for ticket in assignment.tickets:
                            index = seq_value.get(ticket.seq)
                            if index is not None:
                                results[index] = sim_result(
                                    assignment.queue, index
                                )
                    if flags & _F_DUP:
                        # The duplicate arrives on the heels of the
                        # first copy and must drop as stale.
                        router.complete(
                            assignment, epoch, now, OUTCOME_OK,
                            worker=worker,
                        )
                # else: a superseded incarnation's batch — dropped and
                # recorded; the crash path already parked its tickets.
            elif kind == _CRASH:
                if isinstance(data, tuple):
                    # Dynamic (fault-induced) crash, epoch-guarded: a
                    # respawned incarnation must not die for its
                    # predecessor's poison.
                    worker, guard_epoch = data
                    if (
                        router.alive[worker]
                        and router.epochs[worker] == guard_epoch
                    ):
                        crash_and_respawn(worker, now)
                else:
                    crash_and_respawn(data, now)
            elif kind == _ARRIVAL:
                index, arrival = data
                remaining_arrivals -= 1
                deadline = (
                    None if arrival.deadline_ms is None
                    else now + arrival.deadline_ms * MS
                )
                try:
                    ticket = router.submit(
                        arrival.model,
                        _SimQuery(),
                        now,
                        tenant=arrival.tenant,
                        deadline=deadline,
                        priority=arrival.priority,
                    )
                except RejectedQuery:
                    pass  # counted by the core; open-loop load sheds
                else:
                    seq_value[ticket.seq] = index
                    if index in poison_indices:
                        poison_seqs.add(ticket.seq)
            elif kind == _CONTROL:
                self.controller.tick(now)
                # Re-arm only while the run still has work: an idle
                # control loop must not keep the simulation alive.
                if remaining_arrivals > 0 or router.outstanding > 0:
                    push(now + self.control_interval_s, _CONTROL, None)
            elif kind == _HEALTH:
                for worker in range(router.workers):
                    if router.alive[worker] and worker not in hung:
                        router.heartbeat(
                            worker, router.epochs[worker], now
                        )
                for worker in router.check_health(now):
                    crash_and_respawn(worker, now)
                if remaining_arrivals > 0 or router.outstanding > 0:
                    push(now + self.heartbeat_interval_s, _HEALTH, None)
            elif kind == _HANG:
                # The router is NOT told: a hung worker looks alive
                # until its heartbeats go silent past the timeout.
                hung.add(data)
            # _TIMER carries no state: popping it (advancing the clock)
            # makes due cuts/parks/hedges visible to dispatch().
            if remaining_arrivals == 0 and not flushed:
                router.flush()
                flushed = True
            dispatch(now)
            deliver_failures(router.drain_failures())

        deliver_failures(router.drain_failures())
        first_t = arrivals[0].time if arrivals else 0.0
        return SimReport(
            stats=router.stats(),
            decisions=list(router.decisions or []),
            duration_s=max(0.0, last_completion_t - first_t),
            service_ms_total=service_ms_total,
            capacity_total=capacity_total,
            threads=self.workers,
            packed_order=packed_order,
            results=results,
            dead_letters=[
                dict(entry.as_dict(),
                     value=seq_value.get(entry.seq))
                for entry in router.dlq.entries()
            ],
        )


# ---------------------------------------------------------------------------
# Real engine: multiprocessing workers behind pipes
# ---------------------------------------------------------------------------


class _ClusterQuery:
    """Router payload for one real query: features plus its future."""

    __slots__ = ("features", "future")

    def __init__(self, features):
        self.features = features
        self.future: "Future" = Future()


class ClusterService:
    """The ``register / submit / flush / stats`` facade over real workers.

    A thin engine in the PR 4 sense: all placement/failover logic lives
    in the :class:`RouterCore`; this class only moves bytes — spawning
    ``workers`` processes (``multiprocessing`` *spawn* context, so every
    shipped object must pickle), sending ship/eval messages from
    :meth:`RouterCore.dispatch`, and running one receiver thread that
    completes batches, answers the router's cut timers, pings for
    heartbeats, and replaces crashed workers under a fresh epoch.

    The registry, session keys, and every query future stay router-side;
    workers see raw integer features and return plain numbers.
    """

    #: Receiver wake-up granularity: the loop re-checks cut timers and
    #: liveness at least this often (slack cuts in real mode are
    #: best-effort at this resolution).
    POLL_INTERVAL_S = 0.05

    def __init__(
        self,
        workers: int = 2,
        engine: str = "tape",
        backend: Optional[str] = None,
        max_retries: int = 1,
        default_deadline_ms: Optional[float] = None,
        max_queue: Optional[int] = None,
        verify_oracle: bool = True,
        tracer=None,
        metrics=None,
        clock=None,
        heartbeat_interval_s: float = 5.0,
        heartbeat_timeout_s: float = DEFAULT_HEARTBEAT_TIMEOUT_S,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        dlq_limit: int = 64,
        worker_entry=None,
    ):
        from multiprocessing import get_context

        from repro.serve.registry import ModelRegistry

        if heartbeat_interval_s <= 0:
            raise ValidationError(
                f"heartbeat_interval_s must be > 0, got "
                f"{heartbeat_interval_s}"
            )
        if heartbeat_interval_s >= heartbeat_timeout_s:
            raise ValidationError(
                f"heartbeat_interval_s ({heartbeat_interval_s}) must be "
                f"< heartbeat_timeout_s ({heartbeat_timeout_s}); a "
                f"worker pinged less often than the liveness horizon "
                f"would always look dead"
            )
        self.clock = clock if clock is not None else RealClock()
        self.engine = engine
        self.backend = backend
        self.verify_oracle = verify_oracle
        self.default_deadline_ms = default_deadline_ms
        self.max_queue = max_queue
        self.heartbeat_interval_s = heartbeat_interval_s
        #: Spawn target for pool processes; tests swap in a chaos shim
        #: (see repro.serve.faults.chaos_worker_main).  Must be
        #: spawn-picklable.
        self._worker_entry = worker_entry
        self.router = RouterCore(
            workers=workers,
            max_retries=max_retries,
            record_decisions=True,
            tracer=tracer,
            metrics=metrics,
            heartbeat_timeout_s=heartbeat_timeout_s,
            retry_policy=retry_policy,
            breaker=breaker,
            dlq_limit=dlq_limit,
        )
        self.registry = ModelRegistry(metrics=self.router.metrics)
        self._mp = get_context("spawn")
        self._lock = threading.Lock()
        self._completion = threading.Condition(self._lock)
        self._envelopes: Dict[str, ShippedModel] = {}
        self._registered: Dict[str, object] = {}
        #: batch_id -> (assignment, epoch) awaiting a worker result.
        self._inflight: Dict[int, Tuple[Assignment, int]] = {}
        self._procs: List[object] = [None] * workers
        self._conns: List[object] = [None] * workers
        self._closed = False
        now = self.clock.now()
        for worker in range(workers):
            self._spawn(worker, self.router.epochs[worker], now)
        self._receiver = threading.Thread(
            target=self._receive_loop, name="cluster-receiver", daemon=True
        )
        self._receiver.start()

    # -- lifecycle ------------------------------------------------------

    def __enter__(self) -> "ClusterService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _spawn(self, worker: int, epoch: int, now: float) -> None:
        from repro.serve.worker import worker_main

        entry = (
            self._worker_entry if self._worker_entry is not None
            else worker_main
        )
        parent, child = self._mp.Pipe()
        proc = self._mp.Process(
            target=entry,
            args=(child, worker, epoch),
            daemon=True,
            name=f"copse-worker-{worker}",
        )
        proc.start()
        child.close()
        self._procs[worker] = proc
        self._conns[worker] = parent
        self.router.worker_started(worker, now)

    def close(self) -> None:
        """Stop the pool (idempotent).  Pending queries fail loudly.

        A receiver thread that outlives its join timeout is a leak, not
        a nuisance: it still holds pipe handles and can race a later
        service in the same process.  The leak is counted
        (``cluster_receiver_leaked``) and warned about instead of being
        swallowed.
        """
        import warnings

        with self._lock:
            if self._closed:
                return
            self._closed = True
            self.router.close()
            conns = [c for c in self._conns if c is not None]
        for conn in conns:
            try:
                conn.send((MSG_STOP,))
            except (OSError, ValueError, BrokenPipeError):
                pass
        self._receiver.join(timeout=5.0)
        if self._receiver.is_alive():
            self.router.metrics.counter("cluster_receiver_leaked").inc()
            warnings.warn(
                "ClusterService receiver thread failed to stop within "
                "5s of close(); leaking it (pipe handles stay held)",
                RuntimeWarning,
                stacklevel=2,
            )
        for proc in self._procs:
            if proc is not None:
                proc.join(timeout=5.0)
                if proc.is_alive():
                    proc.terminate()
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        failures = self.router.drain_failures()
        deliver_failures(failures)

    @property
    def closed(self) -> bool:
        return self._closed

    # -- registration ---------------------------------------------------

    def register_model(self, name: str, model, **kwargs):
        """Compile/encrypt once router-side and announce to the router.

        The worker pool receives the resulting
        :class:`~repro.serve.transport.ShippedModel` lazily, exactly
        once per (worker, epoch), when placement first assigns the model
        there.  Accepts :meth:`ModelRegistry.register` keywords.
        """
        kwargs.setdefault("engine", self.engine)
        kwargs.setdefault("backend", self.backend)
        registered = self.registry.register(name, model, **kwargs)
        envelope = ShippedModel.from_registered(registered)
        with self._lock:
            self.router.add_model(
                name,
                capacity=registered.layout.capacity,
                max_pending=self.max_queue,
                service_ms=registered.estimated_batch_ms,
                fingerprint=envelope.fingerprint,
            )
            self._envelopes[name] = envelope
            self._registered[name] = registered
        return registered

    def preload(self, name: str) -> None:
        """Eagerly ship ``name`` to every live worker (warm the pool)."""
        now = self.clock.now()
        with self._lock:
            envelope = self._envelopes[name]
            for worker in range(self.router.workers):
                if not self.router.alive[worker]:
                    continue
                if self.router.shipped[worker].get(name) == (
                    envelope.fingerprint
                ):
                    continue
                self.router.shipped[worker][name] = envelope.fingerprint
                self.router._ships.inc()
                self.router._record(
                    "ship", worker, self.router.epochs[worker], name,
                    round(now, 9),
                )
                self._conns[worker].send((MSG_LOAD, envelope))

    # -- control-plane seams --------------------------------------------

    def set_tenant_weight(self, name: str, weight: float) -> float:
        """Retune a model queue's fair-share weight; returns the old."""
        now = self.clock.now()
        with self._lock:
            return self.router.set_weight(name, weight, now)

    def set_admission_limit(self, name: str,
                            limit: Optional[int]) -> Optional[int]:
        """Rebound a model queue's admission limit; returns the old."""
        now = self.clock.now()
        with self._lock:
            return self.router.set_admission_limit(name, limit, now)

    def add_worker(self) -> int:
        """Grow the pool by one spawned worker; returns its fresh id."""
        now = self.clock.now()
        with self._lock:
            if self._closed:
                raise ValidationError("cluster is closed")
            worker = self.router.add_worker(now)
            while len(self._procs) <= worker:
                self._procs.append(None)
                self._conns.append(None)
            self._spawn(worker, self.router.epochs[worker], now)
            self._dispatch_locked(now)
        return worker

    def retire_worker(self, worker: int) -> None:
        """Permanently stop one **idle** worker (the id is never reused).

        Refuses (via the router) while the worker has a batch in flight
        or when it is the last live worker — the in-flight epoch-safety
        invariant the control plane's guards also enforce.
        """
        now = self.clock.now()
        with self._lock:
            self.router.retire_worker(worker, now)
            conn = self._conns[worker]
            proc = self._procs[worker]
            self._conns[worker] = None
            self._procs[worker] = None
        if conn is not None:
            try:
                conn.send((MSG_STOP,))
            except (OSError, ValueError, BrokenPipeError):
                pass
            try:
                conn.close()
            except OSError:
                pass
        if proc is not None:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()

    def set_model_engine(self, name: str, engine: str) -> None:
        """Flip a model's execution engine across the cluster, live.

        Drains in-flight work first (a torn batch must not straddle the
        flip), mutates the registry entry, and publishes a fresh ship
        key through :meth:`RouterCore.redeploy_model` — the compiled
        fingerprint is engine-independent, so the key is suffixed with
        the engine to force every worker ledger stale.
        """
        self.flush()
        self.drain()
        now = self.clock.now()
        with self._lock:
            registered = self.registry.set_engine(name, engine)
            envelope = ShippedModel.from_registered(registered)
            self._envelopes[name] = envelope
            self.router.redeploy_model(
                name, f"{envelope.fingerprint}:{registered.engine}", now
            )

    @property
    def workers(self) -> int:
        with self._lock:
            return self.router.live_workers

    # -- serving --------------------------------------------------------

    def submit(self, name: str, features, tenant: str = "default",
               deadline_ms: Optional[float] = None,
               priority: int = 0) -> "Future":
        """Admit one query; returns a future of its
        :class:`~repro.serve.batcher.ClassificationResult`."""
        from repro.serve.packing import validate_features

        registered = self.registry.get(name)
        validated = validate_features(registered.layout, features)
        payload = _ClusterQuery(validated)
        future = payload.future  # retries chain new futures onto this one
        effective = (
            deadline_ms if deadline_ms is not None
            else self.default_deadline_ms
        )
        now = self.clock.now()
        with self._lock:
            deadline = None if effective is None else now + effective * MS
            self.router.submit(
                name, payload, now, tenant=tenant, deadline=deadline,
                priority=priority,
            )
            self._dispatch_locked(now)
            failures = self.router.drain_failures()
        deliver_failures(failures)
        return future

    def classify_many(self, name: str, queries,
                      tenant: str = "default") -> List:
        futures = [self.submit(name, q, tenant=tenant) for q in queries]
        self.flush(name)
        return [f.result() for f in futures]

    def flush(self, name: Optional[str] = None) -> None:
        now = self.clock.now()
        with self._lock:
            self.router.flush(name)
            self._dispatch_locked(now)
            failures = self.router.drain_failures()
        deliver_failures(failures)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until no admitted query is queued or in flight."""
        with self._completion:
            return self._completion.wait_for(
                lambda: self.router.outstanding == 0, timeout=timeout
            )

    def stats(self) -> SchedulerStats:
        with self._lock:
            return self.router.stats()

    def metrics_snapshot(self) -> Dict:
        with self._lock:
            self.router.stats()
            return self.router.metrics.snapshot()

    @property
    def decisions(self) -> List[Tuple]:
        with self._lock:
            return list(self.router.decisions or [])

    def dlq(self) -> List[Dict]:
        """The quarantined (dead-lettered) queries, oldest first."""
        with self._lock:
            return self.router.dlq.as_dicts()

    # -- engine internals ----------------------------------------------

    def _dispatch_locked(self, now: float) -> None:
        for action in self.router.dispatch(now):
            if isinstance(action, ShipAction):
                self._conns[action.worker].send(
                    (MSG_LOAD, self._envelopes[action.model])
                )
                continue
            assignment = action.assignment
            worker = (
                action.worker if isinstance(action, HedgeAction)
                else assignment.worker
            )
            request = BatchRequest(
                batch_id=assignment.batch_id,
                model=assignment.queue,
                epoch=action.epoch,
                features=tuple(
                    tuple(t.payload.features) for t in assignment.tickets
                ),
                verify_oracle=self.verify_oracle,
            )
            # A hedge send reuses the primary's inflight entry: results
            # carry (worker, epoch), so either replica can resolve it.
            self._inflight[assignment.batch_id] = (assignment,
                                                   action.epoch)
            try:
                self._conns[worker].send((MSG_EVAL, request))
            except (OSError, ValueError, BrokenPipeError):
                pass  # the pipe just died; EOF handling crashes it

    def _receive_loop(self) -> None:
        from multiprocessing.connection import wait as conn_wait

        last_ping = self.clock.now()
        while True:
            with self._lock:
                if self._closed:
                    return
                conns = [c for c in self._conns if c is not None]
                now = self.clock.now()
                wake_at = self.router.next_wake_time(now)
            timeout = self.POLL_INTERVAL_S
            if wake_at is not None:
                timeout = min(timeout, max(0.0, wake_at - now))
            try:
                ready = conn_wait(conns, timeout)
            except OSError:
                ready = []
            resolutions = []
            with self._lock:
                if self._closed:
                    return
                now = self.clock.now()
                for conn in ready:
                    try:
                        worker = self._conns.index(conn)
                    except ValueError:
                        continue  # replaced while we waited
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        self._handle_crash_locked(worker, now)
                        continue
                    resolution = self._handle_message_locked(
                        worker, message, now
                    )
                    if resolution is not None:
                        resolutions.append(resolution)
                for worker in self.router.check_health(now):
                    self._kill_locked(worker)
                    self._handle_crash_locked(worker, now)
                if now - last_ping >= self.heartbeat_interval_s:
                    last_ping = now
                    for worker, conn in enumerate(self._conns):
                        if conn is None:
                            continue  # retired worker
                        try:
                            conn.send((MSG_PING,))
                        except (OSError, ValueError, BrokenPipeError):
                            pass
                self._dispatch_locked(now)
                failures = self.router.drain_failures()
                self._completion.notify_all()
            deliver_failures(failures)
            for resolve in resolutions:
                resolve()

    def _handle_message_locked(self, worker: int, message, now: float):
        tag = message[0]
        if tag == MSG_RESULT:
            return self._handle_result_locked(message[1], now)
        if tag in (MSG_READY, MSG_PONG):
            self.router.heartbeat(worker, message[2], now)
        # MSG_LOADED is informational; the ledger was updated at ship time.
        return None

    def _handle_result_locked(self, result, now: float):
        entry = self._inflight.pop(result.batch_id, None)
        if entry is None:
            return None  # duplicated or hedged-and-already-resolved
        assignment, _ = entry
        # Trust what the result *says* about its origin, not what the
        # dispatch remembered: a hedged batch resolves from whichever
        # replica answered first.
        worker = result.worker
        epoch = result.epoch
        if result.error is not None:
            # Deterministic worker-side failure: no retry (a second run
            # would fail identically); every ticket fails loudly.
            self.router.complete(assignment, epoch, now, OUTCOME_ERROR,
                                 worker=worker)
            return None
        if (
            result.bitvectors is None
            or len(result.bitvectors) != assignment.size
        ):
            # A truncated/corrupted completion envelope.  Fail closed:
            # the sender is lying about the batch shape, so treat it as
            # a worker fault — kill it and take the crash/respawn path
            # (the batch parks or quarantines; nothing is resolved from
            # a malformed result).
            self._inflight[assignment.batch_id] = entry
            if (
                worker < len(self.router.epochs)
                and epoch == self.router.epochs[worker]
                and self.router.alive[worker]
            ):
                self._kill_locked(worker)
                self._handle_crash_locked(worker, now)
            return None
        if result.degraded_engine is not None:
            registered = self._registered.get(assignment.queue)
            from_engine = (
                registered.engine if registered is not None else ""
            )
            self.router.record_degrade(
                assignment.queue, from_engine, result.degraded_engine,
                now,
            )
        if not self.router.complete(assignment, epoch, now, OUTCOME_OK,
                                    worker=worker):
            return None  # stale epoch: tickets already requeued
        registered = self._registered[assignment.queue]
        tickets = list(assignment.tickets)

        def resolve() -> None:
            from repro.core.runtime import InferenceResult
            from repro.serve.batcher import ClassificationResult

            spec = registered.spec
            size = len(tickets)
            for k, ticket in enumerate(tickets):
                bits = list(result.bitvectors[k])
                oracle_ok = (
                    None if result.oracle_ok is None
                    else bool(result.oracle_ok[k])
                )
                outcome = ClassificationResult(
                    model=registered.name,
                    features=list(ticket.payload.features),
                    result=InferenceResult(
                        bitvector=bits,
                        codebook=list(spec.codebook),
                        label_names=list(spec.label_names),
                    ),
                    batch_id=result.batch_id,
                    batch_fill=size,
                    batch_capacity=registered.layout.capacity,
                    amortized_ms=(
                        result.inference_ms / size if size else 0.0
                    ),
                    oracle_ok=oracle_ok,
                )
                future = ticket.payload.future
                if not future.done():
                    future.set_result(outcome)

        return resolve

    def _kill_locked(self, worker: int) -> None:
        proc = self._procs[worker]
        if proc is not None and proc.is_alive():
            proc.terminate()

    def _handle_crash_locked(self, worker: int, now: float) -> None:
        """Pipe EOF / liveness timeout: crash, respawn, re-place.

        The router decides the batch's fate (park behind backoff,
        quarantine-bisect, promote a hedge replica); this engine only
        drops the dead inflight entry and respawns the process.  A
        None return means the batch survives on its hedge replica, so
        the inflight entry stays.
        """
        if not self.router.alive[worker]:
            return
        interrupted = self.router.crash_worker(worker, now)
        if interrupted is not None:
            self._inflight.pop(interrupted.batch_id, None)
        try:
            self._conns[worker].close()
        except OSError:
            pass
        proc = self._procs[worker]
        if proc is not None:
            proc.join(timeout=0.5)
            if proc.is_alive():
                proc.terminate()
        if self._closed:
            return
        epoch = self.router.restart_worker(worker, now)
        # restart_worker reset the liveness clock; _spawn re-seeds it
        # once the replacement is up.
        self._spawn(worker, epoch, now)


def _check_cluster_args(workers: int) -> None:
    if workers < 1:
        raise ValidationError(f"--workers must be >= 1, got {workers}")
