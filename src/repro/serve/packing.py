"""Cross-query SIMD packing: batch geometry, slot packing, demultiplexing.

A single COPSE query occupies at most ``required_width`` SIMD slots (the
widest vector its pipeline manipulates: ``max(q, b, labels)``), but the
paper's chosen parameters provide ``slot_count`` slots — 960 for the
Table 5 winner — leaving most of every ciphertext idle.  The serve
subsystem packs ``B`` independent queries into those idle slots:

* every logical per-query vector is padded to a fixed **stride**
  ``S = required_width`` and placed in its query's **block**
  ``[k*S, (k+1)*S)``;
* the batch **capacity** is ``B = slot_count // S`` (optionally capped);
* model structures are padded to the stride and **tiled** ``B`` times, so
  one slot-wise operation applies the model to every packed query at once;
* partial batches are padded with all-zero dummy queries so every batch
  runs the identical (input-independent) circuit at full width.

Demultiplexing slices the decrypted result bitvector back into per-query
label bitvectors: query ``k`` owns slots ``[k*S, k*S + labels)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import CompileError, ValidationError
from repro.core.compiler import CompiledModel
from repro.fhe.params import EncryptionParams
from repro.ir.plan import tile_blocks


@dataclass(frozen=True)
class BatchLayout:
    """Slot geometry shared by every batch evaluated against one model.

    ``stride`` is the padded per-query block width; ``capacity`` is the
    number of query blocks packed per ciphertext.  The per-stage logical
    widths (``quantized_branching`` for the comparison, ``branching``
    after the reshuffle, ``num_labels`` after the levels) are carried so
    the batched runtime can rotate *within* each stage's width.
    """

    stride: int
    capacity: int
    precision: int
    n_features: int
    max_multiplicity: int
    quantized_branching: int
    branching: int
    num_labels: int

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValidationError(
                f"batch capacity must be >= 1, got {self.capacity}"
            )
        if self.stride < max(
            self.quantized_branching, self.branching, self.num_labels
        ):
            raise ValidationError(
                f"stride {self.stride} is narrower than the widest "
                f"pipeline vector"
            )

    @property
    def batched_width(self) -> int:
        """Total slots occupied by one fully packed batch."""
        return self.stride * self.capacity

    def block_slice(self, k: int) -> slice:
        """The slot range owned by query ``k``."""
        if not 0 <= k < self.capacity:
            raise ValidationError(
                f"block {k} outside batch capacity {self.capacity}"
            )
        return slice(k * self.stride, (k + 1) * self.stride)

    def describe(self) -> str:
        return (
            f"stride={self.stride} capacity={self.capacity} "
            f"width={self.batched_width}"
        )


def plan_layout(
    compiled: CompiledModel,
    params: EncryptionParams,
    max_batch_size: int | None = None,
) -> BatchLayout:
    """Compute the batch geometry for a compiled model under ``params``.

    The capacity is ``slot_count // stride`` — how many padded queries fit
    in one ciphertext — optionally capped by ``max_batch_size`` (useful to
    trade amortization for latency).  Models too wide to pack twice
    degrade gracefully to ``capacity == 1``.
    """
    stride = compiled.required_width()
    if not params.supports_width(stride):
        raise ValidationError(
            f"model width {stride} does not fit in {params.slot_count} "
            f"SIMD slots ({params.describe()})"
        )
    capacity = params.slot_count // stride
    if max_batch_size is not None:
        if max_batch_size < 1:
            raise ValidationError(
                f"max_batch_size must be >= 1, got {max_batch_size}"
            )
        capacity = min(capacity, max_batch_size)
    return BatchLayout(
        stride=stride,
        capacity=capacity,
        precision=compiled.precision,
        n_features=compiled.n_features,
        max_multiplicity=compiled.max_multiplicity,
        quantized_branching=compiled.quantized_branching,
        branching=compiled.branching,
        num_labels=compiled.num_labels,
    )


# ---------------------------------------------------------------------------
# Packing
# ---------------------------------------------------------------------------


def validate_features(layout: BatchLayout, features: Sequence[int]) -> List[int]:
    """Check one query's features against the layout's public spec."""
    if len(features) != layout.n_features:
        raise ValidationError(
            f"model expects {layout.n_features} features, got {len(features)}"
        )
    limit = 1 << layout.precision
    out: List[int] = []
    for value in features:
        v = int(value)
        if not 0 <= v < limit:
            raise ValidationError(
                f"feature value {value} does not fit in "
                f"{layout.precision} unsigned bits"
            )
        out.append(v)
    return out


def pack_query_planes(
    layout: BatchLayout, queries: Sequence[Sequence[int]]
) -> np.ndarray:
    """Pack up to ``capacity`` queries into batched MSB-first bit planes.

    Each query is replicated to multiplicity ``K`` (Diane's Step 0),
    bit-sliced, padded to the stride, and placed in its block.  Unused
    blocks stay zero (the all-zero dummy query), so every batch presents
    the same shape to the input-independent circuit.

    Returns a ``(precision, stride * capacity)`` uint8 array.
    """
    if not queries:
        raise ValidationError("cannot pack an empty batch")
    if len(queries) > layout.capacity:
        raise ValidationError(
            f"{len(queries)} queries exceed the batch capacity "
            f"{layout.capacity}"
        )
    validated = [validate_features(layout, f) for f in queries]
    p = layout.precision
    q = layout.quantized_branching
    # One vectorized pass over the whole batch: replicate every query's
    # features to multiplicity K (np.repeat) and slice all bit planes
    # with shifts — no per-query or per-slot Python loops.
    values = np.asarray(validated, dtype=np.int64)
    replicated = np.repeat(values, layout.max_multiplicity, axis=1)  # (B, q)
    shifts = np.arange(p - 1, -1, -1, dtype=np.int64)  # MSB-first
    bits = ((replicated[:, None, :] >> shifts[None, :, None]) & 1).astype(
        np.uint8
    )  # (B, p, q)
    blocks = np.zeros((p, layout.capacity, layout.stride), dtype=np.uint8)
    blocks[:, : len(queries), :q] = bits.transpose(1, 0, 2)
    return blocks.reshape(p, layout.batched_width)


def tile_model_vector(layout: BatchLayout, vector: Sequence[int]) -> np.ndarray:
    """Pad a per-query model vector to the stride and tile it per block.

    This is how every model structure (threshold planes, reshuffle and
    level diagonals, level masks) is broadcast across the batch: the same
    values appear in every query's block, padding slots stay zero.  The
    tiling (and its validation) is :func:`repro.ir.plan.tile_blocks` —
    shared with the batched lowering so plan constants match the eager
    runtime's vectors — re-raised under serve's error type.
    """
    try:
        return tile_blocks(vector, layout.stride, layout.capacity)
    except CompileError as exc:
        raise ValidationError(str(exc)) from exc


def segment_mask(layout: BatchLayout, lo: int, hi: int) -> np.ndarray:
    """Batched 0/1 mask selecting block offsets ``[lo, hi)`` in every block.

    Used by the batched runtime's masked-rotation gather to choose which
    rotation supplies each slot of a block-local cyclic access.
    """
    if not 0 <= lo < hi <= layout.stride:
        raise ValidationError(
            f"mask segment [{lo}, {hi}) outside stride {layout.stride}"
        )
    block = np.zeros(layout.stride, dtype=np.uint8)
    block[lo:hi] = 1
    return np.tile(block, layout.capacity)


# ---------------------------------------------------------------------------
# Demultiplexing
# ---------------------------------------------------------------------------


def demux_bitvectors(
    layout: BatchLayout, bits: Sequence[int], count: int
) -> List[List[int]]:
    """Slice a decrypted batched result into per-query label bitvectors.

    ``count`` is the number of real (non-dummy) queries; dummy blocks are
    discarded.  Query ``k``'s bitvector is the first ``num_labels`` slots
    of its block.
    """
    if count < 0 or count > layout.capacity:
        raise ValidationError(
            f"cannot demux {count} queries from a batch of capacity "
            f"{layout.capacity}"
        )
    if len(bits) != layout.batched_width:
        raise ValidationError(
            f"result has {len(bits)} slots, expected {layout.batched_width}"
        )
    if isinstance(bits, np.ndarray):
        bits = bits.tolist()
    out: List[List[int]] = []
    for k in range(count):
        start = k * layout.stride
        block = bits[start : start + layout.num_labels]
        out.append(block if isinstance(block, list) else [int(b) for b in block])
    return out
