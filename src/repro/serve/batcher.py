"""Query batching: validate submissions, evaluate batches, demultiplex.

A :class:`QueryBatcher` fronts one registered model.  Submissions are
validated eagerly (bad queries fail at ``prepare`` time, before they can
poison a batch); queueing and batch *cutting* belong to the
deadline-aware :class:`~repro.serve.scheduler.Scheduler`, which hands
cut batches back here for evaluation.  Evaluating a batch runs the whole
amortized pipeline:

1. pack the queries' replicated-and-padded bit planes into shared slots
   and encrypt them once per plane (``data_encrypt``),
2. run the batched Algorithm 1 against the model's cached, once-encrypted
   :class:`~repro.serve.batched_runtime.BatchedEncryptedModel` — through
   the registered model's cached compiled
   :class:`~repro.ir.tape.CompiledTape` (``engine="tape"``, the serve
   default), its graph-walking
   :class:`~repro.ir.plan.InferencePlan` (``engine="plan"``), or the
   hand-scheduled interpreter (``engine="eager"``),
3. decrypt the single result ciphertext and demultiplex the slot blocks
   back into per-query label bitvectors,
4. optionally verify every bitvector against the plaintext oracle
   (``forest.label_bitvector``), and
5. resolve each query's future with a :class:`ClassificationResult`.

Every batch evaluation uses a fresh :class:`~repro.fhe.context.FheContext`
built on the registered model's FHE backend (same parameters, private
tracker), so concurrent workers never share mutable tracker state; the
per-batch tracker travels in the :class:`BatchRecord` for thread-safe
aggregation by the service.
"""

from __future__ import annotations

from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ValidationError
from repro.core.runtime import (
    ENGINE_MEGAKERNEL,
    ENGINE_PLAN,
    ENGINE_TAPE,
    InferenceResult,
    PHASE_DATA_ENCRYPT,
    PHASE_MEGAKERNEL,
    PHASE_PLAN,
    PHASE_TAPE,
)
from repro.core.seccomp import VARIANT_ALOUFI
from repro.fhe.context import FheContext
from repro.fhe.tracker import OpTracker
from repro.serve.batched_runtime import (
    BATCH_INFERENCE_PHASES,
    BatchedCopseServer,
    encrypt_batch,
)
from repro.serve.packing import demux_bitvectors, validate_features
from repro.serve.registry import RegisteredModel


@dataclass(frozen=True)
class ClassificationResult:
    """One query's demultiplexed result, with batch provenance."""

    model: str
    features: List[int]
    result: InferenceResult
    batch_id: int
    batch_fill: int
    batch_capacity: int
    #: Simulated inference ms of the batch divided by its real queries.
    amortized_ms: float
    #: Oracle agreement (None when verification was disabled or no source
    #: forest is available).
    oracle_ok: Optional[bool] = None

    @property
    def bitvector(self) -> List[int]:
        return self.result.bitvector

    def plurality_name(self) -> str:
        return self.result.plurality_name()


@dataclass
class BatchRecord:
    """Measurements from one evaluated batch (for stats aggregation)."""

    model: str
    batch_id: int
    size: int
    capacity: int
    tracker: OpTracker
    phase_ms: Dict[str, float]
    inference_ms: float
    data_encrypt_ms: float
    #: Number of queries whose bitvector disagreed with the plaintext
    #: oracle (None when verification was disabled).
    oracle_failures: Optional[int]

    @property
    def oracle_ok(self) -> Optional[bool]:
        if self.oracle_failures is None:
            return None
        return self.oracle_failures == 0

    @property
    def amortized_ms(self) -> float:
        return self.inference_ms / self.size if self.size else 0.0


@dataclass
class PendingQuery:
    """A validated submission waiting to be packed into a batch."""

    features: List[int]
    future: "Future[ClassificationResult]" = field(default_factory=Future)


@dataclass
class CutBatch:
    """A batch cut from the pending queue, ready for evaluation."""

    batch_id: int
    entries: List[PendingQuery]


class QueryBatcher:
    """Validates queries for one model and evaluates its cut batches."""

    def __init__(
        self,
        registered: RegisteredModel,
        seccomp_variant: str = VARIANT_ALOUFI,
        verify_oracle: bool = True,
        tracer=None,
        clock=None,
    ):
        self.registered = registered
        self.seccomp_variant = seccomp_variant
        self.verify_oracle = verify_oracle and registered.forest is not None
        #: Optional span tracer + clock: when both are set, evaluation
        #: emits pack / execute / demux / resolve stage spans parented
        #: on the scheduler's batch span (zero-cost when None).
        self.tracer = tracer
        self.clock = clock

    # ------------------------------------------------------------------
    # Submission-time validation
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self.registered.layout.capacity

    def prepare(self, features) -> PendingQuery:
        """Validate one query and wrap it for scheduling.

        Fails here — before the query can occupy a queue slot or poison
        a batch — on arity/domain errors and on the pathological case of
        a layout whose per-query block is wider than the ciphertext
        itself (possible only with a hand-built layout, since
        :func:`~repro.serve.packing.plan_layout` rejects it at
        registration).
        """
        layout = self.registered.layout
        slots = self.registered.params.slot_count
        if layout.stride > slots:
            raise ValidationError(
                f"query width {layout.stride} exceeds the {slots} SIMD "
                f"slots of the registered parameters; this model cannot "
                f"pack even one query per ciphertext"
            )
        validated = validate_features(layout, features)
        return PendingQuery(features=validated)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(
        self,
        batch: CutBatch,
        parent_span: Optional[int] = None,
        worker: Optional[int] = None,
    ) -> BatchRecord:
        """Run one batch end to end and resolve its futures.

        An evaluation failure is propagated through every future in the
        batch before being re-raised, so submitters always learn the
        outcome and the failure stays contained to those queries.

        ``parent_span``/``worker`` (from the scheduler's
        :class:`~repro.serve.scheduler.Assignment`) parent the stage
        spans a tracing-enabled batcher emits.
        """
        try:
            return self._evaluate(batch, parent_span, worker)
        except BaseException as exc:
            for entry in batch.entries:
                if not entry.future.done():
                    entry.future.set_exception(exc)
            raise

    def _evaluate(
        self,
        batch: CutBatch,
        parent_span: Optional[int] = None,
        worker: Optional[int] = None,
    ) -> BatchRecord:
        entries = batch.entries
        registered = self.registered
        layout = registered.layout
        tracer = self.tracer if self.clock is not None else None
        if tracer is not None:
            track = "batcher" if worker is None else f"worker:{worker}"

            def stage(name: str):
                return tracer.begin(
                    name, self.clock.now(), parent=parent_span,
                    track=track, batch_id=batch.batch_id,
                )

        # One consistent snapshot of the mutable registration fields:
        # the control plane may flip engine/backend between batches
        # (registry.set_engine / switch_backend), and a batch must run
        # entirely under one configuration.
        engine = registered.engine
        backend = registered.backend
        keys = registered.keys
        batched_model = registered.batched_model

        ctx = FheContext(registered.params, backend=backend)
        server = BatchedCopseServer(
            ctx,
            seccomp_variant=self.seccomp_variant,
            engine=engine,
            plan=registered.plan,
            tape=registered.tape,
            megakernel=registered.megakernel,
        )

        if tracer is not None:
            span = stage("pack")
        query = encrypt_batch(
            ctx, layout, [e.features for e in entries], keys
        )
        if tracer is not None:
            tracer.end(span, self.clock.now(), size=len(entries))
            span = stage("execute")
        encrypted = server.classify_batch(batched_model, query)
        if tracer is not None:
            tracer.end(
                span, self.clock.now(), engine=engine
            )
            span = stage("demux")
        bits = ctx.decrypt_bits(encrypted, keys.secret)
        bitvectors = demux_bitvectors(layout, bits, len(entries))
        if tracer is not None:
            tracer.end(span, self.clock.now())
            span = stage("resolve")

        cost = registered.cost_model
        if engine == ENGINE_TAPE:
            inference_phases = (PHASE_TAPE,)
        elif engine == ENGINE_MEGAKERNEL:
            inference_phases = (PHASE_MEGAKERNEL,)
        elif engine == ENGINE_PLAN:
            inference_phases = (PHASE_PLAN,)
        else:
            inference_phases = BATCH_INFERENCE_PHASES
        phase_ms = {
            phase: cost.phase_sequential_ms(ctx.tracker, phase)
            for phase in (PHASE_DATA_ENCRYPT,) + inference_phases
        }
        inference_ms = sum(phase_ms[p] for p in inference_phases)
        batch_id = batch.batch_id

        oracle_failures: Optional[int] = 0 if self.verify_oracle else None
        spec = registered.spec
        size = len(entries)
        for k, entry in enumerate(entries):
            result = InferenceResult(
                bitvector=bitvectors[k],
                codebook=list(spec.codebook),
                label_names=list(spec.label_names),
            )
            oracle_ok: Optional[bool] = None
            if self.verify_oracle:
                expected = registered.forest.label_bitvector(entry.features)
                oracle_ok = bitvectors[k] == expected
                if not oracle_ok:
                    oracle_failures += 1
            entry.future.set_result(
                ClassificationResult(
                    model=registered.name,
                    features=list(entry.features),
                    result=result,
                    batch_id=batch_id,
                    batch_fill=size,
                    batch_capacity=layout.capacity,
                    amortized_ms=inference_ms / size,
                    oracle_ok=oracle_ok,
                )
            )
        record = BatchRecord(
            model=registered.name,
            batch_id=batch_id,
            size=size,
            capacity=layout.capacity,
            tracker=ctx.tracker,
            phase_ms=phase_ms,
            inference_ms=inference_ms,
            data_encrypt_ms=phase_ms[PHASE_DATA_ENCRYPT],
            oracle_failures=oracle_failures,
        )
        if tracer is not None:
            tracer.end(
                span, self.clock.now(),
                oracle_failures=oracle_failures or 0,
            )
        return record
