"""Clock abstraction: real wall time vs a virtual, test-driven time.

Everything in the serving layer that needs a notion of "now" — deadline
arithmetic, slack-based batch cuts, latency measurement — reads it from a
:class:`Clock` instead of calling :func:`time.monotonic` directly.  That
single seam is what makes the scheduler simulable: under a
:class:`VirtualClock` a discrete-event harness (:mod:`repro.serve.loadgen`)
can replay thousands of queries with injected faults and get *identical*
scheduling decisions on every run, with zero wall-clock sleeps.

Times are monotonic **seconds** (float).  Durations exposed to users are
milliseconds (the paper's unit); the conversion happens at the API edges.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

from repro.errors import ValidationError

#: Seconds per millisecond — the serve API speaks ms, clocks speak s.
MS = 1e-3


@runtime_checkable
class Clock(Protocol):
    """Source of monotonic time for the serving layer."""

    def now(self) -> float:
        """Current time in seconds.  Must never decrease."""
        ...


class RealClock:
    """Wall-clock time (``time.monotonic``) — the production clock."""

    def now(self) -> float:
        return time.monotonic()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "RealClock()"


class VirtualClock:
    """Manually advanced time — the simulation/testing clock.

    The clock only moves when the harness advances it, so a test can put
    a query exactly at its deadline, or replay a five-minute soak in
    milliseconds of real time.  Advancing backwards is an error: the
    scheduler's decisions assume monotonic time.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Move time forward by ``dt`` seconds; returns the new time."""
        if dt < 0:
            raise ValidationError(
                f"cannot advance a VirtualClock by {dt} s (negative)"
            )
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Jump to absolute time ``t`` (>= now); returns the new time."""
        if t < self._now:
            raise ValidationError(
                f"cannot rewind a VirtualClock from {self._now} to {t}"
            )
        self._now = float(t)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VirtualClock(t={self._now:.6f})"
