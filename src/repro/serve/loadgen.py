"""Deterministic load generation + discrete-event scheduler simulation.

The scheduler's interesting behaviors — deadline-forced cuts, admission
rejections, fair sharing under skew, crash retries — only show up under
sustained, bursty, multi-tenant load, which wall-clock tests cannot
exercise without flakiness.  This module replays exactly that load under
a :class:`~repro.serve.simclock.VirtualClock`:

* :func:`generate_arrivals` — a seeded open-loop arrival schedule:
  per-tenant Poisson processes (``rate_qps``) plus periodic bursts,
  merged into one deterministic timeline;
* :class:`FaultPlan` — injected worker crashes (at fixed virtual times)
  and slowed batches (every Nth batch takes ``slow_factor`` longer);
* :class:`SimRunner` — a discrete-event loop driving the *same*
  :class:`~repro.serve.scheduler.SchedulerCore` production uses, with
  per-model service times taken from the cost model (the circuits are
  input-independent, so a batch's simulated cost is a constant of the
  model — no FHE evaluation is needed to know how long it takes).

Everything is seeded and the virtual clock never sleeps, so a
5,000-query soak with mixed tenants, bursts, and a mid-run worker crash
replays in well under ten seconds of real time and makes *identical*
scheduling decisions (and byte-identical stats) on every run.
"""

from __future__ import annotations

import heapq
import itertools
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import RejectedQuery, ValidationError
from repro.serve.scheduler import (
    OUTCOME_OK,
    SchedulerCore,
    SchedulerStats,
    deliver_failures,
)
from repro.serve.simclock import MS, VirtualClock

__all__ = [
    "ModelProfile",
    "TenantSpec",
    "FaultPlan",
    "Arrival",
    "generate_arrivals",
    "offered_load",
    "SimReport",
    "SimRunner",
]


@dataclass(frozen=True)
class ModelProfile:
    """What the simulator needs to know about one served model."""

    name: str
    #: Queries packed per batch (the layout capacity).
    capacity: int
    #: Simulated service time of one batch evaluation, in ms.  Constant
    #: per model because the batched circuit is input-independent.
    service_ms: float
    weight: float = 1.0
    max_pending: Optional[int] = None

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValidationError(
                f"profile {self.name!r}: capacity must be >= 1"
            )
        if self.service_ms <= 0:
            raise ValidationError(
                f"profile {self.name!r}: service_ms must be > 0"
            )

    @classmethod
    def from_registered(cls, registered, weight: float = 1.0,
                        max_pending: Optional[int] = None) -> "ModelProfile":
        """Profile a :class:`~repro.serve.registry.RegisteredModel`.

        The service time is the cached plan's analyzed cost — the same
        estimate the production scheduler uses for slack cuts.
        """
        service_ms = registered.estimated_batch_ms
        if service_ms is None:
            raise ValidationError(
                f"model {registered.name!r} has no cached plan to "
                f"estimate batch cost from; pass an explicit profile"
            )
        return cls(
            name=registered.name,
            capacity=registered.layout.capacity,
            service_ms=service_ms,
            weight=weight,
            max_pending=max_pending,
        )


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's traffic shape against one model."""

    name: str
    model: str
    #: Open-loop Poisson arrival rate (queries/second of virtual time).
    rate_qps: float = 0.0
    #: Optional periodic bursts: every ``burst_every_s`` seconds,
    #: ``burst_size`` queries arrive at the same instant.
    burst_every_s: Optional[float] = None
    burst_size: int = 0
    #: Relative deadline applied to every query (None = best-effort).
    deadline_ms: Optional[float] = None
    priority: int = 0

    def __post_init__(self) -> None:
        if self.rate_qps < 0:
            raise ValidationError(
                f"tenant {self.name!r}: rate_qps must be >= 0"
            )
        if self.rate_qps == 0 and not self.burst_size:
            raise ValidationError(
                f"tenant {self.name!r} generates no traffic: give it a "
                f"rate_qps or a burst"
            )
        if self.burst_size and not self.burst_every_s:
            raise ValidationError(
                f"tenant {self.name!r}: burst_size needs burst_every_s"
            )


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic fault injection for one simulation run.

    The chaos matrix.  ``worker_crashes``/``slow_every`` are honored by
    both :class:`~repro.serve.loadgen.SimRunner` and
    :class:`~repro.serve.cluster.ClusterSimRunner`; the remaining kinds
    (hangs, transport corruption, completion loss/duplication, poison
    queries) need the cluster's epoch/quarantine machinery and are
    cluster-sim only.  Everything is counter- or timeline-based, never
    random: two runs of the same plan inject byte-identical faults.
    """

    #: Virtual times at which a worker dies mid-whatever-it-is-doing.
    #: The k-th crash hits worker ``k % threads``; the worker restarts
    #: immediately (the pool keeps its size) but its in-flight batch
    #: takes the crash/retry path.
    worker_crashes: Tuple[float, ...] = ()
    #: Every Nth dispatched batch takes ``slow_factor`` times its normal
    #: service time (0 disables).  Models stragglers/GC pauses.
    slow_every: int = 0
    slow_factor: float = 1.0
    #: Each slowed batch is ``slow_ramp`` slower than the previous one
    #: (a degrading-worker ramp; 0 keeps the factor flat).
    slow_ramp: float = 0.0
    #: Virtual times at which a worker freezes *silently*: no EOF, no
    #: completions, no heartbeats.  Only the heartbeat-liveness path
    #: can detect it.  The k-th hang hits worker ``k % threads``.
    worker_hangs: Tuple[float, ...] = ()
    #: Every Nth shipped model envelope arrives corrupted; the worker's
    #: fail-closed verify kills it at load time (0 disables).
    corrupt_ship_every: int = 0
    #: Every Nth completion envelope arrives truncated; the router
    #: fail-closed treats the sender as faulty (0 disables).
    corrupt_completion_every: int = 0
    #: Every Nth completion is silently lost in transit (0 disables).
    #: Recovery needs hedging: enable it in the retry policy or the
    #: stuck batch never resolves.
    drop_completion_every: int = 0
    #: Every Nth completion arrives twice; the duplicate must drop as
    #: stale (0 disables).
    duplicate_completion_every: int = 0
    #: Arrival indices whose query is poison: any worker evaluating a
    #: batch containing it dies mid-batch.  Quarantine bisection must
    #: isolate it into the dead-letter queue.
    poison_queries: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.slow_every < 0:
            raise ValidationError("slow_every must be >= 0")
        if self.slow_every and self.slow_factor < 1.0:
            raise ValidationError(
                f"slow_factor must be >= 1, got {self.slow_factor}"
            )
        if self.slow_ramp < 0:
            raise ValidationError(
                f"slow_ramp must be >= 0, got {self.slow_ramp}"
            )
        for field_name in (
            "corrupt_ship_every", "corrupt_completion_every",
            "drop_completion_every", "duplicate_completion_every",
        ):
            value = getattr(self, field_name)
            if value < 0:
                raise ValidationError(
                    f"{field_name} must be >= 0, got {value}"
                )
        if any(index < 0 for index in self.poison_queries):
            raise ValidationError(
                "poison_queries are arrival indices and must be >= 0"
            )


@dataclass(frozen=True)
class Arrival:
    """One query arriving at a fixed virtual time."""

    time: float
    tenant: str
    model: str
    deadline_ms: Optional[float]
    priority: int


def generate_arrivals(
    tenants: Sequence[TenantSpec],
    seed: int,
    total_queries: Optional[int] = None,
    duration_s: Optional[float] = None,
) -> List[Arrival]:
    """A deterministic merged arrival timeline for ``tenants``.

    Each tenant gets its own child RNG (derived from ``seed`` and its
    position), so adding a tenant never perturbs the others' streams.
    Stop after ``total_queries`` arrivals or at ``duration_s`` of
    virtual time, whichever is given (at least one must be).
    """
    if total_queries is None and duration_s is None:
        raise ValidationError(
            "generate_arrivals needs total_queries or duration_s"
        )
    if not tenants:
        raise ValidationError("generate_arrivals needs at least one tenant")

    def tenant_stream(index: int, spec: TenantSpec):
        rng = np.random.default_rng([seed, index])
        t = 0.0
        burst_k = 1
        while True:
            nxt_poisson = (
                t + float(rng.exponential(1.0 / spec.rate_qps))
                if spec.rate_qps > 0 else None
            )
            nxt_burst = (
                spec.burst_every_s * burst_k if spec.burst_size else None
            )
            if nxt_burst is not None and (
                nxt_poisson is None or nxt_burst <= nxt_poisson
            ):
                for _ in range(spec.burst_size):
                    yield Arrival(
                        time=nxt_burst,
                        tenant=spec.name,
                        model=spec.model,
                        deadline_ms=spec.deadline_ms,
                        priority=spec.priority,
                    )
                burst_k += 1
                t = nxt_burst
            else:
                t = nxt_poisson
                yield Arrival(
                    time=t,
                    tenant=spec.name,
                    model=spec.model,
                    deadline_ms=spec.deadline_ms,
                    priority=spec.priority,
                )

    # Merge the per-tenant streams by (time, tenant index) — a total,
    # deterministic order even for simultaneous (burst) arrivals.
    streams = [
        iter(tenant_stream(i, spec)) for i, spec in enumerate(tenants)
    ]
    heads: List[Tuple[float, int, int, Arrival]] = []
    tiebreak = itertools.count()
    for i, stream in enumerate(streams):
        arrival = next(stream)
        heads.append((arrival.time, i, next(tiebreak), arrival))
    heapq.heapify(heads)

    out: List[Arrival] = []
    while heads:
        _, i, _, arrival = heapq.heappop(heads)
        if duration_s is not None and arrival.time > duration_s:
            continue  # this tenant's stream ran past the horizon
        out.append(arrival)
        if total_queries is not None and len(out) >= total_queries:
            break
        nxt = next(streams[i])
        heapq.heappush(heads, (nxt.time, i, next(tiebreak), nxt))
    return out


def offered_load(
    tenants: Sequence[TenantSpec],
    profiles: Sequence[ModelProfile],
    threads: int,
) -> float:
    """Mean worker utilization the tenants' rates imply.

    Each model contributes ``rate / capacity`` batches per second, each
    costing ``service_ms``; dividing by the pool size gives the classic
    rho.  Bursts add load on top, so treat this as a lower bound.
    """
    by_model = {p.name: p for p in profiles}
    rho = 0.0
    for spec in tenants:
        profile = by_model[spec.model]
        rate = spec.rate_qps
        if spec.burst_size and spec.burst_every_s:
            rate += spec.burst_size / spec.burst_every_s
        rho += rate / profile.capacity * profile.service_ms * MS
    return rho / threads


class _SimQuery:
    """Minimal scheduler payload: just a future."""

    __slots__ = ("future",)

    def __init__(self):
        self.future: "Future" = Future()


@dataclass
class SimReport:
    """Everything one simulation run produced."""

    stats: SchedulerStats
    #: The decision log: (batch_id, queue, worker, size, first_seq,
    #: cut_time) per dispatched batch — the determinism witness.
    decisions: List[Tuple]
    #: Virtual seconds from first arrival to last completion.
    duration_s: float
    #: Total simulated batch-evaluation ms across the run.
    service_ms_total: float
    #: Slots available across all dispatched batches (for fill rate).
    capacity_total: int
    threads: int
    #: The order queries were packed into batches: tenant -> seq list.
    #: FIFO-within-tenant holds iff each list is sorted.
    packed_order: Dict[str, List[int]] = field(default_factory=dict)
    #: Simulated per-query "bits": arrival index -> deterministic result
    #: hash (cluster sim only; the bit-identity key of chaos soaks).
    results: Dict[int, int] = field(default_factory=dict)
    #: Dead-lettered (quarantined) queries, as dicts (cluster sim only).
    dead_letters: List[Dict] = field(default_factory=list)

    def service_stats(self):
        """The run as a :class:`~repro.serve.service.ServiceStats`.

        FHE-op fields are zero (the simulator never evaluates circuits);
        scheduling fields carry the full picture.  Byte-identical across
        same-seed runs — the soak determinism lock compares exactly
        this object's ``render()``.
        """
        from repro.serve.service import ServiceStats

        return ServiceStats(
            queries=self.stats.completed,
            batches=self.stats.batches,
            capacity_total=self.capacity_total,
            phase_ms={},
            op_counts={},
            inference_ms=round(self.service_ms_total, 6),
            data_encrypt_ms=0.0,
            setup_ms=0.0,
            oracle_failures=0,
            threads=self.threads,
            scheduler=self.stats,
        )


#: Event kinds, in processing order at equal timestamps: completions
#: free workers before crashes/arrivals/timers look at the pool, and
#: control ticks observe a fully-settled instant.
_COMPLETION, _CRASH, _ARRIVAL, _TIMER, _CONTROL = 0, 1, 2, 3, 4


class SimRunner:
    """Discrete-event execution of a :class:`SchedulerCore`.

    One instance runs one simulation (the core's counters are
    cumulative).  ``run`` replays an arrival list against the given
    model profiles, injecting the fault plan, and returns a
    :class:`SimReport`.
    """

    def __init__(
        self,
        profiles: Sequence[ModelProfile],
        threads: int = 2,
        max_retries: int = 1,
        tracer=None,
        metrics=None,
        controller=None,
        control_interval_s: float = 1.0,
    ):
        if not profiles:
            raise ValidationError("SimRunner needs at least one profile")
        if controller is not None and control_interval_s <= 0:
            raise ValidationError("control_interval_s must be > 0")
        self.profiles: Dict[str, ModelProfile] = {
            p.name: p for p in profiles
        }
        self.threads = threads
        self.clock = VirtualClock()
        #: Optional span tracer threaded into the core.  Every event the
        #: simulation processes is timestamped by the virtual clock, so a
        #: traced run exports byte-identical JSONL/Chrome traces per
        #: seed (the trace-determinism soak locks exactly this).
        self.tracer = tracer
        self.core = SchedulerCore(
            workers=threads,
            max_retries=max_retries,
            record_decisions=True,
            tracer=tracer,
            metrics=metrics,
        )
        for profile in profiles:
            self.core.add_queue(
                profile.name,
                capacity=profile.capacity,
                weight=profile.weight,
                max_pending=profile.max_pending,
                service_ms=profile.service_ms,
            )
        #: Optional control plane: ``controller.tick(now)`` runs every
        #: ``control_interval_s`` of virtual time while the run still
        #: has work, between event processing and dispatch.
        self.controller = controller
        self.control_interval_s = control_interval_s
        #: Per-worker epoch, keyed by worker id (ids grow and are never
        #: reused under elastic scaling): bumped on crash so the stale
        #: completion of an interrupted batch is ignored when it pops.
        self._epochs: Dict[int, int] = {w: 0 for w in range(threads)}
        self._removed: set = set()
        self._used = False

    # -- control-plane seams ------------------------------------------

    def add_worker(self) -> int:
        """Grow the simulated pool; returns the new worker's id."""
        worker = self.core.add_worker()
        self._epochs[worker] = 0
        return worker

    def remove_worker(self, worker: int) -> None:
        """Retire an idle simulated worker (id is never reused)."""
        self.core.remove_worker(worker)
        self._removed.add(worker)

    def run(self, arrivals: Sequence[Arrival],
            faults: FaultPlan = FaultPlan()) -> SimReport:
        if self._used:
            raise ValidationError(
                "a SimRunner runs once; build a fresh one per run"
            )
        self._used = True
        clock, core = self.clock, self.core

        events: List[Tuple[float, int, int, object]] = []
        order = itertools.count()

        def push(time: float, kind: int, data: object) -> None:
            heapq.heappush(events, (time, kind, next(order), data))

        for arrival in arrivals:
            push(arrival.time, _ARRIVAL, arrival)
        for k, crash_time in enumerate(faults.worker_crashes):
            push(crash_time, _CRASH, k % self.threads)
        if self.controller is not None:
            push(self.control_interval_s, _CONTROL, None)

        epochs = self._epochs
        batch_counter = 0
        service_ms_total = 0.0
        capacity_total = 0
        packed_order: Dict[str, List[int]] = {}
        timers_scheduled: set = set()
        remaining_arrivals = len(arrivals)
        flushed = False
        last_completion_t = 0.0

        def dispatch(now: float) -> None:
            nonlocal batch_counter, service_ms_total, capacity_total
            while True:
                assignment = core.assign(now)
                if assignment is None:
                    break
                batch_counter += 1
                profile = self.profiles[assignment.queue]
                service_ms = profile.service_ms
                if (
                    faults.slow_every
                    and batch_counter % faults.slow_every == 0
                ):
                    service_ms *= faults.slow_factor
                service_ms_total += service_ms
                capacity_total += profile.capacity
                for ticket in assignment.tickets:
                    packed_order.setdefault(ticket.tenant, []).append(
                        ticket.seq
                    )
                push(
                    now + service_ms * MS,
                    _COMPLETION,
                    (assignment, epochs[assignment.worker]),
                )
            cut_at = core.next_cut_time()
            if cut_at is not None and cut_at > now:
                key = round(cut_at, 9)
                if key not in timers_scheduled:
                    timers_scheduled.add(key)
                    push(cut_at, _TIMER, None)

        while events or core.outstanding:
            if not events:
                # Only partial batches remain and nothing will ever cut
                # them: the end-of-run flush (mirrors service.flush()).
                core.flush()
                dispatch(clock.now())
                if not events:
                    break  # every remaining future is terminal
                continue
            time, kind, _, data = heapq.heappop(events)
            now = clock.advance_to(time)
            if kind == _COMPLETION:
                assignment, epoch = data
                if epochs[assignment.worker] != epoch:
                    continue  # interrupted by a crash; already requeued
                core.complete(assignment, now, OUTCOME_OK)
                last_completion_t = now
            elif kind == _CRASH:
                worker = data
                if worker in self._removed:
                    continue  # retired before its scheduled crash
                epochs[worker] += 1
                core.crash_worker(worker, now)
            elif kind == _ARRIVAL:
                arrival = data
                remaining_arrivals -= 1
                deadline = (
                    None if arrival.deadline_ms is None
                    else now + arrival.deadline_ms * MS
                )
                try:
                    core.submit(
                        arrival.model,
                        _SimQuery(),
                        now,
                        tenant=arrival.tenant,
                        deadline=deadline,
                        priority=arrival.priority,
                    )
                except RejectedQuery:
                    pass  # counted by the core; open-loop load sheds
            elif kind == _CONTROL:
                self.controller.tick(now)
                # Re-arm only while the run still has work: an idle
                # control loop must not keep the simulation alive.
                if remaining_arrivals > 0 or core.outstanding:
                    push(now + self.control_interval_s, _CONTROL, None)
            # _TIMER carries no state: popping it (advancing the clock)
            # is what makes the due slack cut visible to dispatch().
            if remaining_arrivals == 0 and not flushed:
                core.flush()
                flushed = True
            dispatch(now)
            # Resolve retry-exhaustion failures as they happen (the sim
            # is single-threaded, so "outside the lock" is trivially
            # satisfied here).
            deliver_failures(core.drain_failures())

        deliver_failures(core.drain_failures())
        first_t = arrivals[0].time if arrivals else 0.0
        return SimReport(
            stats=core.stats(),
            decisions=list(core.decisions or []),
            duration_s=max(0.0, last_completion_t - first_t),
            service_ms_total=service_ms_total,
            capacity_total=capacity_total,
            threads=self.threads,
            packed_order=packed_order,
        )
