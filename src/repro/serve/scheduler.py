"""Event-driven, deadline-aware, multi-tenant batch scheduler.

The first serve iteration was a FIFO thread pool: callers cut batches
themselves and workers drained a job queue.  That shape cannot express
the regimes a production service actually lives in — deadlines, tenant
fairness, overload, worker failure — so the scheduler now owns the whole
scheduling problem:

* **Per-model bounded queues with admission control.**  Every registered
  model gets a queue with an optional ``max_pending`` bound; a submit
  against a full queue raises :class:`~repro.errors.RejectedQuery`
  instead of growing without bound.
* **Adaptive batch cutting.**  A batch is cut when it fills *or* when the
  oldest queued query's slack runs out (its deadline minus the model's
  estimated batch service time), not only on a count trigger.  Partial
  batches with no deadline pressure wait for an explicit flush.
* **Weighted fair sharing across models.**  Queues carry weights; ready
  queues are served in virtual-time order (served queries divided by
  weight), so a hot model cannot starve a cold one.
* **Priorities and FIFO-within-tenant.**  Within a queue, queries order
  by descending priority then submission order, so equal-priority
  queries of one tenant are always packed in the order they arrived.
* **Retry on worker failure.**  A crashed worker's batch is requeued
  (bounded by ``max_retries``) at its original queue position; queries
  that exhaust their retries fail loudly with
  :class:`~repro.errors.ServeError`.  "Crash" means the worker died
  mid-batch (``crash_worker`` — the fault-injection harness today, a
  lost remote/process worker in a distributed deployment).  A batch
  whose *evaluation raises* is deliberately not retried: the pipeline
  is deterministic, so a retry would fail identically — those queries
  fail immediately with the original exception.

The design splits into a **pure decision core** (:class:`SchedulerCore`:
no threads, no clock ownership — every method takes ``now``) and thin
execution engines.  :class:`Scheduler` here drives the core with real
worker threads and a :class:`~repro.serve.simclock.Clock`;
:mod:`repro.serve.loadgen` drives the *same* core from a deterministic
discrete-event loop under a :class:`~repro.serve.simclock.VirtualClock`.
Because every scheduling decision lives in the core and depends only on
(queue state, time, free workers), the simulated decisions are exactly
the decisions production would make.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import RejectedQuery, ServeError, ValidationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    OUTCOME_CANCELLED,
    OUTCOME_COMPLETED,
    OUTCOME_FAILED,
    OUTCOME_REJECTED,
)
from repro.serve.simclock import MS, Clock, RealClock

#: Completions whose latencies feed the percentile window; older samples
#: age out so a long-lived service neither grows without bound nor pays
#: an ever-larger sort per stats() snapshot.
LATENCY_WINDOW = 65536

#: ``complete()`` outcomes.
OUTCOME_OK = "ok"          #: batch evaluated, futures resolved
OUTCOME_ERROR = "error"    #: evaluation raised — deterministic, no retry
OUTCOME_CRASH = "crash"    #: worker died mid-batch — requeue and retry


@dataclass
class QueryTicket:
    """One admitted query: its payload plus scheduling metadata.

    ``payload`` is opaque to the scheduler except for a ``future``
    attribute (a :class:`concurrent.futures.Future`), which the scheduler
    uses to drop cancelled work and to deliver scheduling failures.
    ``deadline`` is absolute clock seconds (None = best-effort).
    """

    queue: str
    tenant: str
    payload: Any
    submit_time: float
    deadline: Optional[float]
    priority: int
    seq: int
    retries: int = 0
    #: Root ``query`` span id (None when tracing is disabled).
    span: Optional[int] = None
    #: The currently-open ``queue_wait`` child span (one per attempt).
    wait_span: Optional[int] = None

    @property
    def future(self):
        return self.payload.future

    def sort_key(self) -> Tuple[int, int]:
        # Higher priority first; FIFO (submission order) within a
        # priority level — which makes FIFO-within-tenant structural.
        return (-self.priority, self.seq)


@dataclass
class Assignment:
    """A cut batch bound to a worker, ready to evaluate."""

    batch_id: int
    queue: str
    worker: int
    tickets: List[QueryTicket]
    cut_time: float
    #: ``batch`` span id, linked to member query spans (None when
    #: tracing is disabled) — evaluators parent their stage spans on it.
    span: Optional[int] = None

    @property
    def size(self) -> int:
        return len(self.tickets)


@dataclass(frozen=True)
class SchedulerStats:
    """Immutable snapshot of the scheduler's counters.

    Conservation invariant (once drained): ``submitted == completed +
    rejected + failed + cancelled + dead_lettered``.  Latency
    percentiles are nearest-rank, in ms, over a sliding window
    of the most recent :data:`LATENCY_WINDOW` completions (bounded
    memory under sustained load); the max is exact and all-time.
    """

    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    failed: int = 0
    cancelled: int = 0
    retries: int = 0
    deadline_misses: int = 0
    worker_crashes: int = 0
    #: Queries quarantine isolated as poison (terminal, not in failed).
    dead_lettered: int = 0
    batches: int = 0
    latency_p50_ms: float = 0.0
    latency_p99_ms: float = 0.0
    latency_max_ms: float = 0.0
    per_tenant_submitted: Dict[str, int] = field(default_factory=dict)
    per_tenant_completed: Dict[str, int] = field(default_factory=dict)
    per_queue_completed: Dict[str, int] = field(default_factory=dict)

    @property
    def deadline_miss_rate(self) -> float:
        """Fraction of completed queries that finished past deadline."""
        if not self.completed:
            return 0.0
        return self.deadline_misses / self.completed

    def render(self) -> str:
        lines = [
            f"  submitted / completed: {self.submitted} / {self.completed}",
            f"  rejected (admission) : {self.rejected}",
            f"  failed / cancelled   : {self.failed} / {self.cancelled}",
            f"  retries / crashes    : {self.retries} / "
            f"{self.worker_crashes}",
            f"  dead-lettered        : {self.dead_lettered}",
            f"  deadline misses      : {self.deadline_misses} "
            f"({100.0 * self.deadline_miss_rate:.2f}%)",
            f"  latency p50 / p99 ms : {self.latency_p50_ms:.3f} / "
            f"{self.latency_p99_ms:.3f}",
        ]
        if self.per_tenant_submitted:
            tenants = ", ".join(
                f"{t}={n}" for t, n in sorted(
                    self.per_tenant_submitted.items()
                )
            )
            lines.append(f"  submitted per tenant : {tenants}")
        if self.per_tenant_completed:
            tenants = ", ".join(
                f"{t}={n}" for t, n in sorted(
                    self.per_tenant_completed.items()
                )
            )
            lines.append(f"  completed per tenant : {tenants}")
        if self.per_queue_completed:
            queues = ", ".join(
                f"{q}={n}" for q, n in sorted(
                    self.per_queue_completed.items()
                )
            )
            lines.append(f"  completed per queue  : {queues}")
        return "\n".join(lines)


def _percentile(ranked: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted list."""
    if not ranked:
        return 0.0
    rank = max(1, -(-int(q * len(ranked) * 100) // 100))  # ceil(q * n)
    rank = min(rank, len(ranked))
    return ranked[rank - 1]


class _ModelQueue:
    """Pending queries and fair-share bookkeeping for one model."""

    __slots__ = (
        "name", "capacity", "weight", "max_pending", "service_s",
        "heap", "flush_pending", "vtime", "_cut_at", "_cut_dirty",
    )

    def __init__(self, name: str, capacity: int, weight: float,
                 max_pending: Optional[int], service_ms: Optional[float]):
        if capacity < 1:
            raise ValidationError(
                f"queue {name!r}: batch capacity must be >= 1, got "
                f"{capacity}"
            )
        if weight <= 0:
            raise ValidationError(
                f"queue {name!r}: fair-share weight must be > 0, got "
                f"{weight}"
            )
        if max_pending is not None and max_pending < 1:
            raise ValidationError(
                f"queue {name!r}: max_pending must be >= 1, got "
                f"{max_pending}"
            )
        self.name = name
        self.capacity = capacity
        self.weight = weight
        self.max_pending = max_pending
        #: Estimated batch service time in seconds, for slack cuts.
        #: Seeded from the caller's estimate (the plan's analyzed cost,
        #: whose simulated ms are *not* wall ms) and then refined by
        #: :meth:`observe_service` with each completed batch's measured
        #: duration in the engine's own clock units — so the real-clock
        #: engine converges on wall time and the simulator stays exact.
        self.service_s = (service_ms or 0.0) * MS
        self.heap: List[Tuple[Tuple[int, int], QueryTicket]] = []
        self.flush_pending = False
        #: Fair-share virtual time: served queries / weight.
        self.vtime = 0.0
        self._cut_at: Optional[float] = None
        self._cut_dirty = True

    def push(self, ticket: QueryTicket) -> None:
        heapq.heappush(self.heap, (ticket.sort_key(), ticket))
        if ticket.deadline is None or self._cut_dirty:
            return  # no new cut pressure / cache already needs a rescan
        # A push can only *advance* the cut frontier, so the cached
        # minimum updates in O(1) — a burst of N submissions must not
        # trigger N full heap rescans from the workers it wakes.
        cut = ticket.deadline - self.service_s
        self._cut_at = cut if self._cut_at is None else min(self._cut_at, cut)

    def invalidate_cut_cache(self) -> None:
        self._cut_dirty = True

    def observe_service(self, seconds: float) -> None:
        """Fold one completed batch's measured duration into the
        service-time estimate (EWMA), tightening future slack cuts."""
        if seconds < 0:
            return
        if self.service_s <= 0:
            self.service_s = seconds
        else:
            self.service_s += 0.3 * (seconds - self.service_s)
        self._cut_dirty = True

    def cut_deadline(self) -> Optional[float]:
        """Earliest time any queued ticket forces a cut (slack = 0).

        Cached between queue mutations: workers re-poll this on every
        wake, so recomputing by heap scan each time would make a burst
        of N submissions cost O(N^2) across the pool.
        """
        if self._cut_dirty:
            times = [
                t.deadline - self.service_s
                for _, t in self.heap
                if t.deadline is not None
            ]
            self._cut_at = min(times) if times else None
            self._cut_dirty = False
        return self._cut_at

    def ready(self, now: float) -> bool:
        if not self.heap:
            return False
        if len(self.heap) >= self.capacity or self.flush_pending:
            return True
        cut_at = self.cut_deadline()
        return cut_at is not None and cut_at <= now


class SchedulerCore:
    """The pure scheduling state machine.

    Thread-unsafe by design: callers (the threaded engine, the
    discrete-event simulator) serialize access.  Every method takes the
    current time explicitly, so the core itself never reads a clock —
    that is what makes simulated and real scheduling decisions
    identical.
    """

    def __init__(self, workers: int, max_retries: int = 1,
                 record_decisions: bool = False,
                 tracer=None,
                 metrics: Optional[MetricsRegistry] = None):
        if workers < 1:
            raise ValidationError(f"workers must be >= 1, got {workers}")
        if max_retries < 0:
            raise ValidationError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        self.workers = workers
        self.max_retries = max_retries
        self._queues: Dict[str, _ModelQueue] = {}
        self._free: List[int] = list(range(workers))
        self._running: Dict[int, Assignment] = {}
        #: Worker ids are never reused: a retired worker's id stays dead
        #: (like epochs), so decision logs and traces are unambiguous.
        self._next_worker_id = workers
        self._seq = itertools.count()
        self._batch_ids = itertools.count(1)
        self._closed = False
        #: Optional audit log of (batch_id, queue, worker, size,
        #: first_seq, cut_time) — the determinism witness.
        self.decisions: Optional[List[Tuple]] = (
            [] if record_decisions else None
        )
        #: Span tracer (``repro.obs.trace.Tracer``), or None.  Every
        #: tracer call is guarded by ``is not None`` so a traceless core
        #: pays nothing, and every call passes the caller's explicit
        #: ``now`` — the core still never reads a clock.
        self.tracer = tracer
        # ---- counters (registry-backed: one source of truth) ----------
        #: All scheduling counters live in a MetricsRegistry; the plain
        #: attributes below are the cached instruments, so hot-path
        #: increments stay attribute lookups.  stats() reads the same
        #: registry back into the immutable SchedulerStats view.
        self.metrics: MetricsRegistry = (
            metrics if metrics is not None else MetricsRegistry()
        )
        m = self.metrics
        self._submitted = m.counter("sched_submitted")
        self._completed = m.counter("sched_completed")
        self._rejected = m.counter("sched_rejected")
        self._failed = m.counter("sched_failed")
        self._cancelled = m.counter("sched_cancelled")
        self._retries = m.counter("sched_retries")
        self._deadline_misses = m.counter("sched_deadline_misses")
        self._worker_crashes = m.counter("sched_worker_crashes")
        self._dead_lettered = m.counter("sched_dead_lettered")
        self._batches = m.counter("sched_batches")
        #: Latency percentiles are computed over a sliding window of the
        #: most recent completions — bounded memory and a bounded sort
        #: per stats() call under sustained load (the max is tracked
        #: exactly, all-time).
        self._latencies_ms = m.histogram(
            "sched_latency_ms", window=LATENCY_WINDOW
        )
        self._pending_failures: List[Tuple[Any, Exception]] = []

    # ------------------------------------------------------------------
    # Queue management
    # ------------------------------------------------------------------

    def add_queue(
        self,
        name: str,
        capacity: int,
        weight: float = 1.0,
        max_pending: Optional[int] = None,
        service_ms: Optional[float] = None,
    ) -> None:
        if name in self._queues:
            raise ValidationError(f"queue {name!r} already exists")
        queue = _ModelQueue(name, capacity, weight, max_pending, service_ms)
        # A late joiner starts at the least-served peer's virtual time:
        # it cannot replay the service it "missed" before registering
        # (starting at 0 would let it monopolize the pool to catch up),
        # yet it is not handicapped beyond the current fairness frontier.
        if self._queues:
            queue.vtime = min(q.vtime for q in self._queues.values())
        self._queues[name] = queue

    def remove_queue(self, name: str,
                     now: Optional[float] = None) -> int:
        """Drop a queue, failing its still-pending tickets.  Returns the
        number of tickets failed."""
        queue = self._queues.pop(name, None)
        if queue is None:
            return 0
        failed = 0
        for _, ticket in queue.heap:
            self._fail_ticket(
                ticket,
                ServeError(
                    f"model {name!r} was unregistered with the query "
                    f"still queued"
                ),
                now=now,
            )
            failed += 1
        return failed

    def queue_names(self) -> List[str]:
        return sorted(self._queues)

    # ------------------------------------------------------------------
    # Control seams: live policy actuation, no restart required
    # ------------------------------------------------------------------

    def set_weight(self, name: str, weight: float) -> float:
        """Change a queue's fair-share weight; returns the old weight.

        Takes effect on the next :meth:`assign`: virtual time already
        accrued is kept (a weight change re-prices *future* service, it
        does not replay the past).
        """
        queue = self._queue_or_raise(name)
        if weight <= 0:
            raise ValidationError(
                f"queue {name!r}: fair-share weight must be > 0, got "
                f"{weight}"
            )
        old = queue.weight
        queue.weight = weight
        return old

    def set_max_pending(self, name: str,
                        limit: Optional[int]) -> Optional[int]:
        """Change a queue's admission bound; returns the old bound.

        ``None`` removes the bound.  Queries already admitted above a
        tightened bound stay queued — the bound gates *admission*, it
        never drops accepted work.
        """
        queue = self._queue_or_raise(name)
        if limit is not None and limit < 1:
            raise ValidationError(
                f"queue {name!r}: max_pending must be >= 1, got {limit}"
            )
        old = queue.max_pending
        queue.max_pending = limit
        return old

    def add_worker(self) -> int:
        """Grow the pool by one idle worker; returns its (fresh) id."""
        worker = self._next_worker_id
        self._next_worker_id += 1
        self.workers += 1
        heapq.heappush(self._free, worker)
        return worker

    def remove_worker(self, worker: int) -> None:
        """Retire an **idle** worker from the pool.

        Refuses to retire a worker with a batch in flight (the caller
        must drain it first — in-flight work is never abandoned), to
        retire an unknown/already-retired id, and to shrink below one
        worker.  The id is never reused.
        """
        if self.workers <= 1:
            raise ValidationError(
                "cannot retire the last worker (the pool must keep at "
                "least one)"
            )
        if worker in self._running:
            raise ValidationError(
                f"cannot retire worker {worker} with batch "
                f"{self._running[worker].batch_id} in flight; drain it "
                f"first"
            )
        if worker not in self._free:
            raise ValidationError(
                f"worker {worker} is not in the pool (retired already, "
                f"or never existed)"
            )
        self._free.remove(worker)
        heapq.heapify(self._free)
        self.workers -= 1

    def idle_workers(self) -> List[int]:
        """Ids of workers with no batch in flight (ascending)."""
        return sorted(self._free)

    def pending(self, name: Optional[str] = None) -> int:
        if name is not None:
            queue = self._queues.get(name)
            return len(queue.heap) if queue else 0
        return sum(len(q.heap) for q in self._queues.values())

    @property
    def running(self) -> int:
        """Tickets currently being evaluated on workers."""
        return sum(a.size for a in self._running.values())

    @property
    def outstanding(self) -> int:
        """Admitted tickets not yet terminal (queued or running)."""
        return self.pending() + self.running

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Refuse new submissions (idempotent)."""
        self._closed = True

    # ------------------------------------------------------------------
    # Submission / flush
    # ------------------------------------------------------------------

    def submit(
        self,
        name: str,
        payload: Any,
        now: float,
        tenant: str = "default",
        deadline: Optional[float] = None,
        priority: int = 0,
    ) -> QueryTicket:
        """Admit one query (or raise).

        Raises :class:`ServeError` once closed and
        :class:`RejectedQuery` when the queue is at its bound — the two
        explicit overload/lifecycle signals.
        """
        if self._closed:
            raise ServeError(
                "cannot submit to a closed scheduler: close() has already "
                "stopped admission (create a new service to keep serving)"
            )
        queue = self._queue_or_raise(name)
        if (
            queue.max_pending is not None
            and len(queue.heap) >= queue.max_pending
        ):
            self._rejected.inc()
            self._submitted.inc()
            self.metrics.counter(
                "sched_tenant_submitted", {"tenant": tenant}
            ).inc()
            if self.tracer is not None:
                # Rejected queries still get a (zero-duration) root span
                # so span conservation covers every submission.
                span = self.tracer.begin(
                    "query", now, track=f"tenant:{tenant}",
                    queue=name, tenant=tenant, priority=priority,
                )
                self.tracer.end(span, now, outcome=OUTCOME_REJECTED)
            raise RejectedQuery(
                f"queue for model {name!r} is full "
                f"({len(queue.heap)}/{queue.max_pending} pending); "
                f"query from tenant {tenant!r} rejected",
                model=name,
                tenant=tenant,
                queue_depth=len(queue.heap),
                limit=queue.max_pending,
            )
        ticket = QueryTicket(
            queue=name,
            tenant=tenant,
            payload=payload,
            submit_time=now,
            deadline=deadline,
            priority=priority,
            seq=next(self._seq),
        )
        if self.tracer is not None:
            track = f"tenant:{tenant}"
            ticket.span = self.tracer.begin(
                "query", now, track=track,
                queue=name, tenant=tenant, priority=priority,
                seq=ticket.seq,
            )
            self.tracer.event("admit", now, parent=ticket.span, track=track)
            ticket.wait_span = self.tracer.begin(
                "queue_wait", now, parent=ticket.span, track=track
            )
        queue.push(ticket)
        self._submitted.inc()
        self.metrics.counter(
            "sched_tenant_submitted", {"tenant": tenant}
        ).inc()
        return ticket

    def flush(self, name: Optional[str] = None) -> None:
        """Make partial batches cut-eligible (a no-op on empty queues)."""
        targets = (
            [self._queue_or_raise(name)] if name is not None
            else list(self._queues.values())
        )
        for queue in targets:
            if queue.heap:
                queue.flush_pending = True

    def _queue_or_raise(self, name: str) -> _ModelQueue:
        queue = self._queues.get(name)
        if queue is None:
            raise ValidationError(
                f"no scheduler queue named {name!r} "
                f"(registered: {', '.join(self.queue_names()) or 'none'})"
            )
        return queue

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def has_ready(self, now: float) -> bool:
        return any(q.ready(now) for q in self._queues.values())

    def ready_queues(self, now: float) -> List[str]:
        """Cut-ready queue names in fair-share dispatch order.

        The order :meth:`assign` would consider them: ascending virtual
        time, name-ordered tiebreak.  Placement-aware callers (the
        cluster router) walk this list and pin each cut to a worker via
        ``assign(now, worker=..., queue=...)``, skipping queues no
        eligible worker can take without starving the rest.
        """
        ready = [q for q in self._queues.values() if q.ready(now)]
        ready.sort(key=lambda q: (q.vtime, q.name))
        return [q.name for q in ready]

    def next_cut_time(self) -> Optional[float]:
        """Earliest future moment a slack cut becomes due, if any."""
        times = [
            t for t in (
                q.cut_deadline() for q in self._queues.values() if q.heap
            )
            if t is not None
        ]
        return min(times) if times else None

    def assign(self, now: float,
               worker: Optional[int] = None,
               queue: Optional[str] = None) -> Optional[Assignment]:
        """Cut the next batch and bind it to a free worker, if possible.

        Among ready queues the one with the smallest fair-share virtual
        time wins (name-ordered tiebreak, so decisions are total-ordered
        and deterministic).  ``worker`` pins the cut to a specific free
        worker; ``queue`` pins it to a specific ready queue (the cluster
        router uses both to couple placement with fair-share order).
        Cancelled tickets are dropped here — a caller's cancel never
        occupies a batch slot.
        """
        if not self._free:
            return None
        while True:
            if queue is not None:
                target = self._queues.get(queue)
                ready = (
                    [target]
                    if target is not None and target.ready(now) else []
                )
            else:
                ready = [q for q in self._queues.values() if q.ready(now)]
            if not ready:
                return None
            chosen = min(ready, key=lambda q: (q.vtime, q.name))
            tickets: List[QueryTicket] = []
            while chosen.heap and len(tickets) < chosen.capacity:
                _, ticket = heapq.heappop(chosen.heap)
                if ticket.future.set_running_or_notify_cancel():
                    tickets.append(ticket)
                else:
                    self._cancelled.inc()
                    if self.tracer is not None and ticket.span is not None:
                        if ticket.wait_span is not None:
                            self.tracer.end(ticket.wait_span, now)
                            ticket.wait_span = None
                        self.tracer.end(
                            ticket.span, now, outcome=OUTCOME_CANCELLED
                        )
            chosen.invalidate_cut_cache()
            if not chosen.heap:
                chosen.flush_pending = False
            if not tickets:
                continue  # the whole cut was cancelled; look again
            chosen.vtime += len(tickets) / chosen.weight
            if worker is None:
                worker = heapq.heappop(self._free)
            else:
                self._free.remove(worker)
            assignment = Assignment(
                batch_id=next(self._batch_ids),
                queue=chosen.name,
                worker=worker,
                tickets=tickets,
                cut_time=now,
            )
            if self.tracer is not None:
                assignment.span = self.tracer.begin(
                    "batch", now, track=f"worker:{worker}",
                    queue=chosen.name, batch_id=assignment.batch_id,
                    size=len(tickets),
                    members=[
                        t.span for t in tickets if t.span is not None
                    ],
                )
                for ticket in tickets:
                    if ticket.wait_span is not None:
                        self.tracer.end(
                            ticket.wait_span, now,
                            batch_id=assignment.batch_id,
                        )
                        ticket.wait_span = None
            self._running[worker] = assignment
            self._batches.inc()
            if self.decisions is not None:
                self.decisions.append((
                    assignment.batch_id,
                    chosen.name,
                    worker,
                    len(tickets),
                    tickets[0].seq,
                    round(now, 9),
                ))
            return assignment

    # ------------------------------------------------------------------
    # Completion / failure
    # ------------------------------------------------------------------

    def complete(self, assignment: Assignment, now: float,
                 outcome: str = OUTCOME_OK) -> None:
        """Return a worker and account for its batch's outcome.

        ``"ok"``: count completions, latencies, deadline misses.
        ``"error"``: the evaluation raised — deterministic, so the
        tickets fail (their futures already carry the exception).
        ``"crash"``: the worker died mid-batch — requeue every ticket at
        its original position, up to ``max_retries`` attempts each.
        """
        if self._running.get(assignment.worker) is not assignment:
            raise ValidationError(
                f"worker {assignment.worker} is not running batch "
                f"{assignment.batch_id}"
            )
        del self._running[assignment.worker]
        heapq.heappush(self._free, assignment.worker)
        tracer = self.tracer
        if tracer is not None and assignment.span is not None:
            tracer.end(assignment.span, now, outcome=outcome)
        if outcome == OUTCOME_OK:
            finished_queue = self._queues.get(assignment.queue)
            if finished_queue is not None:
                finished_queue.observe_service(now - assignment.cut_time)
            for ticket in assignment.tickets:
                self._completed.inc()
                latency_ms = (now - ticket.submit_time) / MS
                self._latencies_ms.observe(latency_ms)
                missed = ticket.deadline is not None and now > ticket.deadline
                if missed:
                    self._deadline_misses.inc()
                self.metrics.counter(
                    "sched_tenant_completed", {"tenant": ticket.tenant}
                ).inc()
                self.metrics.counter(
                    "sched_queue_completed", {"queue": ticket.queue}
                ).inc()
                self.metrics.histogram(
                    "sched_tenant_latency_ms", {"tenant": ticket.tenant}
                ).observe(latency_ms)
                if tracer is not None and ticket.span is not None:
                    tracer.end(
                        ticket.span, now,
                        outcome=OUTCOME_COMPLETED,
                        batch_id=assignment.batch_id,
                        deadline_missed=missed,
                        retries=ticket.retries,
                    )
        elif outcome == OUTCOME_ERROR:
            for ticket in assignment.tickets:
                self._fail_ticket(ticket, ServeError(
                    f"batch {assignment.batch_id} evaluation failed"
                ), now=now)
        elif outcome == OUTCOME_CRASH:
            self._worker_crashes.inc()
            queue = self._queues.get(assignment.queue)
            for ticket in assignment.tickets:
                if queue is not None and ticket.retries < self.max_retries:
                    self.prepare_retry(ticket, now)
                    queue.push(ticket)
                else:
                    self._fail_ticket(ticket, ServeError(
                        f"query from tenant {ticket.tenant!r} failed "
                        f"{ticket.retries + 1} worker crash(es) on model "
                        f"{ticket.queue!r} (max_retries="
                        f"{self.max_retries})"
                    ), now=now)
        else:
            raise ValidationError(f"unknown completion outcome {outcome!r}")

    def crash_worker(self, worker: int, now: float) -> Optional[Assignment]:
        """Simulate a worker dying.  Its in-flight batch (if any) takes
        the crash path; an idle worker just restarts.  Returns the
        interrupted assignment, if there was one."""
        assignment = self._running.get(worker)
        if assignment is None:
            self._worker_crashes.inc()
            return None
        self.complete(assignment, now, OUTCOME_CRASH)
        return assignment

    # ------------------------------------------------------------------
    # Fault-domain seams (the cluster router's crash/quarantine surface)
    # ------------------------------------------------------------------

    def release_crashed(self, assignment: Assignment,
                        now: float) -> List[QueryTicket]:
        """Free a crashed worker WITHOUT deciding its tickets' fate.

        The immediate-requeue crash path in :meth:`complete` is the
        right policy for thread pools; the cluster router instead parks
        retries behind a deterministic backoff and quarantines repeat
        offenders, so it takes the raw tickets back and owns the
        decision.  Counts the crash, ends the batch span, returns the
        tickets (still holding their RUNNING futures — the router calls
        :meth:`prepare_retry` / :meth:`dead_letter_ticket` per ticket).
        """
        if self._running.get(assignment.worker) is not assignment:
            raise ValidationError(
                f"worker {assignment.worker} is not running batch "
                f"{assignment.batch_id}"
            )
        del self._running[assignment.worker]
        heapq.heappush(self._free, assignment.worker)
        self._worker_crashes.inc()
        if self.tracer is not None and assignment.span is not None:
            self.tracer.end(assignment.span, now, outcome="crash")
        return list(assignment.tickets)

    def count_crash(self) -> None:
        """Count a worker crash that interrupted no batch of its own
        (e.g. a hedge worker dying while the primary still runs)."""
        self._worker_crashes.inc()

    def prepare_retry(self, ticket: QueryTicket, now: float) -> None:
        """Account one retry attempt and re-arm the ticket's future.

        Does NOT requeue: immediate-requeue callers push to the queue
        themselves; the router parks the ticket and calls
        :meth:`requeue` when its backoff expires.
        """
        ticket.retries += 1
        self._retries.inc()
        # A fresh future: the old one is already RUNNING and
        # cannot re-enter the cancelled/pending protocol.
        ticket.payload.future = _replace_future(ticket.payload.future)
        if self.tracer is not None and ticket.span is not None:
            track = f"tenant:{ticket.tenant}"
            self.tracer.event(
                "retry", now, parent=ticket.span, track=track,
                attempt=ticket.retries,
            )
            ticket.wait_span = self.tracer.begin(
                "queue_wait", now, parent=ticket.span, track=track,
            )

    def requeue(self, ticket: QueryTicket) -> bool:
        """Return a parked ticket to its queue (False if the queue is
        gone, in which case the ticket is failed)."""
        queue = self._queues.get(ticket.queue)
        if queue is None:
            self._fail_ticket(ticket, ServeError(
                f"model {ticket.queue!r} was unregistered while a retry "
                f"was parked"
            ))
            return False
        queue.push(ticket)
        return True

    def dead_letter_ticket(self, ticket: QueryTicket, exc: Exception,
                           now: float) -> None:
        """Terminally quarantine one ticket (counted apart from failed).

        Same deferred-future protocol as :meth:`_fail_ticket` — the
        exception reaches the caller when the engine drains — but the
        conservation ledger books it under ``dead_lettered``.
        """
        self._dead_lettered.inc()
        if self.tracer is not None and ticket.span is not None:
            if ticket.wait_span is not None:
                self.tracer.end(ticket.wait_span, now)
                ticket.wait_span = None
            self.tracer.end(ticket.span, now, outcome=OUTCOME_FAILED)
        self._pending_failures.append((ticket.future, exc))

    def assign_direct(self, queue_name: str, tickets: List[QueryTicket],
                      worker: int, now: float) -> Optional[Assignment]:
        """Bind an explicit ticket cohort to a free worker as one batch.

        The quarantine path: bisected halves must re-execute with
        exactly their membership (a heap cut could mix in fresh
        queries and re-poison them), so the router hands the cohort
        straight in.  Cancelled tickets are dropped like in
        :meth:`assign`; returns None when every ticket was cancelled.
        """
        live: List[QueryTicket] = []
        for ticket in tickets:
            if ticket.future.set_running_or_notify_cancel():
                live.append(ticket)
            else:
                self._cancelled.inc()
                if self.tracer is not None and ticket.span is not None:
                    if ticket.wait_span is not None:
                        self.tracer.end(ticket.wait_span, now)
                        ticket.wait_span = None
                    self.tracer.end(
                        ticket.span, now, outcome=OUTCOME_CANCELLED
                    )
        if not live:
            return None
        queue = self._queues.get(queue_name)
        if queue is not None:
            queue.vtime += len(live) / queue.weight
        self._free.remove(worker)
        heapq.heapify(self._free)
        assignment = Assignment(
            batch_id=next(self._batch_ids),
            queue=queue_name,
            worker=worker,
            tickets=live,
            cut_time=now,
        )
        if self.tracer is not None:
            assignment.span = self.tracer.begin(
                "batch", now, track=f"worker:{worker}",
                queue=queue_name, batch_id=assignment.batch_id,
                size=len(live),
                members=[t.span for t in live if t.span is not None],
            )
            for ticket in live:
                if ticket.wait_span is not None:
                    self.tracer.end(
                        ticket.wait_span, now,
                        batch_id=assignment.batch_id,
                    )
                    ticket.wait_span = None
        self._running[worker] = assignment
        self._batches.inc()
        if self.decisions is not None:
            self.decisions.append((
                assignment.batch_id,
                queue_name,
                worker,
                len(live),
                live[0].seq,
                round(now, 9),
            ))
        return assignment

    def rebind(self, assignment: Assignment, new_worker: int) -> None:
        """Move a running batch's binding to another worker.

        Hedging bookkeeping: when the hedge replica wins (or the
        primary dies with a hedge in flight), the batch's surviving
        executor becomes its worker of record.  The old worker returns
        to the free heap; the new worker must already be reserved
        (absent from it).
        """
        old = assignment.worker
        if self._running.get(old) is not assignment:
            raise ValidationError(
                f"worker {old} is not running batch "
                f"{assignment.batch_id}; cannot rebind"
            )
        del self._running[old]
        self._running[new_worker] = assignment
        assignment.worker = new_worker
        heapq.heappush(self._free, old)

    def reserve_worker(self, worker: int) -> None:
        """Take a worker out of the free heap (hedge dispatch)."""
        if worker not in self._free:
            raise ValidationError(
                f"worker {worker} is not free; cannot reserve it"
            )
        self._free.remove(worker)
        heapq.heapify(self._free)

    def release_worker(self, worker: int) -> None:
        """Return a reserved worker to the free heap."""
        heapq.heappush(self._free, worker)

    def service_estimate_s(self, name: str) -> float:
        """The queue's live (EWMA) batch service estimate, seconds."""
        queue = self._queues.get(name)
        return queue.service_s if queue is not None else 0.0

    def _fail_ticket(self, ticket: QueryTicket, exc: Exception,
                     now: Optional[float] = None) -> None:
        # Deferred delivery: resolving a future can run arbitrary
        # caller done-callbacks, and the threaded engine invokes core
        # methods under its condition lock — a callback that touches the
        # scheduler (stats, result() on a sibling query) would deadlock
        # the pool.  Counters update here; the future resolves when the
        # caller drains, outside any lock.
        self._failed.inc()
        if self.tracer is not None and ticket.span is not None:
            # Callers without a clock (queue teardown) fall back to the
            # submit time: the span still terminates, with zero wait.
            at = now if now is not None else ticket.submit_time
            if ticket.wait_span is not None:
                self.tracer.end(ticket.wait_span, at)
                ticket.wait_span = None
            self.tracer.end(ticket.span, at, outcome=OUTCOME_FAILED)
        self._pending_failures.append((ticket.future, exc))

    def drain_failures(self) -> List[Tuple[Any, Exception]]:
        """Take the accumulated (future, exception) deliveries.

        Callers MUST pass the result to :func:`deliver_failures` after
        releasing any lock guarding this core.
        """
        failures, self._pending_failures = self._pending_failures, []
        return failures

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    def stats(self) -> SchedulerStats:
        m = self.metrics
        # Point-in-time queue state rides along in the registry so a
        # metrics snapshot sees it without a SchedulerStats in hand —
        # and so the control plane's ControlSnapshot reads the same
        # source of truth as ``repro metrics``.
        m.gauge("sched_pending").set(self.pending())
        m.gauge("sched_running").set(self.running)
        m.gauge("sched_live_workers").set(self.workers)
        m.gauge("sched_free_workers").set(len(self._free))
        for name, queue in sorted(self._queues.items()):
            labels = {"queue": name}
            m.gauge("sched_queue_depth", labels).set(len(queue.heap))
            m.gauge("sched_estimated_batch_ms", labels).set(
                round(queue.service_s / MS, 9)
            )
            m.gauge("sched_queue_weight", labels).set(queue.weight)
            # -1 encodes "unbounded": gauges are floats and the JSON
            # snapshot must stay strict-JSON (no Infinity).
            m.gauge("sched_queue_limit", labels).set(
                -1 if queue.max_pending is None else queue.max_pending
            )
        ranked = sorted(self._latencies_ms.window_values())
        return SchedulerStats(
            submitted=int(self._submitted.value),
            completed=int(self._completed.value),
            rejected=int(self._rejected.value),
            failed=int(self._failed.value),
            cancelled=int(self._cancelled.value),
            retries=int(self._retries.value),
            deadline_misses=int(self._deadline_misses.value),
            worker_crashes=int(self._worker_crashes.value),
            dead_lettered=int(self._dead_lettered.value),
            batches=int(self._batches.value),
            latency_p50_ms=round(_percentile(ranked, 0.50), 6),
            latency_p99_ms=round(_percentile(ranked, 0.99), 6),
            latency_max_ms=round(self._latencies_ms.max, 6),
            per_tenant_submitted={
                tenant: int(count) for tenant, count in
                m.labeled_values("sched_tenant_submitted").items()
            },
            per_tenant_completed={
                tenant: int(count) for tenant, count in
                m.labeled_values("sched_tenant_completed").items()
            },
            per_queue_completed={
                queue: int(count) for queue, count in
                m.labeled_values("sched_queue_completed").items()
            },
        )


def deliver_failures(failures: List[Tuple[Any, Exception]]) -> None:
    """Resolve drained failure deliveries (call with no locks held)."""
    for future, exc in failures:
        if not future.done():
            try:
                future.set_exception(exc)
            except Exception:  # already transitioned under our feet
                pass


def _replace_future(old):
    """A fresh, cancelled-unaware future carrying the old one's waiters.

    concurrent.futures has no public "reset to pending", so a retried
    ticket gets a new future and the old future is resolved from the new
    one when it completes (callers hold the *old* future).
    """
    from concurrent.futures import Future

    fresh: "Future" = Future()

    def _propagate(done: "Future") -> None:
        if old.done():
            return
        exc = done.exception()
        if exc is not None:
            old.set_exception(exc)
        else:
            old.set_result(done.result())

    fresh.add_done_callback(_propagate)
    return fresh


# ---------------------------------------------------------------------------
# Threaded execution engine
# ---------------------------------------------------------------------------


class Scheduler:
    """Worker threads driving a :class:`SchedulerCore` in real time.

    ``evaluate`` callbacks are registered per queue (by
    :meth:`add_queue`); each worker repeatedly asks the core for an
    assignment, runs the queue's evaluator outside the lock, and reports
    the outcome.  Waiting workers wake on submissions, flushes, *and* on
    the earliest pending slack-cut deadline, so deadline-forced partial
    batches dispatch without any caller involvement.
    """

    def __init__(
        self,
        threads: int = 2,
        clock: Optional[Clock] = None,
        name: str = "copse-serve",
        max_retries: int = 1,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if threads < 1:
            raise ValidationError(f"threads must be >= 1, got {threads}")
        self.threads = threads
        self.clock: Clock = clock if clock is not None else RealClock()
        self._name = name
        self._core = SchedulerCore(
            workers=threads, max_retries=max_retries,
            tracer=tracer, metrics=metrics,
        )
        self._evaluators: Dict[str, Callable[[Assignment], None]] = {}
        self._cond = threading.Condition()
        self._stopping = False
        #: Worker ids retired by :meth:`remove_worker`; their threads
        #: exit on next wake (the core has already forgotten the id, so
        #: they must never call ``assign`` again).
        self._retired: set = set()
        self._workers: List[threading.Thread] = []
        for i in range(threads):
            self._spawn_worker(i)

    def _spawn_worker(self, worker_id: int) -> None:
        worker = threading.Thread(
            target=self._worker_loop,
            args=(worker_id,),
            name=f"{self._name}-worker-{worker_id}",
            daemon=True,
        )
        worker.start()
        self._workers.append(worker)

    # ------------------------------------------------------------------

    def add_queue(
        self,
        name: str,
        capacity: int,
        evaluate: Callable[[Assignment], None],
        weight: float = 1.0,
        max_pending: Optional[int] = None,
        service_ms: Optional[float] = None,
    ) -> None:
        """Register a model queue and its batch evaluator."""
        with self._cond:
            self._core.add_queue(
                name,
                capacity=capacity,
                weight=weight,
                max_pending=max_pending,
                service_ms=service_ms,
            )
            self._evaluators[name] = evaluate

    def remove_queue(self, name: str) -> int:
        with self._cond:
            failed = self._core.remove_queue(name, now=self.clock.now())
            self._evaluators.pop(name, None)
            failures = self._core.drain_failures()
        deliver_failures(failures)  # outside the lock: callbacks may
        return failed               # re-enter the scheduler

    def submit(
        self,
        name: str,
        payload: Any,
        tenant: str = "default",
        deadline_ms: Optional[float] = None,
        priority: int = 0,
    ) -> QueryTicket:
        """Admit one query; ``deadline_ms`` is relative to now."""
        with self._cond:
            now = self.clock.now()
            deadline = None if deadline_ms is None else now + deadline_ms * MS
            ticket = self._core.submit(
                name,
                payload,
                now,
                tenant=tenant,
                deadline=deadline,
                priority=priority,
            )
            self._cond.notify_all()
            return ticket

    def flush(self, name: Optional[str] = None) -> None:
        """Make partial batches dispatchable (no-op on empty queues)."""
        with self._cond:
            self._core.flush(name)
            self._cond.notify_all()

    def drain(self) -> None:
        """Block until no dispatchable or in-flight work remains.

        Partial batches that are neither flushed nor deadline-due stay
        queued — drain does not wait for future slack cuts.
        """
        with self._cond:
            while (
                self._core.running
                or self._core.has_ready(self.clock.now())
            ):
                self._cond.wait(timeout=0.05)

    def pending(self, name: Optional[str] = None) -> int:
        with self._cond:
            return self._core.pending(name)

    # ------------------------------------------------------------------
    # Control seams (live actuation by the control plane)
    # ------------------------------------------------------------------

    def set_weight(self, name: str, weight: float) -> float:
        """Change a queue's fair-share weight; returns the old one."""
        with self._cond:
            old = self._core.set_weight(name, weight)
            self._cond.notify_all()
            return old

    def set_admission_limit(self, name: str,
                            limit: Optional[int]) -> Optional[int]:
        """Change a queue's admission bound; returns the old one."""
        with self._cond:
            return self._core.set_max_pending(name, limit)

    def add_worker(self) -> int:
        """Grow the pool by one live worker thread; returns its id."""
        with self._cond:
            worker_id = self._core.add_worker()
            self._spawn_worker(worker_id)
            self._cond.notify_all()
            return worker_id

    def remove_worker(self) -> int:
        """Retire one idle worker (the highest-numbered); returns its id.

        Raises :class:`~repro.errors.ValidationError` when every worker
        is busy or the pool is at one — callers (the control plane's
        guards) are expected to check first; the mechanism still fails
        closed.  The retired thread exits on its next wake; in-flight
        work elsewhere is untouched.
        """
        with self._cond:
            idle = self._core.idle_workers()
            if not idle:
                raise ValidationError(
                    "no idle worker to retire (all workers have batches "
                    "in flight)"
                )
            worker_id = idle[-1]
            self._core.remove_worker(worker_id)
            self._retired.add(worker_id)
            self._cond.notify_all()
            return worker_id

    @property
    def workers(self) -> int:
        """Current pool size (live, non-retired workers)."""
        with self._cond:
            return self._core.workers

    def stats(self) -> SchedulerStats:
        with self._cond:
            return self._core.stats()

    @property
    def metrics(self) -> MetricsRegistry:
        """The registry backing the core's counters (shared, lock-safe)."""
        return self._core.metrics

    @property
    def tracer(self):
        return self._core.tracer

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._core.closed

    def close(self) -> None:
        """Stop admission, finish admitted work, stop workers.

        Idempotent: the second and every later call returns immediately.
        ``submit()`` after (or during) close raises
        :class:`~repro.errors.ServeError`.
        """
        with self._cond:
            if self._core.closed:
                if not self._workers:
                    return  # fully closed already
            else:
                self._core.close()
                self._core.flush()
            self._cond.notify_all()
        self.drain()
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
            workers, self._workers = self._workers, []
        for worker in workers:
            worker.join()

    # ------------------------------------------------------------------

    def _worker_loop(self, worker_id: int) -> None:
        while True:
            with self._cond:
                assignment = None
                while assignment is None:
                    if self._stopping or worker_id in self._retired:
                        return
                    assignment = self._core.assign(
                        self.clock.now(), worker=worker_id
                    )
                    if assignment is None:
                        cut_at = self._core.next_cut_time()
                        timeout = None
                        if cut_at is not None:
                            timeout = max(0.0, cut_at - self.clock.now())
                            timeout = min(timeout, 0.5)
                        self._cond.wait(timeout)
                evaluate = self._evaluators.get(assignment.queue)
            outcome = OUTCOME_OK
            if evaluate is None:
                outcome = OUTCOME_ERROR
            else:
                try:
                    evaluate(assignment)
                except BaseException:
                    # The evaluator owns error delivery to futures; a bad
                    # batch must not take the worker down with it.
                    outcome = OUTCOME_ERROR
            with self._cond:
                self._core.complete(
                    assignment, self.clock.now(), outcome
                )
                failures = self._core.drain_failures()
                self._cond.notify_all()
            # Failure futures resolve outside the lock: a caller's
            # done-callback may legitimately call back into the
            # scheduler (stats, another query's result()).
            deliver_failures(failures)
