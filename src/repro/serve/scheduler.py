"""Worker-pool scheduler: inter-batch parallelism over a job queue.

Figures 7 and 8 of the paper exploit parallelism *inside* one query's
circuit; a serving system additionally gets parallelism *across* queries.
The scheduler realizes the latter: a configurable pool of worker threads
drains a submission queue of batch jobs, each job evaluating one packed
batch against its model's cached encryption.

Each job carries its own :class:`~repro.fhe.context.FheContext` (created
inside :meth:`QueryBatcher.evaluate`), so workers never contend on
tracker state; results funnel through a caller-supplied ``on_record``
callback, which the service guards with a lock for thread-safe per-phase
aggregation.  ``drain()`` blocks until every queued job has completed —
the synchronization point ``flush``/``close`` rely on.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, List

from repro.errors import ValidationError

#: Sentinel shutting one worker down.
_STOP = object()


class Scheduler:
    """Fixed pool of daemon workers draining a FIFO job queue."""

    def __init__(self, threads: int = 2, name: str = "copse-serve"):
        if threads < 1:
            raise ValidationError(f"threads must be >= 1, got {threads}")
        self.threads = threads
        self._queue: "queue.Queue" = queue.Queue()
        self._workers: List[threading.Thread] = []
        self._closed = False
        self._lock = threading.Lock()
        for i in range(threads):
            worker = threading.Thread(
                target=self._worker_loop,
                name=f"{name}-worker-{i}",
                daemon=True,
            )
            worker.start()
            self._workers.append(worker)

    # ------------------------------------------------------------------

    def submit(self, job: Callable[[], None]) -> None:
        """Enqueue one batch job for the pool."""
        with self._lock:
            if self._closed:
                raise ValidationError(
                    "cannot submit to a closed scheduler"
                )
            self._queue.put(job)

    def drain(self) -> None:
        """Block until every job enqueued so far has finished."""
        self._queue.join()

    def close(self) -> None:
        """Finish outstanding jobs, then stop every worker."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._queue.join()
        for _ in self._workers:
            self._queue.put(_STOP)
        for worker in self._workers:
            worker.join()
        self._workers.clear()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    # ------------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is _STOP:
                self._queue.task_done()
                return
            try:
                job()
            except Exception:
                # The job owns error delivery (futures); a failed batch
                # must not take the worker down with it.
                pass
            finally:
                self._queue.task_done()
