"""Batched Algorithm 1: one vectorized pipeline over many packed queries.

The single-query runtime (:mod:`repro.core.runtime`) rotates ciphertexts
cyclically over the *logical* vector width.  With ``B`` queries packed as
blocks of stride ``S``, a plain rotation would bleed slots across block
boundaries, so the batched runtime replaces every cyclic access with a
**block-local gather**: to read ``v[(t + shift) mod w]`` inside every
block simultaneously, it combines a small number of globally rotated,
plaintext-masked copies —

    out[k*S + t] = v[k*S + (t + shift) mod w]
                 = XOR_m  rotate(v, shift - m*w) AND mask_m

where segment ``m`` covers the block offsets ``t`` with
``floor((t + shift) / w) == m``.  Within a block, ``t + shift - m*w``
always lands back in ``[0, w)``, and because the stride bounds every
logical width, no masked rotation ever crosses a block boundary.  A
gather costs at most ``ceil(rows/w) + 1`` rotations plus the masks —
amortized over the whole batch, versus one rotation *per query* in the
unbatched path — while every slot-wise stage (the SecComp comparison,
the diagonal products, the accumulation) is shared outright.

The circuit is identical for every input shape, so the batched pipeline
preserves the noninterference property of the single-query runtime; its
multiplicative depth is unchanged (gathers add only rotation/constant
slack, never a ciphertext multiply).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional

from repro.errors import RuntimeProtocolError
from repro.core.compiler import CompiledModel
from repro.core.runtime import (
    ENGINE_EAGER,
    ENGINE_MEGAKERNEL,
    ENGINE_PLAN,
    ENGINE_TAPE,
    ENGINES,
    EncryptedQuery,
    PHASE_ACCUMULATE,
    PHASE_COMPARISON,
    PHASE_DATA_ENCRYPT,
    PHASE_LEVELS,
    PHASE_MEGAKERNEL,
    PHASE_MODEL_ENCRYPT,
    PHASE_PLAN,
    PHASE_RESHUFFLE,
    PHASE_TAPE,
)
from repro.core.seccomp import VARIANT_ALOUFI, secure_compare
from repro.fhe.ciphertext import Ciphertext
from repro.fhe.context import FheContext, Vector
from repro.fhe.keys import KeyPair, PublicKey
# The segment decomposition is shared with the batched IR lowering so the
# two execution engines cannot drift apart.
from repro.ir.plan import gather_segments
from repro.serve.packing import (
    BatchLayout,
    pack_query_planes,
    segment_mask,
    tile_model_vector,
)

#: Tracker phase for re-registering cached model ciphertexts in a fresh
#: per-batch context.  Excluded from inference timings (like model_encrypt);
#: the LOAD operations it records are free in the cost model anyway.
PHASE_MODEL_CACHE = "model_cache"

#: The inference phases of the batched pipeline, in execution order.
BATCH_INFERENCE_PHASES = (
    PHASE_COMPARISON,
    PHASE_RESHUFFLE,
    PHASE_LEVELS,
    PHASE_ACCUMULATE,
)


@dataclass
class BatchedEncryptedModel:
    """A compiled model padded to the batch stride and tiled per block.

    Structurally the same data as
    :class:`~repro.core.runtime.EncryptedModel`, but every vector spans
    the full batched width so one slot-wise operation applies the model
    to all packed queries.  Built once per registered model and reused
    (via :meth:`adopt_into`) by every batch evaluation.
    """

    layout: BatchLayout
    threshold_planes: List[Vector]
    reshuffle_diagonals: List[Vector]
    level_diagonals: List[List[Vector]]
    level_masks: List[Vector]
    max_depth: int
    #: Source :meth:`CompiledModel.fingerprint`, so cached inference
    #: plans can refuse to execute against a different model.
    fingerprint: Optional[str] = None

    @property
    def is_encrypted(self) -> bool:
        return isinstance(self.threshold_planes[0], Ciphertext)

    def adopt_into(self, ctx: FheContext) -> "BatchedEncryptedModel":
        """Re-register the cached ciphertexts in ``ctx``'s tracker.

        Plaintext vectors carry no tracker state and pass through; each
        ciphertext is adopted as a zero-cost ``LOAD`` leaf under the
        ``model_cache`` phase so the per-batch DAG stays closed without
        re-charging the one-time encryption.
        """

        adopt_many = getattr(ctx, "adopt_many", None)
        if adopt_many is not None:
            # Bulk capability (the vector backend): one tracker call
            # per plane list instead of one per ciphertext, identical
            # counts and node ids.
            with ctx.tracker.phase(PHASE_MODEL_CACHE):
                return BatchedEncryptedModel(
                    layout=self.layout,
                    threshold_planes=adopt_many(self.threshold_planes),
                    reshuffle_diagonals=adopt_many(
                        self.reshuffle_diagonals
                    ),
                    level_diagonals=[
                        adopt_many(level)
                        for level in self.level_diagonals
                    ],
                    level_masks=adopt_many(self.level_masks),
                    max_depth=self.max_depth,
                    fingerprint=self.fingerprint,
                )

        def _adopt(vec: Vector) -> Vector:
            if isinstance(vec, Ciphertext):
                return ctx.adopt(vec)
            return vec

        with ctx.tracker.phase(PHASE_MODEL_CACHE):
            return BatchedEncryptedModel(
                layout=self.layout,
                threshold_planes=[_adopt(v) for v in self.threshold_planes],
                reshuffle_diagonals=[
                    _adopt(v) for v in self.reshuffle_diagonals
                ],
                level_diagonals=[
                    [_adopt(v) for v in level] for level in self.level_diagonals
                ],
                level_masks=[_adopt(v) for v in self.level_masks],
                max_depth=self.max_depth,
                fingerprint=self.fingerprint,
            )


def build_batched_model(
    ctx: FheContext,
    compiled: CompiledModel,
    layout: BatchLayout,
    public_key: Optional[PublicKey] = None,
) -> BatchedEncryptedModel:
    """Tile a compiled model across the batch and (optionally) encrypt it.

    With ``public_key`` this is the offloading configuration: every tiled
    structure is encrypted once, under the ``model_encrypt`` phase, and
    the resulting ciphertexts are cached for the model's lifetime.
    Without it the model stays in plaintext packed vectors (the
    Maurice-equals-Sally configuration).
    """

    def _pack(vector) -> Vector:
        tiled = tile_model_vector(layout, vector)
        if public_key is not None:
            return ctx.encrypt(tiled, public_key)
        return ctx.encode(tiled)

    with ctx.tracker.phase(PHASE_MODEL_ENCRYPT):
        thresholds = [_pack(plane) for plane in compiled.threshold_planes]
        reshuffle = [
            _pack(compiled.reshuffle.diagonal(i))
            for i in range(compiled.reshuffle.num_diagonals)
        ]
        levels = [
            [
                _pack(matrix.diagonal(i))
                for i in range(matrix.num_diagonals)
            ]
            for matrix in compiled.level_matrices
        ]
        masks = [_pack(mask) for mask in compiled.level_masks]
    return BatchedEncryptedModel(
        layout=layout,
        threshold_planes=thresholds,
        reshuffle_diagonals=reshuffle,
        level_diagonals=levels,
        level_masks=masks,
        max_depth=compiled.max_depth,
        fingerprint=compiled.fingerprint(),
    )


def encrypt_batch(
    ctx: FheContext,
    layout: BatchLayout,
    queries,
    keys: KeyPair,
) -> EncryptedQuery:
    """Pack up to ``capacity`` queries and encrypt the shared bit planes.

    One encryption per bit plane serves the whole batch — this is where
    the per-query ``data_encrypt`` cost collapses by a factor of the
    batch fill.
    """
    planes = pack_query_planes(layout, queries)
    with ctx.tracker.phase(PHASE_DATA_ENCRYPT):
        encrypted = [
            ctx.encrypt(planes[i], keys.public)
            for i in range(planes.shape[0])
        ]
    return EncryptedQuery(planes=encrypted, public_key=keys.public)


# ---------------------------------------------------------------------------
# Block-local gathers
# ---------------------------------------------------------------------------


@lru_cache(maxsize=4096)
def _mask_plain(layout: BatchLayout, lo: int, hi: int) -> "PlainVector":
    """The encoded selection mask for one gather segment.

    Masks depend only on the (hashable, frozen) layout and the segment
    bounds, and :class:`~repro.fhe.ciphertext.PlainVector` is immutable,
    so one encoding serves every batch of every model sharing the
    geometry — this keeps mask construction off the per-batch hot path.
    """
    from repro.fhe.ciphertext import PlainVector

    return PlainVector(segment_mask(layout, lo, hi))


def block_gather(
    ctx: FheContext,
    vector: Ciphertext,
    shift: int,
    width: int,
    rows: int,
    layout: BatchLayout,
) -> Ciphertext:
    """Block-local cyclic access: ``out[k*S+t] = v[k*S + (t+shift) % width]``.

    Valid at block offsets ``t in [0, rows)``; slots beyond each block's
    ``rows`` are zero or unspecified and must be masked by the caller's
    diagonal product (COPSE's diagonals are zero outside their logical
    length, so the Halevi-Shoup AND does exactly that).

    ``width`` is the logical width the rotation wraps over (the current
    stage's per-query vector length); ``rows`` is how many output offsets
    the caller consumes — more than ``width`` when the target matrix has
    more rows than columns (the cyclic extension of Section 4.1.2).
    """
    if not 0 <= shift < width:
        raise RuntimeProtocolError(
            f"gather shift {shift} outside the logical width {width}"
        )
    if rows < 1 or rows > layout.stride or width > layout.stride:
        raise RuntimeProtocolError(
            f"gather shape rows={rows} width={width} exceeds the "
            f"stride {layout.stride}"
        )
    segments = gather_segments(shift, width, rows)

    if len(segments) == 1:
        amount, _, _ = segments[0]
        # A single segment needs no selection mask: every consumed offset
        # comes from the same rotation, and the caller's diagonal zeroes
        # the rest of the block.
        return ctx.rotate(vector, amount) if amount else vector

    terms: List[Vector] = []
    for amount, lo, hi in segments:
        rotated = ctx.rotate(vector, amount) if amount else vector
        terms.append(ctx.and_any(rotated, _mask_plain(layout, lo, hi)))
    combined = ctx.xor_all(terms)
    if not isinstance(combined, Ciphertext):  # pragma: no cover
        raise RuntimeProtocolError("gather of a ciphertext must stay encrypted")
    return combined


def batched_matvec(
    ctx: FheContext,
    diagonals: List[Vector],
    rows: int,
    cols: int,
    vector: Ciphertext,
    layout: BatchLayout,
) -> Vector:
    """Halevi-Shoup product applied independently inside every block.

    ``diagonals`` are the model's generalized diagonals, already tiled to
    the batched width; ``rows``/``cols`` are the per-query matrix shape.
    The only change from :func:`repro.core.matmul.halevi_shoup_matvec` is
    that each rotation becomes a block-local gather.
    """
    products: List[Vector] = []
    for i, diagonal in enumerate(diagonals):
        gathered = block_gather(ctx, vector, i, cols, rows, layout)
        products.append(ctx.and_any(diagonal, gathered))
    return ctx.xor_all(products)


# ---------------------------------------------------------------------------
# The batched server
# ---------------------------------------------------------------------------


class BatchedCopseServer:
    """Sally with cross-query SIMD packing: Algorithm 1 over a batch.

    The four stages mirror :class:`~repro.core.runtime.CopseServer` —
    comparison, reshuffle, levels, accumulate — recorded under the same
    tracker phases so every existing per-phase report applies unchanged.

    ``engine="plan"`` executes a cached batched
    :class:`~repro.ir.plan.InferencePlan` (from
    :func:`~repro.ir.plan.lower_batched_inference`, lowered for the same
    layout) instead — one optimized IR graph, recorded under the
    ``plan_inference`` phase.  ``engine="tape"`` (the serve default)
    executes the plan's compiled :class:`~repro.ir.tape.CompiledTape`
    under ``tape_inference`` — the same bits with scheduled rotations,
    register reuse, and fused kernels.  ``engine="megakernel"`` executes
    the tape's :class:`~repro.ir.megakernel.MegaKernel` compilation
    under ``megakernel_inference`` — zero per-instruction dispatch on
    capable backends, the tape loop elsewhere, same bits everywhere.
    """

    def __init__(
        self,
        ctx: FheContext,
        seccomp_variant: str = VARIANT_ALOUFI,
        engine: str = ENGINE_EAGER,
        plan=None,
        tape=None,
        megakernel=None,
    ):
        if engine not in ENGINES:
            raise RuntimeProtocolError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        self.ctx = ctx
        self.seccomp_variant = seccomp_variant
        self.engine = engine
        self.plan = plan
        self.tape = tape
        self.megakernel = megakernel

    def classify_batch(
        self, model: BatchedEncryptedModel, query: EncryptedQuery
    ) -> Ciphertext:
        ctx = self.ctx
        layout = model.layout
        if query.precision != layout.precision:
            raise RuntimeProtocolError(
                f"batch precision {query.precision} does not match the "
                f"model precision {layout.precision}"
            )
        if query.width != layout.batched_width:
            raise RuntimeProtocolError(
                f"batch width {query.width} does not match the layout "
                f"width {layout.batched_width}; was the batch packed "
                f"with the model's layout?"
            )
        local = model.adopt_into(ctx)
        if self.engine == ENGINE_PLAN:
            return self._classify_batch_plan(local, query)
        if self.engine == ENGINE_TAPE:
            return self._classify_batch_tape(local, query)
        if self.engine == ENGINE_MEGAKERNEL:
            return self._classify_batch_megakernel(local, query)

        with ctx.tracker.phase(PHASE_COMPARISON):
            not_one = None
            if self.seccomp_variant == VARIANT_ALOUFI:
                if query.public_key is None:
                    raise RuntimeProtocolError(
                        "the Aloufi SecComp variant needs the batch's "
                        "public key to encrypt the all-ones helper"
                    )
                not_one = ctx.encrypt(
                    ctx.ones(query.width).to_array(), query.public_key
                )
            decisions = secure_compare(
                ctx,
                query.planes,
                local.threshold_planes,
                variant=self.seccomp_variant,
                not_one=not_one,
            )

        with ctx.tracker.phase(PHASE_RESHUFFLE):
            branches = batched_matvec(
                ctx,
                local.reshuffle_diagonals,
                rows=layout.branching,
                cols=layout.quantized_branching,
                vector=decisions,
                layout=layout,
            )

        with ctx.tracker.phase(PHASE_LEVELS):
            level_results = self._process_levels(local, branches)

        with ctx.tracker.phase(PHASE_ACCUMULATE):
            result = ctx.multiply_all(level_results)

        if not isinstance(result, Ciphertext):  # pragma: no cover
            raise RuntimeProtocolError("batched result must be encrypted")
        return result

    def _classify_batch_plan(
        self, local: BatchedEncryptedModel, query: EncryptedQuery
    ) -> Ciphertext:
        """Execute the cached batched plan against an adopted model."""
        plan = self.plan
        if plan is None:
            raise RuntimeProtocolError(
                "engine='plan' needs a batched InferencePlan; lower one "
                "with repro.ir.plan.lower_batched_inference (the serve "
                "registry caches it per model)"
            )
        if not plan.batched:
            raise RuntimeProtocolError(
                "a single-query plan cannot serve the batched server; "
                "lower with lower_batched_inference for this layout"
            )
        layout = local.layout
        if plan.batch_shape != (layout.stride, layout.capacity):
            raise RuntimeProtocolError(
                f"plan batch shape {plan.batch_shape} does not match the "
                f"layout ({layout.stride}, {layout.capacity})"
            )
        if plan.variant != self.seccomp_variant:
            raise RuntimeProtocolError(
                f"plan was lowered with SecComp variant {plan.variant!r} "
                f"but the server runs {self.seccomp_variant!r}"
            )
        return plan.run(self.ctx, local, query, phase=PHASE_PLAN)

    def _classify_batch_tape(
        self, local: BatchedEncryptedModel, query: EncryptedQuery
    ) -> Ciphertext:
        """Execute the cached batched compiled tape against an adopted
        model."""
        tape = self.tape
        if tape is None:
            raise RuntimeProtocolError(
                "engine='tape' needs a batched CompiledTape; compile one "
                "with InferencePlan.compile_tape (the serve registry "
                "caches it per model)"
            )
        if not tape.batched:
            raise RuntimeProtocolError(
                "a single-query tape cannot serve the batched server; "
                "compile from a lower_batched_inference plan for this "
                "layout"
            )
        layout = local.layout
        if tape.batch_shape != (layout.stride, layout.capacity):
            raise RuntimeProtocolError(
                f"tape batch shape {tape.batch_shape} does not match the "
                f"layout ({layout.stride}, {layout.capacity})"
            )
        if tape.variant != self.seccomp_variant:
            raise RuntimeProtocolError(
                f"tape was compiled with SecComp variant {tape.variant!r} "
                f"but the server runs {self.seccomp_variant!r}"
            )
        return tape.run(self.ctx, local, query, phase=PHASE_TAPE)

    def _classify_batch_megakernel(
        self, local: BatchedEncryptedModel, query: EncryptedQuery
    ) -> Ciphertext:
        """Execute the cached batched megakernel against an adopted
        model."""
        kernel = self.megakernel
        if kernel is None:
            raise RuntimeProtocolError(
                "engine='megakernel' needs a batched MegaKernel; compile "
                "one with repro.ir.megakernel.compile_megakernel (the "
                "serve registry caches it per model)"
            )
        if not kernel.batched:
            raise RuntimeProtocolError(
                "a single-query megakernel cannot serve the batched "
                "server; compile from a lower_batched_inference plan for "
                "this layout"
            )
        layout = local.layout
        if kernel.batch_shape != (layout.stride, layout.capacity):
            raise RuntimeProtocolError(
                f"megakernel batch shape {kernel.batch_shape} does not "
                f"match the layout ({layout.stride}, {layout.capacity})"
            )
        if kernel.variant != self.seccomp_variant:
            raise RuntimeProtocolError(
                f"megakernel was compiled with SecComp variant "
                f"{kernel.variant!r} but the server runs "
                f"{self.seccomp_variant!r}"
            )
        return kernel.run(self.ctx, local, query, phase=PHASE_MEGAKERNEL)

    def _process_levels(
        self, model: BatchedEncryptedModel, branches: Vector
    ) -> List[Vector]:
        """All levels against shared block-gathered branch vectors.

        As in the single-query runtime, the gathers of the branch vector
        are identical across levels, so they are computed once and reused
        by all ``d`` diagonal products.
        """
        ctx = self.ctx
        layout = model.layout
        if not isinstance(branches, Ciphertext):  # pragma: no cover
            raise RuntimeProtocolError("branch decisions must be encrypted")
        b = layout.branching
        gathered = [
            block_gather(
                ctx, branches, i, width=b, rows=layout.num_labels,
                layout=layout,
            )
            for i in range(b)
        ]
        results: List[Vector] = []
        for level_index in range(model.max_depth):
            diagonals = model.level_diagonals[level_index]
            mask = model.level_masks[level_index]
            products: List[Vector] = []
            for i, diagonal in enumerate(diagonals):
                products.append(ctx.and_any(diagonal, gathered[i]))
            level_decisions = ctx.xor_all(products)
            results.append(ctx.xor_any(level_decisions, mask))
        return results
