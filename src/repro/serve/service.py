"""CopseService: the batched secure-inference facade.

Composes the registry (compile + encrypt once), the per-model batchers
(pack / demux / verify), and the deadline-aware scheduler (bounded
queues, fair sharing, worker pool) behind three calls —
``register_model`` / ``submit`` / ``stats`` — plus synchronous
conveniences.  Typical use::

    with CopseService(threads=4, default_deadline_ms=250.0) as service:
        service.register_model("credit", forest, precision=8)
        results = service.classify_many("credit", feature_lists)
        print(service.stats().render())

Dispatch policy: a full batch is scheduled the moment the pending queue
reaches the layout's capacity; a *partial* batch dispatches when its
oldest query's deadline slack runs out, or on an explicit ``flush()``
(``classify``/``classify_many`` flush for you).  Queues are bounded when
``max_queue`` is set — an over-admission raises
:class:`~repro.errors.RejectedQuery` at submit time.  Latency and
throughput metrics come from the existing
:class:`~repro.fhe.costmodel.CostModel` over each batch's operation DAG,
aggregated thread-safely across workers; scheduling metrics (wall/virtual
latency percentiles, deadline misses, rejections, retries) come from the
scheduler's :class:`~repro.serve.scheduler.SchedulerStats`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import ValidationError
from repro.obs.metrics import MetricsRegistry
from repro.core.compiler import CompiledModel
from repro.core.runtime import (
    ENGINE_TAPE,
    ENGINES,
    PHASE_MEGAKERNEL,
    PHASE_PLAN,
    PHASE_TAPE,
)
from repro.core.seccomp import VARIANT_ALOUFI
from repro.fhe.backend import canonical_backend_name
from repro.fhe.params import EncryptionParams
from repro.forest.forest import DecisionForest
from repro.serve.batched_runtime import BATCH_INFERENCE_PHASES
from repro.serve.batcher import (
    BatchRecord,
    ClassificationResult,
    CutBatch,
    QueryBatcher,
)
from repro.serve.registry import ModelRegistry, RegisteredModel
from repro.serve.scheduler import Assignment, Scheduler, SchedulerStats
from repro.serve.simclock import Clock


@dataclass(frozen=True)
class ServiceStats:
    """A consistent snapshot of the service's aggregated measurements.

    All times are *simulated* milliseconds from the cost model (the
    paper's metric), not wall clock.  ``inference_ms`` covers the four
    shared pipeline stages; ``data_encrypt_ms`` is the per-batch query
    encryption; ``setup_ms`` is the one-time model compilation/encryption
    across registered models.
    """

    queries: int
    batches: int
    capacity_total: int
    phase_ms: Dict[str, float]
    op_counts: Dict[str, int]
    inference_ms: float
    data_encrypt_ms: float
    setup_ms: float
    oracle_failures: int
    threads: int
    #: Per-phase operation counts — the plan engine's work lands under
    #: ``plan_inference`` while eager batches use the four stage phases,
    #: so the two engines' op counts stay separable after aggregation.
    phase_op_counts: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: FHE backend each registered model evaluates on (model -> backend
    #: registry name), recorded at registration time.
    model_backends: Dict[str, str] = field(default_factory=dict)
    #: Scheduling counters (admission, deadlines, retries, latency
    #: percentiles) from the deadline-aware scheduler; None for
    #: hand-built snapshots that never scheduled anything.
    scheduler: Optional[SchedulerStats] = None

    @property
    def deadline_miss_rate(self) -> float:
        """Fraction of completed queries that finished past deadline."""
        if self.scheduler is None:
            return 0.0
        return self.scheduler.deadline_miss_rate

    @property
    def rejected(self) -> int:
        """Queries refused by admission control."""
        return self.scheduler.rejected if self.scheduler else 0

    @property
    def plan_ms(self) -> float:
        """Simulated inference ms spent in the plan engine."""
        return self.phase_ms.get(PHASE_PLAN, 0.0)

    @property
    def tape_ms(self) -> float:
        """Simulated inference ms spent in the compiled-tape engine."""
        return self.phase_ms.get(PHASE_TAPE, 0.0)

    @property
    def megakernel_ms(self) -> float:
        """Simulated inference ms spent in the megakernel engine."""
        return self.phase_ms.get(PHASE_MEGAKERNEL, 0.0)

    @property
    def eager_ms(self) -> float:
        """Simulated inference ms spent in the eager four-stage engine."""
        return sum(self.phase_ms.get(p, 0.0) for p in BATCH_INFERENCE_PHASES)

    @property
    def plan_op_counts(self) -> Dict[str, int]:
        """Operation counts recorded by plan-engine batches."""
        return dict(self.phase_op_counts.get(PHASE_PLAN, {}))

    @property
    def tape_op_counts(self) -> Dict[str, int]:
        """Operation counts recorded by tape-engine batches."""
        return dict(self.phase_op_counts.get(PHASE_TAPE, {}))

    @property
    def megakernel_op_counts(self) -> Dict[str, int]:
        """Operation counts recorded by megakernel-engine batches."""
        return dict(self.phase_op_counts.get(PHASE_MEGAKERNEL, {}))

    @property
    def eager_op_counts(self) -> Dict[str, int]:
        """Operation counts recorded by eager-engine batches."""
        merged: Dict[str, int] = {}
        for phase in BATCH_INFERENCE_PHASES:
            for kind, n in self.phase_op_counts.get(phase, {}).items():
                merged[kind] = merged.get(kind, 0) + n
        return merged

    @property
    def amortized_ms_per_query(self) -> float:
        """Simulated inference ms per served query (the batching payoff)."""
        if not self.queries:
            return 0.0
        return self.inference_ms / self.queries

    @property
    def avg_batch_fill(self) -> float:
        """Mean fraction of each batch's slots holding real queries."""
        if not self.capacity_total:
            return 0.0
        return self.queries / self.capacity_total

    @property
    def throughput_qps(self) -> float:
        """Simulated queries/second with batches spread over the pool.

        Batches are the scheduling unit, so the pool's makespan is
        ``ceil(batches / threads)`` rounds of the mean batch time: a
        single batch gains nothing from idle workers, and a remainder
        batch costs a full extra round.
        """
        if self.inference_ms <= 0 or not self.batches:
            return 0.0
        rounds = -(-self.batches // self.threads)
        makespan_ms = self.inference_ms * rounds / self.batches
        return self.queries * 1000.0 / makespan_ms

    def render(self) -> str:
        lines = [
            "CopseService stats",
            f"  queries served      : {self.queries}",
            f"  batches evaluated   : {self.batches}",
            f"  avg batch fill      : {self.avg_batch_fill:.2f}",
            f"  amortized ms/query  : {self.amortized_ms_per_query:.2f}",
            f"  throughput (q/s)    : {self.throughput_qps:.1f} "
            f"({self.threads} workers)",
            f"  one-time setup ms   : {self.setup_ms:.2f}",
            f"  batch encrypt ms    : {self.data_encrypt_ms:.2f}",
            f"  oracle failures     : {self.oracle_failures}",
        ]
        if self.model_backends:
            backends = ", ".join(
                f"{model}={backend}"
                for model, backend in sorted(self.model_backends.items())
            )
            lines.append(f"  fhe backends        : {backends}")
        for phase, ms in self.phase_ms.items():
            lines.append(f"  phase {phase:<14}: {ms:.2f} ms")
        if self.scheduler is not None and self.scheduler.submitted:
            lines.append("  scheduling:")
            lines.append(self.scheduler.render())
        return "\n".join(lines)


class _StatsAggregator:
    """Registry-backed accumulator for per-batch records.

    Every numeric aggregate lives in the service's shared
    :class:`~repro.obs.metrics.MetricsRegistry` — the same store the
    scheduler core's counters live in — so a metrics snapshot (or the
    Prometheus export) sees evaluation totals and scheduling counters
    together, and :class:`ServiceStats` is a pure view over it.  The
    aggregator's own lock only orders the *multi-instrument* update of
    one batch record, so a concurrent snapshot never sees half a batch.
    """

    def __init__(self, threads: int, metrics: MetricsRegistry):
        self._lock = threading.Lock()
        self._threads = threads
        self._metrics = metrics
        m = metrics
        self._queries = m.counter("svc_queries")
        self._batches = m.counter("svc_batches")
        self._capacity_total = m.counter("svc_capacity_total")
        self._inference_ms = m.counter("svc_inference_ms")
        self._data_encrypt_ms = m.counter("svc_data_encrypt_ms")
        self._setup_ms = m.counter("svc_setup_ms")
        self._oracle_failures = m.counter("svc_oracle_failures")
        self._batch_fill = m.histogram("svc_batch_fill")
        #: model -> backend name: identity metadata, not a metric.
        self._model_backends: Dict[str, str] = {}

    def record_setup(self, registered: RegisteredModel) -> None:
        with self._lock:
            self._setup_ms.inc(registered.setup_ms)
            self._model_backends[registered.name] = registered.backend

    def record_batch(self, record: BatchRecord) -> None:
        m = self._metrics
        with self._lock:
            self._queries.inc(record.size)
            self._batches.inc()
            self._capacity_total.inc(record.capacity)
            if record.capacity:
                self._batch_fill.observe(record.size / record.capacity)
            for phase, ms in record.phase_ms.items():
                m.counter("svc_phase_ms", {"phase": phase}).inc(ms)
            for phase in record.tracker.phases:
                counts = record.tracker.phase_stats(phase).counts
                for kind, n in counts.items():
                    m.counter("svc_ops", {"op": kind.value}).inc(n)
                    m.counter(
                        "svc_phase_ops",
                        {"phase": phase, "op": kind.value},
                    ).inc(n)
            self._inference_ms.inc(record.inference_ms)
            self._data_encrypt_ms.inc(record.data_encrypt_ms)
            if record.oracle_failures:
                self._oracle_failures.inc(record.oracle_failures)

    def snapshot(
        self, scheduler: Optional[SchedulerStats] = None
    ) -> ServiceStats:
        m = self._metrics
        with self._lock:
            phase_op_counts: Dict[str, Dict[str, int]] = {}
            for key, instrument in sorted(m.family("svc_phase_ops").items()):
                labels = dict(pair.split("=", 1) for pair in key)
                phase_op_counts.setdefault(labels["phase"], {})[
                    labels["op"]
                ] = int(instrument.value)
            return ServiceStats(
                scheduler=scheduler,
                queries=int(self._queries.value),
                batches=int(self._batches.value),
                capacity_total=int(self._capacity_total.value),
                phase_ms={
                    phase: instrument.value
                    for phase, instrument in sorted(
                        (key[0].split("=", 1)[1], inst)
                        for key, inst in m.family("svc_phase_ms").items()
                    )
                },
                op_counts={
                    op: int(v)
                    for op, v in m.labeled_values("svc_ops").items()
                },
                inference_ms=self._inference_ms.value,
                data_encrypt_ms=self._data_encrypt_ms.value,
                setup_ms=self._setup_ms.value,
                oracle_failures=int(self._oracle_failures.value),
                threads=self._threads,
                phase_op_counts=phase_op_counts,
                model_backends=dict(self._model_backends),
            )


class CopseService:
    """Batched secure-inference service over the COPSE stack.

    ``engine`` selects the default execution path for registered models:
    ``"tape"`` (the default) lowers and optimizes an
    :class:`~repro.ir.plan.InferencePlan` per model, compiles it into a
    :class:`~repro.ir.tape.CompiledTape` (linearized instructions,
    scheduled rotations, register reuse, fused kernels), and executes
    every batch through the tape; ``"plan"`` stops at the graph-walking
    plan executor; ``"eager"`` keeps the hand-scheduled interpreter.
    ``register_model`` can override per model.

    Scheduling knobs: ``default_deadline_ms`` applies a relative
    deadline to every query that does not bring its own (deadline slack
    also forces partial-batch cuts); ``max_queue`` bounds each model's
    pending queue (admission control — :class:`RejectedQuery` on
    overflow); ``max_retries`` bounds retry attempts per query when a
    *worker dies mid-batch* (the fault-injection harness today;
    deterministic evaluation errors are never retried — they fail the
    batch's futures immediately); ``clock`` injects a time source (a
    :class:`~repro.serve.simclock.VirtualClock` makes deadline behavior
    unit-testable without sleeps).
    """

    def __init__(
        self,
        params: Optional[EncryptionParams] = None,
        threads: int = 2,
        seccomp_variant: str = VARIANT_ALOUFI,
        verify_oracle: bool = True,
        engine: str = ENGINE_TAPE,
        backend: Optional[str] = None,
        clock: Optional[Clock] = None,
        default_deadline_ms: Optional[float] = None,
        max_queue: Optional[int] = None,
        max_retries: int = 1,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if engine not in ENGINES:
            raise ValidationError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        if default_deadline_ms is not None and default_deadline_ms <= 0:
            raise ValidationError(
                f"default_deadline_ms must be > 0, got {default_deadline_ms}"
            )
        #: One shared registry: the scheduler core's counters, the model
        #: registry's setup metrics, and the batch aggregates all write
        #: here, so one snapshot tells the whole story.
        self.metrics: MetricsRegistry = (
            metrics if metrics is not None else MetricsRegistry()
        )
        #: Optional span tracer (``repro.obs.trace.Tracer``): threads
        #: through scheduler (query/batch spans) and batchers (stage
        #: spans).  None — the default — costs nothing on any hot path.
        self.tracer = tracer
        self.registry = ModelRegistry(
            default_params=params, metrics=self.metrics
        )
        self.scheduler = Scheduler(
            threads=threads, clock=clock, max_retries=max_retries,
            tracer=tracer, metrics=self.metrics,
        )
        self.seccomp_variant = seccomp_variant
        self.verify_oracle = verify_oracle
        self.engine = engine
        self.default_deadline_ms = default_deadline_ms
        self.max_queue = max_queue
        #: Default FHE backend for registered models; validated eagerly
        #: so a typo fails at service construction, not first batch.
        self.backend = canonical_backend_name(backend)
        self._batchers: Dict[str, QueryBatcher] = {}
        self._lock = threading.Lock()
        self._stats = _StatsAggregator(threads=threads, metrics=self.metrics)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register_model(
        self,
        name: str,
        model: Union[DecisionForest, CompiledModel],
        precision: int = 8,
        params: Optional[EncryptionParams] = None,
        autoselect_params: bool = False,
        max_batch_size: Optional[int] = None,
        encrypted_model: bool = True,
        engine: Optional[str] = None,
        backend: Optional[str] = None,
        weight: float = 1.0,
        max_queue: Optional[int] = None,
    ) -> RegisteredModel:
        """Compile, parameter-select, encrypt, and plan ``model`` once.

        ``engine`` and ``backend`` override the service defaults for
        this model (per-model backend choice is recorded in
        :attr:`ServiceStats.model_backends`).  ``weight`` is the model's
        fair-share weight against other registered models;
        ``max_queue`` overrides the service-wide pending-queue bound.
        """
        registered = self.registry.register(
            name,
            model,
            precision=precision,
            params=params,
            autoselect_params=autoselect_params,
            max_batch_size=max_batch_size,
            encrypted_model=encrypted_model,
            engine=self.engine if engine is None else engine,
            seccomp_variant=self.seccomp_variant,
            backend=self.backend if backend is None else backend,
        )
        batcher = QueryBatcher(
            registered,
            seccomp_variant=self.seccomp_variant,
            verify_oracle=self.verify_oracle,
            tracer=self.tracer,
            clock=self.scheduler.clock,
        )

        def evaluate(assignment: Assignment) -> None:
            batch = CutBatch(
                batch_id=assignment.batch_id,
                entries=[t.payload for t in assignment.tickets],
            )
            record = batcher.evaluate(
                batch,
                parent_span=assignment.span,
                worker=assignment.worker,
            )
            self._stats.record_batch(record)

        try:
            self.scheduler.add_queue(
                name,
                capacity=registered.layout.capacity,
                evaluate=evaluate,
                weight=weight,
                max_pending=self.max_queue if max_queue is None else max_queue,
                service_ms=registered.estimated_batch_ms,
            )
        except ValidationError:
            self.registry.unregister(name)
            raise
        with self._lock:
            self._batchers[name] = batcher
        self._stats.record_setup(registered)
        return registered

    def unregister_model(self, name: str) -> None:
        """Retire a model: drop it from the registry and stop serving it.

        Queries still pending for the model fail with
        :class:`~repro.errors.ServeError`, so submitters always learn
        the outcome; flush first if the answers matter.
        """
        self.registry.unregister(name)
        self.scheduler.remove_queue(name)
        with self._lock:
            self._batchers.pop(name, None)

    def _batcher(self, name: str) -> QueryBatcher:
        # The registry owns name resolution (and its lookup-or-raise
        # message); the batcher map only mirrors it, so a model removed
        # via ``registry.unregister`` stops serving immediately even if
        # its mirror entry has not been pruned yet.
        self.registry.get(name)
        with self._lock:
            return self._batchers[name]

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self,
        model_name: str,
        features: Sequence[int],
        tenant: str = "default",
        deadline_ms: Optional[float] = None,
        priority: int = 0,
    ):
        """Enqueue one query; returns a future of ClassificationResult.

        Full batches dispatch immediately; partial batches dispatch when
        their deadline slack runs out, on :meth:`flush`, or when more
        submissions fill them.  Raises
        :class:`~repro.errors.RejectedQuery` when the model's queue is
        at its bound and :class:`~repro.errors.ServeError` after
        :meth:`close`.
        """
        batcher = self._batcher(model_name)
        entry = batcher.prepare(features)
        if deadline_ms is None:
            deadline_ms = self.default_deadline_ms
        self.scheduler.submit(
            model_name,
            entry,
            tenant=tenant,
            deadline_ms=deadline_ms,
            priority=priority,
        )
        return entry.future

    def flush(self, model_name: Optional[str] = None) -> None:
        """Dispatch all pending (including partial) batches and wait.

        Flushing a model with nothing pending is a no-op.
        """
        if model_name is not None:
            self._batcher(model_name)  # name resolution (or raise)
        else:
            with self._lock:
                # Prune mirrors of models retired directly through the
                # registry, releasing their cached encrypted structures
                # (and failing their still-queued queries loudly).
                stale = [
                    name for name in self._batchers
                    if name not in self.registry
                ]
                for name in stale:
                    del self._batchers[name]
            # Queue removal resolves the orphaned queries' failure
            # futures, whose done-callbacks may re-enter the service —
            # so it must run outside self._lock.
            for name in stale:
                self.scheduler.remove_queue(name)
        self.scheduler.flush(model_name)
        self.scheduler.drain()

    def classify(
        self, model_name: str, features: Sequence[int]
    ) -> ClassificationResult:
        """Synchronous single query (submits, flushes, waits)."""
        future = self.submit(model_name, features)
        if not future.done():
            self.flush(model_name)
        return future.result()

    def classify_many(
        self, model_name: str, feature_lists: Sequence[Sequence[int]]
    ) -> List[ClassificationResult]:
        """Submit many queries, dispatch, and return results in order."""
        futures = [self.submit(model_name, f) for f in feature_lists]
        self.flush(model_name)
        return [f.result() for f in futures]

    # ------------------------------------------------------------------
    # Control-plane seams (live reconfiguration, no restart)
    # ------------------------------------------------------------------

    def set_tenant_weight(self, name: str, weight: float) -> float:
        """Retune a model queue's fair-share weight; returns the old."""
        self._batcher(name)  # name resolution (or raise)
        return self.scheduler.set_weight(name, weight)

    def set_admission_limit(self, name: str,
                            limit: Optional[int]) -> Optional[int]:
        """Rebound a model queue's admission limit; returns the old.

        ``None`` removes the bound.  Tightening below the current depth
        never drops already-admitted queries — only new submissions see
        the new limit.
        """
        self._batcher(name)  # name resolution (or raise)
        return self.scheduler.set_admission_limit(name, limit)

    def add_worker(self) -> int:
        """Grow the worker pool by one thread; returns its fresh id."""
        return self.scheduler.add_worker()

    def remove_worker(self) -> int:
        """Retire one idle worker thread (never below one).

        Raises :class:`~repro.errors.ValidationError` when every worker
        has a batch in flight — the in-flight safety invariant the
        control plane's guards also enforce.
        """
        return self.scheduler.remove_worker()

    @property
    def workers(self) -> int:
        """Current worker-pool size."""
        return self.scheduler.workers

    def set_model_engine(self, name: str, engine: str,
                         expected_fingerprint: Optional[str] = None
                         ) -> RegisteredModel:
        """Flip a model's execution engine live (next batch uses it).

        Drains in-flight work first so no batch straddles the flip;
        queued queries are unaffected (they are packed per batch).
        """
        self.flush(name)
        return self.registry.set_engine(
            name, engine, expected_fingerprint=expected_fingerprint
        )

    def set_model_backend(self, name: str, backend: str,
                          expected_fingerprint: Optional[str] = None
                          ) -> RegisteredModel:
        """Re-home a model onto another FHE backend, live.

        Backends wrap ciphertexts differently, so this re-keys and
        re-encrypts the batched model (a real cost, recorded in
        ``setup_ms``); the drain ensures no batch straddles it.
        """
        self.flush(name)
        return self.registry.switch_backend(
            name, backend, expected_fingerprint=expected_fingerprint
        )

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    def stats(self) -> ServiceStats:
        return self._stats.snapshot(scheduler=self.scheduler.stats())

    def metrics_snapshot(self) -> Dict:
        """A JSON-able snapshot of the shared metrics registry.

        Calls ``scheduler.stats()`` first so point-in-time gauges
        (pending/running) are current — this is the payload of every
        ``repro serve --stats-interval`` JSONL line.
        """
        self.scheduler.stats()
        return self.metrics.snapshot()

    def render_prometheus(self) -> str:
        """The shared registry in Prometheus text exposition format."""
        self.scheduler.stats()
        return self.metrics.render_prometheus()

    def pending(self, model_name: str) -> int:
        self._batcher(model_name)  # name resolution (or raise)
        return self.scheduler.pending(model_name)

    def close(self) -> None:
        """Stop admission, finish admitted work, stop the worker pool.

        Idempotent; :meth:`submit` afterwards raises
        :class:`~repro.errors.ServeError`.
        """
        self.scheduler.close()

    def __enter__(self) -> "CopseService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
