"""Model registry: compile, parameter-select, and encrypt each model once.

The unbatched runtime re-encrypts the model on every ``secure_inference``
call.  At service scale that is the dominant waste: the model never
changes between queries.  The registry performs the whole offline
pipeline exactly once per registered model —

1. compile the forest (or accept an already-compiled model),
2. select encryption parameters (the Table 5 autotuner, or accept a
   caller-supplied set) and verify they cover the circuit,
3. plan the batch layout from the parameters' slot capacity,
4. generate a session key pair and encrypt the tiled, batched model,
5. (with the default ``engine="tape"``) lower the batched pipeline onto
   the IR, run the optimizer over it, and compile the optimized plan
   into a linearized :class:`~repro.ir.tape.CompiledTape` (scheduled
   rotations, register reuse, fused kernels) —

and caches the resulting :class:`BatchedEncryptedModel`, query spec,
cost model, :class:`~repro.ir.plan.InferencePlan`, and
:class:`~repro.ir.tape.CompiledTape` for every subsequent batch
evaluation.

Trust model: cross-query packing requires all queries of a batch to be
encrypted under one key, so the service holds a per-model *session* key
and acts as the data owner's gateway (one Diane aggregating concurrent
queries — e.g. a tenant with many end users, or a trusted front end).
DESIGN.md discusses the configurations this does and does not cover.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.errors import ValidationError
from repro.core.compiler import CompiledModel, CopseCompiler
from repro.core.runtime import (
    ENGINE_MEGAKERNEL,
    ENGINE_PLAN,
    ENGINE_TAPE,
    ENGINES,
    ModelOwner,
    QuerySpec,
)
from repro.core.seccomp import VARIANT_ALOUFI
from repro.fhe.backend import canonical_backend_name
from repro.fhe.context import FheContext
from repro.fhe.costmodel import CostModel
from repro.fhe.keys import KeyPair
from repro.fhe.params import EncryptionParams
from repro.forest.forest import DecisionForest
from repro.ir.megakernel import MegaKernel, compile_megakernel
from repro.ir.plan import InferencePlan, lower_batched_inference
from repro.ir.tape import CompiledTape
from repro.serve.batched_runtime import BatchedEncryptedModel, build_batched_model
from repro.serve.packing import BatchLayout, plan_layout


@dataclass
class RegisteredModel:
    """Everything cached for one registered model."""

    name: str
    compiled: CompiledModel
    params: EncryptionParams
    layout: BatchLayout
    spec: QuerySpec
    keys: KeyPair
    batched_model: BatchedEncryptedModel
    cost_model: CostModel
    encrypted_model: bool
    forest: Optional[DecisionForest] = field(default=None, repr=False)
    #: One-time simulated cost of encrypting the batched model (ms).
    setup_ms: float = 0.0
    #: Execution engine batches for this model run under.
    engine: str = ENGINE_TAPE
    #: FHE backend every evaluation context for this model is built on.
    backend: str = "reference"
    #: The optimized batched lowering, compiled once at registration and
    #: cached next to the encrypted ciphertexts (None for eager models).
    plan: Optional[InferencePlan] = field(default=None, repr=False)
    #: The plan's compiled tape — linearized instructions with scheduled
    #: rotations and register reuse, compiled once at registration
    #: (None unless ``engine="tape"`` — the default — or
    #: ``engine="megakernel"``, which compiles through it).
    tape: Optional[CompiledTape] = field(default=None, repr=False)
    #: The tape's zero-dispatch megakernel compilation, cached next to
    #: the plan and tape (None unless ``engine="megakernel"``).
    megakernel: Optional[MegaKernel] = field(default=None, repr=False)

    @property
    def batch_capacity(self) -> int:
        return self.layout.capacity

    @property
    def estimated_batch_ms(self) -> Optional[float]:
        """Analyzed cost of evaluating one batch, in simulated ms.

        Comes from the cached program's optimized profile — the tape's
        when one is compiled (its scheduled rotations price slightly
        below the plan's), else the plan's — so it is known *before*
        the first batch runs: the scheduler seeds its slack-cut service
        estimate with it (then refines with observed batch durations,
        since simulated ms are not wall ms), and the simulator uses it
        as the model's exact service time.  ``None`` for eager models
        (no analyzed graph to price).
        """
        if self.tape is not None:
            # The megakernel shares the tape's profile by construction.
            return self.tape.profile.cost_ms(self.cost_model)
        if self.plan is None:
            return None
        return self.plan.cost_ms(self.cost_model)

    def describe(self) -> str:
        base = (
            f"{self.name}: {self.compiled.describe()}; "
            f"batch {self.layout.describe()}; {self.params.describe()}; "
            f"backend {self.backend}"
        )
        if self.plan is not None:
            base += f"; {self.plan.describe()}"
        if self.tape is not None:
            base += f"; {self.tape.describe()}"
        if self.megakernel is not None:
            base += f"; {self.megakernel.describe()}"
        return base


class ModelRegistry:
    """Thread-safe name -> :class:`RegisteredModel` store.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) makes
    registration observable: a gauge of live models and per-model setup
    cost counters, written here so the one-time offline pipeline shows
    up in the same snapshot as the serve-time counters.
    """

    def __init__(self, default_params: Optional[EncryptionParams] = None,
                 metrics=None):
        self._default_params = default_params
        self._models: Dict[str, RegisteredModel] = {}
        self._lock = threading.Lock()
        self.metrics = metrics

    def _record_registration(self, registered: RegisteredModel,
                             delta: int) -> None:
        if self.metrics is None:
            return
        self.metrics.gauge("registry_models").inc(delta)
        if delta > 0:
            self.metrics.counter("registry_setup_ms").inc(
                registered.setup_ms
            )
            self.metrics.counter(
                "registry_registered", {"model": registered.name}
            ).inc()

    def register(
        self,
        name: str,
        model: Union[DecisionForest, CompiledModel],
        precision: int = 8,
        params: Optional[EncryptionParams] = None,
        autoselect_params: bool = False,
        max_batch_size: Optional[int] = None,
        encrypted_model: bool = True,
        engine: str = ENGINE_TAPE,
        seccomp_variant: str = VARIANT_ALOUFI,
        backend: Optional[str] = None,
    ) -> RegisteredModel:
        """Compile, parameter-select, encrypt, and plan ``model`` once.

        ``model`` may be a :class:`DecisionForest` (compiled here at
        ``precision``) or an already-compiled model.  Parameters resolve
        in priority order: explicit ``params``, then the Table 5 autotuner
        when ``autoselect_params`` is set, then the registry default, then
        the paper's defaults.  ``max_batch_size`` caps the packing
        capacity below what the slots allow (a latency knob);
        ``encrypted_model=False`` keeps the model in plaintext on the
        server (Maurice = Sally).

        ``engine="tape"`` (the default) also lowers the batched pipeline
        onto the IR, optimizes it, and compiles the resulting
        :class:`~repro.ir.plan.InferencePlan` into a cached
        :class:`~repro.ir.tape.CompiledTape` (scheduled rotations,
        register reuse, fused kernels) that every batch executes;
        ``engine="plan"`` stops at the graph-walking plan executor;
        ``engine="eager"`` keeps the hand-scheduled interpreter.  The
        plan/tape must match the batcher's SecComp ``seccomp_variant``.

        ``backend`` picks the FHE backend this model is encrypted under
        and every batch is evaluated on (a registered name; default
        ``$REPRO_BACKEND`` or ``"reference"``).  An unknown name fails
        here, before the expensive compile/encrypt pipeline runs.
        """
        if not name:
            raise ValidationError("a registered model needs a non-empty name")
        if engine not in ENGINES:
            raise ValidationError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        backend = canonical_backend_name(backend)
        with self._lock:
            # Fail before the expensive compile/encrypt pipeline; the
            # insert below re-checks in case of a registration race.
            if name in self._models:
                raise ValidationError(
                    f"a model named {name!r} is already registered"
                )
        forest: Optional[DecisionForest] = None
        if isinstance(model, CompiledModel):
            compiled = model
            forest = model.source_forest
        elif isinstance(model, DecisionForest):
            forest = model
            compiled = CopseCompiler(precision=precision).compile(model)
        else:
            raise ValidationError(
                f"cannot register a {type(model).__name__}; expected a "
                f"DecisionForest or CompiledModel"
            )

        compiler = CopseCompiler(precision=compiled.precision)
        if params is None:
            if autoselect_params:
                params = compiler.select_parameters(compiled)
            else:
                params = self._default_params or EncryptionParams.paper_defaults()
        compiled.check_parameters(params)
        layout = plan_layout(compiled, params, max_batch_size=max_batch_size)

        ctx = FheContext(params, backend=backend)
        keys = ctx.keygen()
        cost_model = CostModel(params)
        batched = build_batched_model(
            ctx,
            compiled,
            layout,
            public_key=keys.public if encrypted_model else None,
        )
        setup_ms = cost_model.sequential_ms(ctx.tracker)

        plan: Optional[InferencePlan] = None
        tape: Optional[CompiledTape] = None
        megakernel: Optional[MegaKernel] = None
        if engine in (ENGINE_PLAN, ENGINE_TAPE, ENGINE_MEGAKERNEL):
            plan = lower_batched_inference(
                compiled,
                layout,
                encrypted_model=encrypted_model,
                variant=seccomp_variant,
            )
        if engine in (ENGINE_TAPE, ENGINE_MEGAKERNEL):
            tape = plan.compile_tape()
        if engine == ENGINE_MEGAKERNEL:
            megakernel = compile_megakernel(tape)

        registered = RegisteredModel(
            name=name,
            compiled=compiled,
            params=params,
            layout=layout,
            spec=ModelOwner(compiled).query_spec(),
            keys=keys,
            batched_model=batched,
            cost_model=cost_model,
            encrypted_model=encrypted_model,
            forest=forest,
            setup_ms=setup_ms,
            engine=engine,
            backend=backend,
            plan=plan,
            tape=tape,
            megakernel=megakernel,
        )
        with self._lock:
            if name in self._models:
                raise ValidationError(
                    f"a model named {name!r} is already registered"
                )
            self._models[name] = registered
        self._record_registration(registered, +1)
        return registered

    def get(self, name: str) -> RegisteredModel:
        with self._lock:
            if name not in self._models:
                known = ", ".join(sorted(self._models)) or "none"
                raise ValidationError(
                    f"no registered model named {name!r} (registered: {known})"
                )
            return self._models[name]

    # ------------------------------------------------------------------
    # Live reconfiguration (control-plane actuation seams)
    # ------------------------------------------------------------------

    def _checked_for_update(self, name: str,
                            expected_fingerprint: Optional[str]
                            ) -> RegisteredModel:
        """Look up ``name`` and fail closed on a fingerprint mismatch.

        Callers that pass ``expected_fingerprint`` (the control plane's
        guards do) only proceed when the registered compiled model is
        byte-for-byte the one their decision was made about.
        """
        registered = self.get(name)
        if expected_fingerprint is not None:
            actual = registered.compiled.fingerprint()
            if actual != expected_fingerprint:
                raise ValidationError(
                    f"model {name!r} fingerprint {actual} does not match "
                    f"expected {expected_fingerprint}; refusing to "
                    f"reconfigure a model the decision was not made about"
                )
        return registered

    def set_engine(self, name: str, engine: str,
                   expected_fingerprint: Optional[str] = None
                   ) -> RegisteredModel:
        """Flip a registered model's execution engine in place.

        The batcher builds its evaluation server per batch from the
        registered entry, so the flip takes effect on the next cut — no
        re-encryption and no restart.  Missing derived artifacts are
        compiled lazily: flipping an eager model to ``plan``/``tape``
        lowers the batched pipeline now (under the default SecComp
        variant), and flipping to ``tape`` compiles the cached plan's
        tape.  ``expected_fingerprint`` makes the flip fail closed
        against a concurrently replaced model.
        """
        if engine not in ENGINES:
            raise ValidationError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        registered = self._checked_for_update(name, expected_fingerprint)
        with self._lock:
            if registered.engine == engine:
                return registered
            if engine in (ENGINE_PLAN, ENGINE_TAPE, ENGINE_MEGAKERNEL):
                if registered.plan is None:
                    registered.plan = lower_batched_inference(
                        registered.compiled,
                        registered.layout,
                        encrypted_model=registered.encrypted_model,
                        variant=VARIANT_ALOUFI,
                    )
                if engine in (ENGINE_TAPE, ENGINE_MEGAKERNEL) \
                        and registered.tape is None:
                    registered.tape = registered.plan.compile_tape()
                if engine == ENGINE_MEGAKERNEL \
                        and registered.megakernel is None:
                    registered.megakernel = compile_megakernel(
                        registered.tape
                    )
            registered.engine = engine
        if self.metrics is not None:
            self.metrics.counter(
                "registry_engine_flips", {"model": name}
            ).inc()
        return registered

    def switch_backend(self, name: str, backend: str,
                       expected_fingerprint: Optional[str] = None
                       ) -> RegisteredModel:
        """Re-home a registered model onto a different FHE backend.

        Backends wrap ciphertexts in their own representations, so this
        is a rebuild, not a flag flip: a fresh context and session key
        pair on the target backend, and the batched model re-encrypted
        under them.  In-flight batches must be drained by the caller
        first (the service seams do); queued queries are unaffected —
        they carry plaintext features and are encrypted per batch.
        """
        backend = canonical_backend_name(backend)
        registered = self._checked_for_update(name, expected_fingerprint)
        with self._lock:
            if registered.backend == backend:
                return registered
            ctx = FheContext(registered.params, backend=backend)
            keys = ctx.keygen()
            batched = build_batched_model(
                ctx,
                registered.compiled,
                registered.layout,
                public_key=(
                    keys.public if registered.encrypted_model else None
                ),
            )
            registered.keys = keys
            registered.batched_model = batched
            registered.backend = backend
            registered.setup_ms += registered.cost_model.sequential_ms(
                ctx.tracker
            )
        if self.metrics is not None:
            self.metrics.counter(
                "registry_backend_switches", {"model": name}
            ).inc()
        return registered

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._models)

    def unregister(self, name: str) -> None:
        with self._lock:
            removed = self._models.pop(name, None)
        if removed is not None:
            self._record_registration(removed, -1)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._models

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)
