"""repro.serve: batched secure-inference service over the COPSE stack.

The single-query runtime leaves most BGV SIMD slots idle and re-encrypts
the model on every call.  This subsystem amortizes both across a query
stream:

* :mod:`repro.serve.packing` — batch geometry (:class:`BatchLayout`):
  ``B = slot_count // padded_width`` queries per ciphertext, slot packing
  and result demultiplexing;
* :mod:`repro.serve.batched_runtime` — Algorithm 1 over a packed batch:
  block-local gathers replace cyclic rotations so one comparison /
  reshuffle / levels / accumulate pipeline serves every packed query;
* :mod:`repro.serve.registry` — :class:`ModelRegistry`: compile,
  parameter-select, and encrypt each model exactly once — and, with the
  default ``engine="plan"``, lower + optimize its batched pipeline into
  a cached :class:`~repro.ir.plan.InferencePlan` that every batch
  executes (``engine="eager"`` keeps the hand-scheduled interpreter);
* :mod:`repro.serve.batcher` — :class:`QueryBatcher`: validate, queue,
  cut, evaluate, demultiplex, oracle-verify;
* :mod:`repro.serve.scheduler` — :class:`Scheduler`: worker pool draining
  the batch queue (the paper's Figure 7/8 inter-query parallelism);
* :mod:`repro.serve.service` — :class:`CopseService`: the
  ``register_model`` / ``submit`` / ``stats`` facade.

Quickstart::

    from repro.serve import CopseService

    with CopseService(threads=4) as service:
        service.register_model("credit", forest)
        results = service.classify_many("credit", queries)
        print(service.stats().render())

See DESIGN.md (serve subsystem inventory) for the architecture and trust
model, and EXPERIMENTS.md for the throughput measurements.
"""

from repro.serve.packing import BatchLayout, plan_layout
from repro.serve.batched_runtime import (
    BATCH_INFERENCE_PHASES,
    BatchedCopseServer,
    BatchedEncryptedModel,
    build_batched_model,
    encrypt_batch,
)
from repro.serve.registry import ModelRegistry, RegisteredModel
from repro.serve.batcher import (
    BatchRecord,
    ClassificationResult,
    QueryBatcher,
)
from repro.serve.scheduler import Scheduler
from repro.serve.service import CopseService, ServiceStats

__all__ = [
    "BatchLayout",
    "plan_layout",
    "BATCH_INFERENCE_PHASES",
    "BatchedCopseServer",
    "BatchedEncryptedModel",
    "build_batched_model",
    "encrypt_batch",
    "ModelRegistry",
    "RegisteredModel",
    "QueryBatcher",
    "BatchRecord",
    "ClassificationResult",
    "Scheduler",
    "CopseService",
    "ServiceStats",
]
