"""repro.serve: batched secure-inference service over the COPSE stack.

The single-query runtime leaves most BGV SIMD slots idle and re-encrypts
the model on every call.  This subsystem amortizes both across a query
stream:

* :mod:`repro.serve.packing` — batch geometry (:class:`BatchLayout`):
  ``B = slot_count // padded_width`` queries per ciphertext, slot packing
  and result demultiplexing;
* :mod:`repro.serve.batched_runtime` — Algorithm 1 over a packed batch:
  block-local gathers replace cyclic rotations so one comparison /
  reshuffle / levels / accumulate pipeline serves every packed query;
* :mod:`repro.serve.registry` — :class:`ModelRegistry`: compile,
  parameter-select, and encrypt each model exactly once — and, with the
  default ``engine="tape"``, lower + optimize its batched pipeline into
  a cached :class:`~repro.ir.plan.InferencePlan` and compile that into
  a :class:`~repro.ir.tape.CompiledTape` (linearized, register-reused,
  rotation-scheduled) that every batch executes (``engine="plan"``
  keeps the graph-walking executor, ``engine="eager"`` the
  hand-scheduled interpreter);
* :mod:`repro.serve.batcher` — :class:`QueryBatcher`: validate,
  evaluate, demultiplex, oracle-verify;
* :mod:`repro.serve.scheduler` — the event-driven, deadline-aware,
  multi-tenant scheduler: per-model bounded queues with admission
  control, adaptive batch cutting (full *or* out of deadline slack),
  weighted fair sharing, crash retries.  A pure decision core
  (:class:`SchedulerCore`) drives both the threaded :class:`Scheduler`
  and the simulator;
* :mod:`repro.serve.simclock` — the :class:`Clock` seam (real vs
  :class:`VirtualClock`) that makes scheduling decisions simulable;
* :mod:`repro.serve.loadgen` — seeded open-loop load generation
  (Poisson + bursts, heterogeneous tenants), fault injection, and the
  deterministic discrete-event :class:`SimRunner`;
* :mod:`repro.serve.service` — :class:`CopseService`: the
  ``register_model`` / ``submit`` / ``stats`` facade;
* :mod:`repro.serve.cluster` — the multi-process serve cluster:
  :class:`RouterCore` (pure placement/failover over the scheduler core:
  ship-once model distribution keyed by compiled-model fingerprints,
  worker epochs, heartbeats, draining restarts),
  :class:`ClusterSimRunner` (deterministic soaks with injected worker
  crashes), and :class:`ClusterService` (real ``multiprocessing``
  workers behind :mod:`repro.serve.transport` pipes, each running
  :func:`repro.serve.worker.worker_main`);
* :mod:`repro.serve.faults` — fault-domain hardening policies:
  :class:`RetryPolicy` (deterministic exponential backoff + hedged
  re-execution), :class:`CircuitBreaker` (per (model, worker)
  closed/open/half-open placement vetoes), the bounded
  :class:`DeadLetterQueue` fed by poison-batch quarantine bisection,
  the engine/backend degradation ladders, and the test-only
  :class:`TransportFaultPlan` chaos shim for real worker processes.

Quickstart::

    from repro.serve import CopseService

    with CopseService(threads=4) as service:
        service.register_model("credit", forest)
        results = service.classify_many("credit", queries)
        print(service.stats().render())

See DESIGN.md (serve subsystem inventory) for the architecture and trust
model, and EXPERIMENTS.md for the throughput measurements.
"""

from repro.serve.packing import BatchLayout, plan_layout
from repro.serve.batched_runtime import (
    BATCH_INFERENCE_PHASES,
    BatchedCopseServer,
    BatchedEncryptedModel,
    build_batched_model,
    encrypt_batch,
)
from repro.serve.registry import ModelRegistry, RegisteredModel
from repro.serve.batcher import (
    BatchRecord,
    ClassificationResult,
    QueryBatcher,
)
from repro.serve.simclock import Clock, RealClock, VirtualClock
from repro.serve.scheduler import (
    Assignment,
    QueryTicket,
    Scheduler,
    SchedulerCore,
    SchedulerStats,
)
from repro.serve.loadgen import (
    Arrival,
    FaultPlan,
    ModelProfile,
    SimReport,
    SimRunner,
    TenantSpec,
    generate_arrivals,
    offered_load,
)
from repro.serve.service import CopseService, ServiceStats
from repro.serve.transport import BatchRequest, BatchResult, ShippedModel
from repro.serve.cluster import (
    ClusterService,
    ClusterSimRunner,
    RouterCore,
)
from repro.serve.faults import (
    BACKEND_LADDER,
    ENGINE_LADDER,
    CircuitBreaker,
    DeadLetter,
    DeadLetterQueue,
    RetryPolicy,
    TransportFaultPlan,
    chaos_worker_main,
    degrade_backend,
    degrade_engine,
)

__all__ = [
    "BatchLayout",
    "plan_layout",
    "BATCH_INFERENCE_PHASES",
    "BatchedCopseServer",
    "BatchedEncryptedModel",
    "build_batched_model",
    "encrypt_batch",
    "ModelRegistry",
    "RegisteredModel",
    "QueryBatcher",
    "BatchRecord",
    "ClassificationResult",
    "Clock",
    "RealClock",
    "VirtualClock",
    "Assignment",
    "QueryTicket",
    "Scheduler",
    "SchedulerCore",
    "SchedulerStats",
    "Arrival",
    "FaultPlan",
    "ModelProfile",
    "SimReport",
    "SimRunner",
    "TenantSpec",
    "generate_arrivals",
    "offered_load",
    "CopseService",
    "ServiceStats",
    "ShippedModel",
    "BatchRequest",
    "BatchResult",
    "RouterCore",
    "ClusterSimRunner",
    "ClusterService",
    "RetryPolicy",
    "CircuitBreaker",
    "DeadLetter",
    "DeadLetterQueue",
    "ENGINE_LADDER",
    "BACKEND_LADDER",
    "degrade_engine",
    "degrade_backend",
    "TransportFaultPlan",
    "chaos_worker_main",
]
