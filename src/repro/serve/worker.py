"""The serve-cluster worker process: receive models once, evaluate batches.

:func:`worker_main` is the ``spawn`` target of every pool process.  A
worker is deliberately dumb — the detect/schedule/verify intelligence
lives in the router — and holds no scheduling state at all:

* ``("load", ShippedModel)`` — verify the envelope fail-closed
  (:meth:`~repro.serve.transport.ShippedModel.verify`) and cache the
  rebuilt registered model.  The router ships each model at most once
  per (worker, epoch), so this is the only time the multi-megabyte
  bundle crosses the pipe.
* ``("eval", BatchRequest)`` — run the full amortized pipeline on a
  fresh per-batch :class:`~repro.fhe.context.FheContext` (pack +
  encrypt, engine execution, decrypt, demux, optional oracle check) and
  send back a :class:`~repro.serve.transport.BatchResult` of plain
  numbers.  Worker-side failures are caught and returned as an
  ``error`` result — the router decides retry vs. fail, the worker
  never dies on a bad batch.
* ``("ping",)`` / ``("stop",)`` — heartbeat and shutdown.

Everything a worker computes is a pure function of the shipped model
and the batch's features, which is what makes 1-worker and N-worker
clusters bit-identical: the same batches produce the same bitvectors no
matter which process evaluates them.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.runtime import (
    ENGINE_MEGAKERNEL,
    ENGINE_PLAN,
    ENGINE_TAPE,
    PHASE_DATA_ENCRYPT,
    PHASE_MEGAKERNEL,
    PHASE_PLAN,
    PHASE_TAPE,
)
from repro.fhe.context import FheContext
from repro.serve.batched_runtime import (
    BATCH_INFERENCE_PHASES,
    BatchedCopseServer,
    encrypt_batch,
)
from repro.serve.packing import demux_bitvectors
from repro.serve.transport import (
    MSG_EVAL,
    MSG_LOAD,
    MSG_LOADED,
    MSG_PING,
    MSG_PONG,
    MSG_READY,
    MSG_RESULT,
    MSG_STOP,
    BatchRequest,
    BatchResult,
)

__all__ = ["evaluate_batch", "worker_main"]


def evaluate_batch(
    registered,
    features: List[List[int]],
    verify_oracle: bool = False,
    engine: Optional[str] = None,
) -> Tuple[List[List[int]], dict, float, float, Optional[List[bool]]]:
    """Evaluate one batch of raw features against a registered model.

    The worker-side mirror of
    :meth:`~repro.serve.batcher.QueryBatcher._evaluate`, minus futures
    and spans (those live router-side): fresh context, batch encryption,
    engine execution, decryption, demux, cost-model phase attribution.
    ``engine`` overrides the registered engine (the degradation ladder
    re-runs a failed batch on a slower rung).  Returns ``(bitvectors,
    phase_ms, inference_ms, data_encrypt_ms, oracle_ok)``.
    """
    if engine is None:
        engine = registered.engine
    ctx = FheContext(registered.params, backend=registered.backend)
    server = BatchedCopseServer(
        ctx,
        engine=engine,
        plan=registered.plan,
        tape=registered.tape,
        megakernel=registered.megakernel,
    )
    query = encrypt_batch(ctx, registered.layout, features, registered.keys)
    encrypted = server.classify_batch(registered.batched_model, query)
    bits = ctx.decrypt_bits(encrypted, registered.keys.secret)
    bitvectors = demux_bitvectors(registered.layout, bits, len(features))

    cost = registered.cost_model
    if engine == ENGINE_MEGAKERNEL:
        inference_phases = (PHASE_MEGAKERNEL,)
    elif engine == ENGINE_TAPE:
        inference_phases = (PHASE_TAPE,)
    elif engine == ENGINE_PLAN:
        inference_phases = (PHASE_PLAN,)
    else:
        inference_phases = BATCH_INFERENCE_PHASES
    phase_ms = {
        phase: cost.phase_sequential_ms(ctx.tracker, phase)
        for phase in (PHASE_DATA_ENCRYPT,) + inference_phases
    }
    inference_ms = sum(phase_ms[p] for p in inference_phases)

    oracle_ok: Optional[List[bool]] = None
    if verify_oracle and registered.forest is not None:
        oracle_ok = [
            bitvectors[k] == registered.forest.label_bitvector(f)
            for k, f in enumerate(features)
        ]
    return (
        bitvectors,
        phase_ms,
        inference_ms,
        phase_ms[PHASE_DATA_ENCRYPT],
        oracle_ok,
    )


def _eval_result(
    worker_id: int, request: BatchRequest, models
) -> BatchResult:
    from repro.serve.faults import degrade_engine

    degraded: Optional[str] = None
    try:
        registered = models.get(request.model)
        if registered is None:
            raise KeyError(
                f"worker {worker_id} has no model {request.model!r} "
                f"loaded (epoch {request.epoch}); the router must ship "
                f"before it assigns"
            )
        features = [list(f) for f in request.features]
        engine = registered.engine
        while True:
            # The degradation ladder: when an engine raises, retry the
            # batch one rung down (megakernel -> tape -> plan -> eager)
            # instead of failing it — a broken fast path degrades to a
            # slower correct one, and the router audits the fallback.
            try:
                (bitvectors, phase_ms, inference_ms, data_encrypt_ms,
                 oracle_ok) = evaluate_batch(
                    registered, features,
                    verify_oracle=request.verify_oracle, engine=engine,
                )
                break
            except BaseException:
                lower = degrade_engine(engine)
                if lower is None:
                    raise
                engine = lower
                degraded = lower
        return BatchResult(
            batch_id=request.batch_id,
            model=request.model,
            worker=worker_id,
            epoch=request.epoch,
            bitvectors=tuple(tuple(b) for b in bitvectors),
            phase_ms=phase_ms,
            inference_ms=inference_ms,
            data_encrypt_ms=data_encrypt_ms,
            oracle_ok=(
                None if oracle_ok is None else tuple(oracle_ok)
            ),
            oracle_failures=(
                None if oracle_ok is None
                else sum(1 for ok in oracle_ok if not ok)
            ),
            degraded_engine=degraded,
        )
    except BaseException as exc:  # contained: the router decides
        return BatchResult(
            batch_id=request.batch_id,
            model=request.model,
            worker=worker_id,
            epoch=request.epoch,
            bitvectors=None,
            phase_ms={},
            inference_ms=0.0,
            data_encrypt_ms=0.0,
            error=f"{type(exc).__name__}: {exc}",
        )


def worker_main(conn, worker_id: int, epoch: int) -> None:
    """Run one pool worker over ``conn`` until ``("stop",)`` or EOF.

    ``epoch`` is the router's incarnation counter for this worker slot
    at spawn time; every message the worker sends echoes it, so results
    from a superseded incarnation are recognizable router-side.
    """
    models = {}
    conn.send((MSG_READY, worker_id, epoch))
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break  # router went away; nothing left to serve
        tag = message[0]
        if tag == MSG_LOAD:
            shipped = message[1]
            registered = shipped.to_registered()  # verifies fail-closed
            models[shipped.name] = registered
            conn.send((
                MSG_LOADED, worker_id, epoch, shipped.name,
                shipped.fingerprint,
            ))
        elif tag == MSG_EVAL:
            conn.send((MSG_RESULT, _eval_result(worker_id, message[1],
                                                models)))
        elif tag == MSG_PING:
            conn.send((MSG_PONG, worker_id, epoch))
        elif tag == MSG_STOP:
            break
    conn.close()
