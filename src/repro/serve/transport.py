"""Picklable envelopes for the multi-process serve cluster.

Everything that crosses a router/worker process boundary is defined
here, and everything here must survive ``pickle`` under the ``spawn``
start method (no lambdas, locks, futures, open trackers, or lazily
cached derived state — :class:`~repro.ir.tape.FusedSpec` drops its
gather caches in ``__getstate__`` for exactly this reason, and
:class:`~repro.ir.megakernel.MegaKernel` reduces to its tape and
recompiles lazily on the other side):

* :class:`ShippedModel` — the compiled model bundle a worker receives
  **exactly once** per (worker, epoch): the registered model's cached
  parameters, layout, keys, once-encrypted batched model, and compiled
  plan/tape/megakernel.  Binding is fail-closed by the existing
  :meth:`~repro.core.compiler.CompiledModel.fingerprint`: the envelope
  carries the fingerprint it was shipped under, and :meth:`verify`
  recomputes and cross-checks it against every cached artifact before
  the worker will evaluate a single batch.
* :class:`BatchRequest` / :class:`BatchResult` — one cut batch's raw
  integer features out, and its distilled measurements back (decrypted
  bitvectors, phase milliseconds, oracle verdicts).  The worker's
  :class:`~repro.fhe.tracker.OpTracker` never crosses the boundary —
  results carry plain numbers only.

Messages are ``(tag, payload...)`` tuples; the tags are the protocol
constants below.  Every message except ``MSG_LOAD`` is small; a worker
always returns to ``recv`` between evaluations, so the router can ship
a multi-megabyte envelope without a send/send deadlock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ServeError

__all__ = [
    "ShippedModel",
    "BatchRequest",
    "BatchResult",
    "MSG_LOAD",
    "MSG_EVAL",
    "MSG_PING",
    "MSG_STOP",
    "MSG_READY",
    "MSG_LOADED",
    "MSG_PONG",
    "MSG_RESULT",
]

# Router -> worker message tags.
MSG_LOAD = "load"    #: ("load", ShippedModel)
MSG_EVAL = "eval"    #: ("eval", BatchRequest)
MSG_PING = "ping"    #: ("ping",)
MSG_STOP = "stop"    #: ("stop",)

# Worker -> router message tags.
MSG_READY = "ready"      #: ("ready", worker_id, epoch)
MSG_LOADED = "loaded"    #: ("loaded", worker_id, epoch, model, fingerprint)
MSG_PONG = "pong"        #: ("pong", worker_id, epoch)
MSG_RESULT = "result"    #: ("result", BatchResult)


@dataclass(frozen=True)
class ShippedModel:
    """A registered model, packaged for one-shot shipment to a worker.

    Field-for-field the picklable core of
    :class:`~repro.serve.registry.RegisteredModel`.  ``fingerprint`` is
    the :meth:`CompiledModel.fingerprint` recorded at packaging time;
    :meth:`verify` is the fail-closed gate every receiver runs before
    rebuilding a worker-side registered model.
    """

    name: str
    fingerprint: str
    compiled: object
    params: object
    layout: object
    spec: object
    keys: object
    batched_model: object
    cost_model: object
    encrypted_model: bool
    engine: str
    backend: str
    plan: Optional[object] = field(default=None, repr=False)
    tape: Optional[object] = field(default=None, repr=False)
    megakernel: Optional[object] = field(default=None, repr=False)
    forest: Optional[object] = field(default=None, repr=False)
    setup_ms: float = 0.0

    @classmethod
    def from_registered(cls, registered) -> "ShippedModel":
        """Package a :class:`RegisteredModel` (fingerprint recorded now)."""
        return cls(
            name=registered.name,
            fingerprint=registered.compiled.fingerprint(),
            compiled=registered.compiled,
            params=registered.params,
            layout=registered.layout,
            spec=registered.spec,
            keys=registered.keys,
            batched_model=registered.batched_model,
            cost_model=registered.cost_model,
            encrypted_model=registered.encrypted_model,
            engine=registered.engine,
            backend=registered.backend,
            plan=registered.plan,
            tape=registered.tape,
            megakernel=registered.megakernel,
            forest=registered.forest,
            setup_ms=registered.setup_ms,
        )

    def verify(self) -> str:
        """Fail-closed integrity check; returns the verified fingerprint.

        Recomputes the compiled model's fingerprint and requires every
        cached artifact in the envelope — the batched ciphertext bundle,
        the lowered plan, the compiled tape, the megakernel — to
        carry exactly it.  An
        envelope that cannot prove it is one consistent model is
        refused before any batch can be evaluated against it.
        """
        actual = self.compiled.fingerprint()
        if actual != self.fingerprint:
            raise ServeError(
                f"shipped model {self.name!r} fails verification: "
                f"envelope fingerprint {self.fingerprint} != compiled "
                f"model fingerprint {actual}"
            )
        checks = (
            ("batched model", getattr(self.batched_model, "fingerprint",
                                      None)),
            ("plan", getattr(self.plan, "model_fingerprint", None)
             if self.plan is not None else actual),
            ("tape", getattr(self.tape, "model_fingerprint", None)
             if self.tape is not None else actual),
            ("megakernel",
             getattr(self.megakernel, "model_fingerprint", None)
             if self.megakernel is not None else actual),
        )
        for what, fp in checks:
            if fp != actual:
                raise ServeError(
                    f"shipped model {self.name!r} fails verification: "
                    f"{what} fingerprint {fp} != compiled model "
                    f"fingerprint {actual}"
                )
        return actual

    def to_registered(self):
        """Rebuild the worker-side :class:`RegisteredModel` (verified)."""
        from repro.serve.registry import RegisteredModel

        self.verify()
        return RegisteredModel(
            name=self.name,
            compiled=self.compiled,
            params=self.params,
            layout=self.layout,
            spec=self.spec,
            keys=self.keys,
            batched_model=self.batched_model,
            cost_model=self.cost_model,
            encrypted_model=self.encrypted_model,
            forest=self.forest,
            setup_ms=self.setup_ms,
            engine=self.engine,
            backend=self.backend,
            plan=self.plan,
            tape=self.tape,
            megakernel=self.megakernel,
        )


@dataclass(frozen=True)
class BatchRequest:
    """One cut batch, router -> worker: raw integer features only."""

    batch_id: int
    model: str
    #: Router's epoch for the target worker at dispatch time; echoed in
    #: the result so a completion from a superseded worker incarnation
    #: is recognized and dropped.
    epoch: int
    features: Tuple[Tuple[int, ...], ...]
    verify_oracle: bool = False


@dataclass(frozen=True)
class BatchResult:
    """One evaluated batch, worker -> router: distilled numbers only."""

    batch_id: int
    model: str
    worker: int
    epoch: int
    #: Per-query decrypted label bitvectors (None when ``error`` is set).
    bitvectors: Optional[Tuple[Tuple[int, ...], ...]]
    phase_ms: Dict[str, float]
    inference_ms: float
    data_encrypt_ms: float
    #: Per-query oracle agreement (None when verification was off).
    oracle_ok: Optional[Tuple[bool, ...]] = None
    oracle_failures: Optional[int] = None
    #: repr of the worker-side exception, when evaluation failed.
    error: Optional[str] = None
    #: Set when the worker fell down the engine ladder mid-batch: the
    #: engine that actually produced the bitvectors (router audits it).
    degraded_engine: Optional[str] = None
