"""Fault-domain policy objects for the serve cluster.

Everything here is a *pure policy*: deterministic state machines the
:class:`~repro.serve.cluster.RouterCore` consults when a worker fails,
with no clocks, threads, or randomness of their own — the PR 4
decision-core discipline.  Given the same inputs at the same ``now``
values, every object here makes the same choices, which is what lets a
chaos soak replay byte-identical decision logs.

* :class:`RetryPolicy` — exponential backoff with **deterministic
  seeded jitter** (a crc32 hash of ``(seed, key, attempt)``, not a live
  RNG) replacing the scheduler's original immediate requeue, plus the
  hedged re-execution knobs: a batch in flight past
  ``hedge_factor x`` its estimated service time is speculatively
  re-dispatched to a second worker; first valid completion wins and the
  loser is discarded by the existing epoch/busy staleness check.
* :class:`CircuitBreaker` — per ``(model, worker)`` closed / open /
  half-open states.  Enough consecutive failures open the pair (the
  router places that model elsewhere); after ``open_s`` one half-open
  probe is allowed, and its outcome decides closed vs. re-open.
* :class:`DeadLetterQueue` — the bounded terminal parking lot for
  queries that quarantine bisection isolated as poison.  Inspectable
  via ``repro serve`` stats and the ``repro dlq`` CLI.
* Degradation ladders — the ordered fallback chains
  ``megakernel -> tape -> plan -> eager`` and ``vector -> reference``
  workers walk when an engine or capability raises, so a broken
  fast path degrades to a slower correct one instead of failing the
  batch.
* :class:`TransportFaultPlan` / :func:`chaos_worker_main` — the
  **test-only** transport shim that injects the same chaos matrix the
  simulator models (corrupted envelopes, truncated / dropped /
  duplicated completions, poison queries) into *real*
  ``multiprocessing`` workers, so the recovery paths are exercised
  end-to-end, not just in simulation.
"""

from __future__ import annotations

import zlib
from collections import deque
from dataclasses import dataclass, replace
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import ValidationError
from repro.serve.simclock import MS

__all__ = [
    "RetryPolicy",
    "CircuitBreaker",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    "DeadLetter",
    "DeadLetterQueue",
    "ENGINE_LADDER",
    "BACKEND_LADDER",
    "degrade_engine",
    "degrade_backend",
    "TransportFaultPlan",
    "chaos_worker_main",
]


# ---------------------------------------------------------------------------
# Retry / backoff / hedging policy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff and hedging knobs for crash recovery.

    ``backoff_s`` is a pure function of ``(seed, key, attempt)``: the
    jitter comes from a crc32 hash, never a live RNG, so two runs of the
    same fault timeline park and release retries at identical virtual
    times.  Hedging is off by default (``hedge_factor=0``): speculative
    re-execution changes which worker completes a batch, so engines only
    enable it when the workload opts in.
    """

    #: First retry delay; attempt ``n`` waits ``base * multiplier**(n-1)``.
    base_delay_ms: float = 25.0
    multiplier: float = 2.0
    max_delay_ms: float = 1000.0
    #: Jitter fraction in ``[0, 1)``: the deterministic hash shifts each
    #: delay by up to this fraction of itself.
    jitter: float = 0.25
    #: Seeds the jitter hash (vary per run to decorrelate retry storms).
    seed: int = 0
    #: A batch in flight past ``hedge_factor x`` its estimated service
    #: time is speculatively re-executed on a second worker (0 = never).
    hedge_factor: float = 0.0
    #: Floor on the hedge trigger, guarding against tiny/zero estimates.
    hedge_min_ms: float = 50.0

    def __post_init__(self) -> None:
        if self.base_delay_ms < 0:
            raise ValidationError(
                f"base_delay_ms must be >= 0, got {self.base_delay_ms}"
            )
        if self.multiplier < 1.0:
            raise ValidationError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if self.max_delay_ms < self.base_delay_ms:
            raise ValidationError(
                f"max_delay_ms ({self.max_delay_ms}) must be >= "
                f"base_delay_ms ({self.base_delay_ms})"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValidationError(
                f"jitter must be in [0, 1), got {self.jitter}"
            )
        if self.hedge_factor < 0:
            raise ValidationError(
                f"hedge_factor must be >= 0, got {self.hedge_factor}"
            )
        if self.hedge_min_ms < 0:
            raise ValidationError(
                f"hedge_min_ms must be >= 0, got {self.hedge_min_ms}"
            )

    @classmethod
    def immediate(cls) -> "RetryPolicy":
        """The pre-backoff behavior: requeue with zero delay."""
        return cls(base_delay_ms=0.0, max_delay_ms=0.0, jitter=0.0)

    def backoff_s(self, attempt: int, key: str = "") -> float:
        """Seconds to park before retry ``attempt`` (1-based) of ``key``."""
        if attempt < 1:
            raise ValidationError(f"attempt must be >= 1, got {attempt}")
        delay_ms = min(
            self.base_delay_ms * self.multiplier ** (attempt - 1),
            self.max_delay_ms,
        )
        if self.jitter > 0 and delay_ms > 0:
            digest = zlib.crc32(
                f"{self.seed}:{key}:{attempt}".encode()
            )
            fraction = (digest % 10_000) / 10_000.0
            delay_ms *= 1.0 + self.jitter * fraction
        return delay_ms * MS

    @property
    def hedging_enabled(self) -> bool:
        return self.hedge_factor > 0

    def hedge_after_s(self, estimate_s: float) -> float:
        """In-flight seconds after which a batch earns a hedge."""
        return max(
            self.hedge_min_ms * MS, self.hedge_factor * estimate_s
        )


# ---------------------------------------------------------------------------
# Circuit breakers
# ---------------------------------------------------------------------------

BREAKER_CLOSED = "closed"        #: normal: placement allowed
BREAKER_OPEN = "open"            #: tripped: placement refused
BREAKER_HALF_OPEN = "half_open"  #: probing: one trial placement allowed


class _BreakerState:
    __slots__ = ("state", "failures", "opened_at", "probe_taken")

    def __init__(self) -> None:
        self.state = BREAKER_CLOSED
        self.failures = 0
        self.opened_at = 0.0
        self.probe_taken = False


class CircuitBreaker:
    """Per-key closed/open/half-open breaker bank.

    Keys are ``(model, worker)`` pairs in the router, but the bank is
    key-agnostic.  ``failure_threshold`` consecutive failures open a
    key; after ``open_s`` the next :meth:`allow` moves it to half-open
    and admits exactly one probe, whose success/failure closes or
    re-opens it.  All transitions are returned to the caller so they
    can land in the decision log.
    """

    def __init__(self, failure_threshold: int = 3, open_s: float = 2.0):
        if failure_threshold < 1:
            raise ValidationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if open_s <= 0:
            raise ValidationError(f"open_s must be > 0, got {open_s}")
        self.failure_threshold = failure_threshold
        self.open_s = open_s
        self._states: Dict[Tuple, _BreakerState] = {}

    def _state(self, key: Tuple) -> _BreakerState:
        state = self._states.get(key)
        if state is None:
            state = self._states[key] = _BreakerState()
        return state

    def state(self, key: Tuple) -> str:
        entry = self._states.get(key)
        return entry.state if entry is not None else BREAKER_CLOSED

    def allow(self, key: Tuple, now: float) -> Tuple[bool, Optional[str]]:
        """May the caller place on ``key`` right now?

        Returns ``(allowed, transition)`` where ``transition`` is
        ``"half_open"`` when this call moved an expired open breaker
        into its probe window (callers record it).
        """
        entry = self._states.get(key)
        if entry is None or entry.state == BREAKER_CLOSED:
            return True, None
        if entry.state == BREAKER_OPEN:
            if now - entry.opened_at >= self.open_s:
                entry.state = BREAKER_HALF_OPEN
                entry.probe_taken = True  # this caller takes the probe
                return True, BREAKER_HALF_OPEN
            return False, None
        # Half-open: exactly one in-flight probe at a time.
        if entry.probe_taken:
            return False, None
        entry.probe_taken = True
        return True, None

    def release_probe(self, key: Tuple) -> None:
        """Un-take a half-open probe that never actually placed.

        The router may clear :meth:`allow` but then find nothing to
        assign (the whole cut was cancelled); without this, the probe
        slot would stay consumed forever and the key could never heal.
        """
        entry = self._states.get(key)
        if entry is not None and entry.state == BREAKER_HALF_OPEN:
            entry.probe_taken = False

    def record_failure(self, key: Tuple, now: float) -> Optional[str]:
        """Count one failure; returns ``"open"`` when this one trips."""
        entry = self._state(key)
        if entry.state == BREAKER_HALF_OPEN:
            entry.state = BREAKER_OPEN
            entry.opened_at = now
            entry.failures = self.failure_threshold
            entry.probe_taken = False
            return BREAKER_OPEN
        entry.failures += 1
        if (
            entry.state == BREAKER_CLOSED
            and entry.failures >= self.failure_threshold
        ):
            entry.state = BREAKER_OPEN
            entry.opened_at = now
            entry.probe_taken = False
            return BREAKER_OPEN
        return None

    def record_success(self, key: Tuple, now: float) -> Optional[str]:
        """Count one success; returns ``"closed"`` when a probe heals."""
        entry = self._states.get(key)
        if entry is None:
            return None
        if entry.state == BREAKER_HALF_OPEN:
            entry.state = BREAKER_CLOSED
            entry.failures = 0
            entry.probe_taken = False
            return BREAKER_CLOSED
        entry.failures = 0
        return None

    def open_keys(self) -> List[Tuple]:
        return sorted(
            key for key, entry in self._states.items()
            if entry.state == BREAKER_OPEN
        )

    def next_transition_time(self) -> Optional[float]:
        """Earliest moment any open breaker becomes probe-eligible."""
        times = [
            entry.opened_at + self.open_s
            for entry in self._states.values()
            if entry.state == BREAKER_OPEN
        ]
        return min(times) if times else None


# ---------------------------------------------------------------------------
# Dead-letter queue
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DeadLetter:
    """One quarantined query's terminal record."""

    model: str
    tenant: str
    seq: int
    #: The batch whose repeated crashes started the bisection.
    origin_batch: int
    #: Worker crashes this query survived before isolation.
    attempts: int
    reason: str
    time: float

    def as_dict(self) -> Dict:
        return {
            "model": self.model,
            "tenant": self.tenant,
            "seq": self.seq,
            "origin_batch": self.origin_batch,
            "attempts": self.attempts,
            "reason": self.reason,
            "time": self.time,
        }


class DeadLetterQueue:
    """Bounded FIFO of :class:`DeadLetter` entries.

    Bounded because a pathological poison storm must not grow router
    memory without limit: the oldest entries age out and the drop is
    counted (``dropped``), never silent.
    """

    def __init__(self, limit: int = 64):
        if limit < 1:
            raise ValidationError(f"dlq limit must be >= 1, got {limit}")
        self.limit = limit
        self._entries: Deque[DeadLetter] = deque(maxlen=limit)
        self.dropped = 0
        self.total = 0

    def __len__(self) -> int:
        return len(self._entries)

    def append(self, entry: DeadLetter) -> None:
        if len(self._entries) == self.limit:
            self.dropped += 1
        self._entries.append(entry)
        self.total += 1

    def entries(self) -> List[DeadLetter]:
        return list(self._entries)

    def as_dicts(self) -> List[Dict]:
        return [entry.as_dict() for entry in self._entries]


# ---------------------------------------------------------------------------
# Degradation ladders
# ---------------------------------------------------------------------------

#: Fastest-first engine chain a worker walks when an engine raises.
ENGINE_LADDER = ("megakernel", "tape", "plan", "eager")
#: Backend fallback: the vectorized backend degrades to the reference.
BACKEND_LADDER = ("vector", "reference")


def degrade_engine(engine: str) -> Optional[str]:
    """The next engine down the ladder, or None at the bottom."""
    try:
        index = ENGINE_LADDER.index(engine)
    except ValueError:
        return None
    if index + 1 >= len(ENGINE_LADDER):
        return None
    return ENGINE_LADDER[index + 1]


def degrade_backend(backend: str) -> Optional[str]:
    """The next backend down the ladder, or None at the bottom."""
    try:
        index = BACKEND_LADDER.index(backend)
    except ValueError:
        return None
    if index + 1 >= len(BACKEND_LADDER):
        return None
    return BACKEND_LADDER[index + 1]


# ---------------------------------------------------------------------------
# Test-only transport chaos shim (real-process fault injection)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TransportFaultPlan:
    """Deterministic chaos applied inside a real worker process.

    The real-cluster mirror of the simulator's expanded
    :class:`~repro.serve.loadgen.FaultPlan`: counters are per-process
    and 1-based, so "``drop_result_every=3``" drops the 3rd, 6th, ...
    result the worker would have sent.  ``poison_feature`` marks a
    feature vector as poison: a batch containing it kills the process
    mid-evaluation (``os._exit``), exactly the failure shape quarantine
    bisection exists for.
    """

    #: Corrupt the fingerprint of every Nth received ShippedModel (the
    #: worker's fail-closed verify kills it; 0 disables).
    corrupt_ship_every: int = 0
    #: Truncate the bitvectors of every Nth result (0 disables).
    corrupt_result_every: int = 0
    #: Silently drop every Nth result (0 disables).
    drop_result_every: int = 0
    #: Send every Nth result twice (0 disables).
    duplicate_result_every: int = 0
    #: A feature vector that hard-kills the worker mid-batch.
    poison_feature: Optional[Tuple[int, ...]] = None


class _ChaosConnection:
    """Duplex-pipe wrapper applying a :class:`TransportFaultPlan`."""

    def __init__(self, conn, plan: TransportFaultPlan):
        self._conn = conn
        self._plan = plan
        self._ships = 0
        self._results = 0

    def recv(self):
        import os

        message = self._conn.recv()
        tag = message[0]
        plan = self._plan
        if tag == "load" and plan.corrupt_ship_every:
            self._ships += 1
            if self._ships % plan.corrupt_ship_every == 0:
                shipped = message[1]
                return (tag, replace(
                    shipped, fingerprint=shipped.fingerprint + ":corrupt"
                ))
        if tag == "eval" and plan.poison_feature is not None:
            request = message[1]
            poison = tuple(plan.poison_feature)
            if any(tuple(f) == poison for f in request.features):
                os._exit(17)  # poison: die mid-batch, no goodbye
        return message

    def send(self, message) -> None:
        tag = message[0]
        plan = self._plan
        if tag == "result":
            self._results += 1
            n = self._results
            if plan.drop_result_every and n % plan.drop_result_every == 0:
                return
            if (
                plan.corrupt_result_every
                and n % plan.corrupt_result_every == 0
            ):
                result = message[1]
                if result.bitvectors:
                    message = (tag, replace(
                        result, bitvectors=result.bitvectors[:-1]
                    ))
            self._conn.send(message)
            if (
                plan.duplicate_result_every
                and n % plan.duplicate_result_every == 0
            ):
                self._conn.send(message)
            return
        self._conn.send(message)

    def close(self) -> None:
        self._conn.close()


def chaos_worker_main(plan: TransportFaultPlan, conn, worker_id: int,
                      epoch: int) -> None:
    """A :func:`~repro.serve.worker.worker_main` with chaos injected.

    Spawn-picklable entry point for tests:
    ``functools.partial(chaos_worker_main, plan)`` plugs into
    :class:`~repro.serve.cluster.ClusterService`'s ``worker_entry``
    seam.  The worker logic is the production one — only the transport
    misbehaves.
    """
    from repro.serve.worker import worker_main

    worker_main(_ChaosConnection(conn, plan), worker_id, epoch)
