"""Command-line interface for the COPSE reproduction.

Mirrors the workflow of the original system's compiler binary plus the
evaluation harness::

    python -m repro info model.txt             # model statistics + leakage
    python -m repro compile model.txt -o staged.py   # staging compiler
    python -m repro classify model.txt --features 40,200 --engine plan
    python -m repro batch-classify model.txt --features "40,200;17,3"
    python -m repro serve model.txt --queries 64 --threads 4 \
        --deadline-ms 250 --max-queue 128
    python -m repro bench fig6 --workloads depth4,width78
    python -m repro bench plan-speedup         # eager vs plan engine
    python -m repro bench tape-speedup         # plan vs compiled-tape engine
    python -m repro bench megakernel-speedup   # tape vs megakernel engine
    python -m repro bench report               # regenerate benchmark_report.txt + BENCH_<n>.json
    python -m repro bench backend-speedup      # wall-clock per FHE backend
    python -m repro bench soak                 # simulated load vs deadlines
    python -m repro sweep                      # Table 5 parameter sweep

Every inference command accepts ``--backend`` (reference / vector /
plaintext — see ``repro.fhe.backend``); ``--precision``, ``--engine``,
``--seed``, and ``--backend`` are shared option groups declared once on
parent parsers and attached where they apply.

``model.txt`` is the paper's Section 5 serialization (see
``repro.forest.serialize``).  ``batch-classify`` and ``serve`` route
through :mod:`repro.serve`: the model is compiled and encrypted once and
the queries share ciphertext slots via cross-query SIMD packing.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import CopseError
from repro.core.codegen import generate_module_source
from repro.core.compiler import CopseCompiler
from repro.core.runtime import secure_inference
from repro.forest.serialize import loads_forest


def build_parser() -> argparse.ArgumentParser:
    from repro.fhe.backend import available_backends

    parser = argparse.ArgumentParser(
        prog="repro",
        description="COPSE: vectorized secure evaluation of decision forests",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared option groups (argparse parent parsers), so the knobs every
    # command repeats are declared once.  ``--engine`` defaults per
    # command via set_defaults: single-query classification interprets
    # eagerly, the batched service prefers the cached plan.
    model_opts = argparse.ArgumentParser(add_help=False)
    model_opts.add_argument(
        "--precision", type=int, default=8,
        help="fixed-point precision in bits (default: 8)",
    )

    backend_opts = argparse.ArgumentParser(add_help=False)
    backend_opts.add_argument(
        "--backend", choices=available_backends(), default=None,
        help="FHE backend to evaluate on (default: $REPRO_BACKEND or "
        "'reference'; 'vector' is the fast engine, 'plaintext' the "
        "no-noise debug engine)",
    )

    run_opts = argparse.ArgumentParser(add_help=False, parents=[backend_opts])
    run_opts.add_argument(
        "--engine",
        choices=["eager", "plan", "tape", "megakernel"],
        default=None,
        help="execution path: the eager Algorithm 1 interpreter, the "
        "optimized IR inference plan, or the compiled tape (linearized "
        "plan with register reuse and fused kernels; default: eager for "
        "classify, tape for the batched commands)",
    )

    seed_opts = argparse.ArgumentParser(add_help=False)
    seed_opts.add_argument(
        "--seed", type=int, default=1234,
        help="random seed for synthetic query generation",
    )

    info = sub.add_parser(
        "info", parents=[model_opts],
        help="print model statistics and leakage",
    )
    info.add_argument("model", help="serialized model file (Section 5 format)")

    compile_cmd = sub.add_parser(
        "compile", parents=[model_opts],
        help="stage a model into a specialized Python module",
    )
    compile_cmd.add_argument("model")
    compile_cmd.add_argument("-o", "--output", required=True)

    classify = sub.add_parser(
        "classify", parents=[model_opts, run_opts],
        help="run one secure inference end to end",
    )
    classify.set_defaults(engine="eager")
    classify.add_argument("model")
    classify.add_argument(
        "--features", required=True,
        help="comma-separated integer feature values",
    )
    classify.add_argument(
        "--plaintext-model", action="store_true",
        help="Maurice-equals-Sally configuration (model not encrypted)",
    )

    batch = sub.add_parser(
        "batch-classify", parents=[model_opts, run_opts],
        help="classify many queries at once via cross-query SIMD packing",
    )
    batch.set_defaults(engine="tape")
    batch.add_argument("model")
    batch.add_argument(
        "--features",
        help="semicolon-separated queries, each a comma-separated integer "
        "feature list, e.g. '40,200;17,3'",
    )
    batch.add_argument(
        "--features-file",
        help="file with one comma-separated feature list per line",
    )
    batch.add_argument("--threads", type=int, default=2)
    batch.add_argument(
        "--batch-size", type=int, default=None,
        help="cap queries packed per ciphertext (default: slot capacity)",
    )
    batch.add_argument(
        "--plaintext-model", action="store_true",
        help="keep the model in plaintext on the server (Maurice = Sally)",
    )

    serve = sub.add_parser(
        "serve", parents=[model_opts, run_opts, seed_opts],
        help="drive the batched inference service with a synthetic "
        "query stream and report throughput",
    )
    serve.set_defaults(engine="tape")
    serve.add_argument("model")
    serve.add_argument("--queries", type=int, default=32)
    serve.add_argument("--threads", type=int, default=2)
    serve.add_argument(
        "--workers", type=int, default=None,
        help="serve from a multi-process cluster with this many worker "
        "processes (router ships the compiled model to each worker "
        "once, crashes respawn under a new epoch); must be >= 1 when "
        "given; default keeps the in-process threaded service",
    )
    serve.add_argument(
        "--autoscale", action="store_true",
        help="run the control plane over the live service: an "
        "SLO/backlog autoscale policy behind the guard rail, ticked "
        "every --control-interval seconds; prints the auditable "
        "decision log at the end",
    )
    serve.add_argument(
        "--workers-min", type=int, default=1,
        help="autoscale floor for the worker pool (default: 1)",
    )
    serve.add_argument(
        "--workers-max", type=int, default=8,
        help="autoscale ceiling for the worker pool (default: 8)",
    )
    serve.add_argument(
        "--control-interval", type=float, default=1.0,
        help="seconds between control-plane ticks under --autoscale "
        "(default: 1.0)",
    )
    serve.add_argument("--batch-size", type=int, default=None)
    serve.add_argument("--plaintext-model", action="store_true")
    serve.add_argument(
        "--deadline-ms", type=float, default=None,
        help="per-query deadline in ms: partial batches dispatch when "
        "the oldest query's slack runs out, and misses are reported "
        "(default: no deadlines, best-effort)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=None,
        help="bound the pending queue; over-admission is rejected with "
        "an explicit error instead of queueing without bound "
        "(default: unbounded)",
    )
    serve.add_argument(
        "--stats-interval", type=int, default=None,
        help="emit a metrics-snapshot JSONL line after every N submitted "
        "queries (and once at the end); pretty-print a captured line "
        "with 'repro metrics'",
    )
    serve.add_argument(
        "--dlq-out", default=None,
        help="write the dead-letter queue (quarantined poison queries, "
        "clustered mode only) as JSON to this path; inspect it with "
        "'repro dlq'",
    )

    trace = sub.add_parser(
        "trace",
        help="observability reports: per-opcode tape profile, or a "
        "Perfetto-loadable trace of a simulated serve run",
    )
    trace_sub = trace.add_subparsers(dest="trace_kind", required=True)

    trace_tape = trace_sub.add_parser(
        "tape", parents=[model_opts, backend_opts],
        help="profile one full-capacity batched tape evaluation: wall "
        "time, primitive ops, and noise depth per opcode and per "
        "instruction range",
    )
    trace_tape.add_argument("model")
    trace_tape.add_argument("--batch-size", type=int, default=None)
    trace_tape.add_argument(
        "--seed", type=int, default=1234,
        help="random seed for synthetic query generation",
    )
    trace_tape.add_argument(
        "--json", dest="json_out", default=None,
        help="also write the profile as a JSON record to this path",
    )

    trace_sim = trace_sub.add_parser(
        "sim", parents=[model_opts],
        help="run the deterministic scheduler simulation with span "
        "tracing and export the trace (Chrome trace-event JSON loads "
        "in Perfetto; JSONL is one span record per line)",
    )
    trace_sim.add_argument("model")
    trace_sim.add_argument("--queries", type=int, default=200)
    trace_sim.add_argument("--threads", type=int, default=2)
    trace_sim.add_argument("--seed", type=int, default=4242)
    trace_sim.add_argument(
        "--format", choices=["chrome", "jsonl"], default="chrome",
        help="export format (default: chrome)",
    )
    trace_sim.add_argument(
        "-o", "--out", required=True,
        help="output path for the exported trace",
    )

    metrics_cmd = sub.add_parser(
        "metrics",
        help="pretty-print a metrics snapshot captured from "
        "'repro serve --stats-interval' (JSON object, or JSONL: the "
        "last line is used)",
    )
    metrics_cmd.add_argument("snapshot", help="snapshot file (JSON/JSONL)")

    dlq_cmd = sub.add_parser(
        "dlq",
        help="pretty-print a dead-letter queue dump written by "
        "'repro serve --dlq-out' (quarantined poison queries with "
        "their bisection provenance)",
    )
    dlq_cmd.add_argument("dump", help="DLQ dump file (JSON)")

    bench = sub.add_parser(
        "bench", parents=[backend_opts],
        help="regenerate a paper figure/table",
    )
    bench.add_argument(
        "artifact",
        choices=[
            "fig6", "fig7", "fig8", "fig9", "fig10",
            "table1", "table2", "table6", "throughput", "plan-speedup",
            "tape-speedup", "megakernel-speedup", "backend-speedup",
            "soak", "cluster-speedup",
            "autoscale", "chaos", "trajectory", "report",
        ],
    )
    bench.add_argument(
        "--workloads",
        help="comma-separated workload names (default: microbenchmarks "
        "for figures, width78 for table2)",
    )
    bench.add_argument(
        "--queries", type=int, default=None,
        help="queries per run (default: 1, or 16 for throughput)",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="for 'report': trim to the quick suite (also triggered by "
        "REPRO_BENCH_QUICK=1); annotated in the regenerated report",
    )
    bench.add_argument(
        "--out", default=None,
        help="for 'report': path of the JSON perf-trajectory artifact "
        "(default: BENCH_<n>.json for the current trajectory index)",
    )

    sub.add_parser("sweep", help="run the Table 5 parameter sweep")

    return parser


def _load_compiled(path: str, precision: int):
    with open(path) as handle:
        forest = loads_forest(handle.read())
    compiled = CopseCompiler(precision=precision).compile(forest)
    return forest, compiled


def _cmd_info(args) -> int:
    forest, compiled = _load_compiled(args.model, args.precision)
    print(forest.describe())
    print(compiled.describe())
    params = CopseCompiler().select_parameters(compiled)
    print("selected parameters:", params.describe())
    print(
        "revealed to the evaluator: q="
        f"{compiled.quantized_branching} b={compiled.branching} "
        f"d={compiled.max_depth}; revealed to the client: "
        f"K={compiled.max_multiplicity}"
    )
    return 0


def _cmd_compile(args) -> int:
    _, compiled = _load_compiled(args.model, args.precision)
    source = generate_module_source(compiled)
    with open(args.output, "w") as handle:
        handle.write(source)
    print(
        f"staged {compiled.describe()}\n"
        f"-> {args.output} ({len(source.splitlines())} lines)"
    )
    return 0


def _cmd_classify(args) -> int:
    forest, compiled = _load_compiled(args.model, args.precision)
    try:
        features = [int(v) for v in args.features.split(",")]
    except ValueError:
        print(f"error: features must be integers, got {args.features!r}",
              file=sys.stderr)
        return 2
    outcome = secure_inference(
        compiled,
        features,
        encrypted_model=not args.plaintext_model,
        engine=args.engine,
        backend=args.backend,
    )
    result = outcome.result
    expected = forest.label_bitvector(features)
    print(f"features: {features}")
    print(f"engine: {args.engine}")
    print(f"backend: {outcome.backend}")
    print(f"per-tree labels: "
          f"{[result.label_names[l] for l in result.chosen_labels]}")
    print(f"plurality: {result.plurality_name()}")
    print(f"oracle agreement: "
          f"{'ok' if result.bitvector == expected else 'MISMATCH'}")
    return 0 if result.bitvector == expected else 1


def _parse_query_list(text: str) -> List[List[int]]:
    """Parse ``'40,200;17,3'`` into a list of integer feature vectors."""
    queries: List[List[int]] = []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        try:
            queries.append([int(v) for v in chunk.split(",")])
        except ValueError:
            raise _FeatureParseError(
                f"features must be integers, got {chunk!r}"
            )
    if not queries:
        raise _FeatureParseError("no queries given")
    return queries


class _FeatureParseError(ValueError):
    """Bad ``--features`` input (usage error: exit code 2)."""


def _load_queries(args) -> List[List[int]]:
    if bool(args.features) == bool(args.features_file):
        raise _FeatureParseError(
            "provide exactly one of --features or --features-file"
        )
    if args.features:
        return _parse_query_list(args.features)
    with open(args.features_file) as handle:
        return _parse_query_list(";".join(handle.read().splitlines()))


def _check_service_args(args) -> None:
    """Usage validation that must run before the model is compiled."""
    if args.threads < 1:
        raise _FeatureParseError(f"--threads must be >= 1, got {args.threads}")
    if args.batch_size is not None and args.batch_size < 1:
        raise _FeatureParseError(
            f"--batch-size must be >= 1, got {args.batch_size}"
        )
    deadline_ms = getattr(args, "deadline_ms", None)
    if deadline_ms is not None and deadline_ms <= 0:
        raise _FeatureParseError(
            f"--deadline-ms must be > 0, got {deadline_ms}"
        )
    max_queue = getattr(args, "max_queue", None)
    if max_queue is not None and max_queue < 1:
        raise _FeatureParseError(
            f"--max-queue must be >= 1, got {max_queue}"
        )


def _cmd_batch_classify(args) -> int:
    from repro.serve import CopseService

    # Usage errors are checked before the (expensive) model compilation.
    _check_service_args(args)
    queries = _load_queries(args)
    forest, compiled = _load_compiled(args.model, args.precision)
    with CopseService(
        threads=args.threads, engine=args.engine, backend=args.backend
    ) as service:
        service.register_model(
            "cli",
            compiled,
            max_batch_size=args.batch_size,
            encrypted_model=not args.plaintext_model,
        )
        results = service.classify_many("cli", queries)
        stats = service.stats()
    all_ok = True
    for features, res in zip(queries, results):
        ok = "ok" if res.oracle_ok else "MISMATCH"
        all_ok = all_ok and bool(res.oracle_ok)
        print(
            f"features {features} -> {res.plurality_name()} "
            f"(batch {res.batch_id}, fill {res.batch_fill}/"
            f"{res.batch_capacity}, oracle {ok})"
        )
    print(stats.render())
    return 0 if all_ok else 1


def _cmd_serve(args) -> int:
    import json

    import numpy as np

    from repro.errors import RejectedQuery
    from repro.serve import ClusterService, CopseService

    _check_service_args(args)
    if args.queries < 1:
        raise _FeatureParseError(f"--queries must be >= 1, got {args.queries}")
    if args.workers is not None and args.workers < 1:
        raise _FeatureParseError(
            f"--workers must be >= 1, got {args.workers}"
        )
    interval = args.stats_interval
    if interval is not None and interval < 1:
        raise _FeatureParseError(
            f"--stats-interval must be >= 1, got {interval}"
        )
    if args.workers_min < 1:
        raise _FeatureParseError(
            f"--workers-min must be >= 1, got {args.workers_min}"
        )
    if args.workers_max < args.workers_min:
        raise _FeatureParseError(
            f"--workers-max must be >= --workers-min, got "
            f"{args.workers_max} < {args.workers_min}"
        )
    if args.control_interval <= 0:
        raise _FeatureParseError(
            f"--control-interval must be > 0, got {args.control_interval}"
        )
    forest, compiled = _load_compiled(args.model, args.precision)
    rng = np.random.default_rng(args.seed)
    limit = 1 << compiled.precision
    queries = [
        [int(v) for v in rng.integers(0, limit, compiled.n_features)]
        for _ in range(args.queries)
    ]
    rejected = 0
    clustered = args.workers is not None
    if args.dlq_out is not None and not clustered:
        raise _FeatureParseError(
            "--dlq-out requires --workers (the dead-letter queue lives "
            "in the cluster router)"
        )
    if clustered:
        service_cm = ClusterService(
            workers=args.workers,
            engine=args.engine,
            backend=args.backend,
            default_deadline_ms=args.deadline_ms,
            max_queue=args.max_queue,
        )
    else:
        service_cm = CopseService(
            threads=args.threads,
            engine=args.engine,
            backend=args.backend,
            default_deadline_ms=args.deadline_ms,
            max_queue=args.max_queue,
        )
    with service_cm as service:
        registered = service.register_model(
            "cli",
            compiled,
            max_batch_size=args.batch_size,
            encrypted_model=not args.plaintext_model,
        )
        mode = (
            f"{args.workers} worker processes" if clustered
            else f"{args.threads} threads"
        )
        print(f"serving {registered.describe()} ({mode})")

        controller = None
        last_tick = None
        if args.autoscale:
            import time as _time

            from repro.control import (
                AutoscalePolicy,
                ClusterPlant,
                Controller,
                GuardConfig,
                GuardRail,
                ServicePlant,
            )

            plant = (
                ClusterPlant(service) if clustered
                else ServicePlant(service)
            )
            autoscale_policy = AutoscalePolicy(
                slo_p99_ms=args.deadline_ms
            )
            controller = Controller(
                plant,
                [autoscale_policy],
                GuardRail(GuardConfig(
                    workers_min=args.workers_min,
                    workers_max=args.workers_max,
                )),
            )
            last_tick = _time.monotonic()
            controller.tick(last_tick)

        def emit_snapshot() -> None:
            print(json.dumps(service.metrics_snapshot(), sort_keys=True))

        futures = []
        for i, features in enumerate(queries, start=1):
            try:
                futures.append(service.submit("cli", features))
            except RejectedQuery:
                # Bounded queue at capacity: shed and keep driving (the
                # open-loop load generator's behavior).
                rejected += 1
            if interval is not None and i % interval == 0:
                emit_snapshot()
            if controller is not None:
                import time as _time

                now = _time.monotonic()
                if now - last_tick >= args.control_interval:
                    controller.tick(now)
                    last_tick = now
        service.flush("cli")
        results = []
        for f in futures:
            results.append(f.result())
            if controller is not None:
                import time as _time

                now = _time.monotonic()
                if now - last_tick >= args.control_interval:
                    controller.tick(now)
                    last_tick = now
        if controller is not None:
            # The drained system is the half of the story the policy
            # could never see from inside the submit loop: once load
            # ends, no further submissions means no further ticks, so
            # the sustain-down counter could never reach its threshold
            # and the pool stayed scaled up forever.  A bounded run of
            # post-drain ticks lets the policy observe the idle plant
            # long enough to propose (and the guard rail to actuate) a
            # scale-down before the report prints.
            import time as _time

            for _ in range(autoscale_policy.sustain_down + 1):
                now = _time.monotonic()
                controller.tick(now)
                last_tick = now
        if interval is not None:
            emit_snapshot()
        stats = service.stats()
        dead_letters = service.dlq() if clustered else []
    failures = sum(1 for r in results if r.oracle_ok is False)
    print(stats.render())
    if args.dlq_out is not None:
        with open(args.dlq_out, "w") as handle:
            json.dump(dead_letters, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(
            f"dead-letter queue: {len(dead_letters)} entries -> "
            f"{args.dlq_out} (inspect with 'repro dlq')"
        )
    elif dead_letters:
        print(
            f"dead-letter queue: {len(dead_letters)} quarantined "
            f"queries (re-run with --dlq-out to dump them)"
        )
    if rejected:
        print(f"admission control shed {rejected} queries (--max-queue "
              f"{args.max_queue})")
    if controller is not None:
        applied = len(controller.applied())
        vetoed = len(controller.rejections())
        print(
            f"control plane: {controller.ticks} ticks, {applied} "
            f"actuations applied, {vetoed} rejected (every rejection "
            f"carries a reason)"
        )
        for record in controller.decision_log:
            print("  " + json.dumps(record))
    print(
        f"oracle agreement: "
        f"{'ok' if failures == 0 else f'{failures} MISMATCHES'}"
    )
    return 0 if failures == 0 else 1


def _cmd_bench(args) -> int:
    import os

    from repro.fhe.backend import BACKEND_ENV_VAR

    if args.backend is None:
        return _cmd_bench_inner(args)
    # The figure/table pipelines build many contexts internally; the
    # process-default mechanism threads the choice everywhere.  Restored
    # afterwards so in-process callers (tests) see no leaked default.
    previous = os.environ.get(BACKEND_ENV_VAR)
    os.environ[BACKEND_ENV_VAR] = args.backend
    try:
        return _cmd_bench_inner(args)
    finally:
        if previous is None:
            os.environ.pop(BACKEND_ENV_VAR, None)
        else:
            os.environ[BACKEND_ENV_VAR] = previous


def _cmd_bench_inner(args) -> int:
    from repro.bench_harness import experiments

    names: Optional[List[str]] = None
    if args.workloads:
        names = args.workloads.split(",")
    queries = args.queries if args.queries is not None else 1

    if args.artifact == "soak":
        workload = names[0] if names else "width78"
        print(
            experiments.soak(
                workload_name=workload,
                queries=args.queries if args.queries is not None else 2000,
            ).render()
        )
        return 0
    if args.artifact == "backend-speedup":
        workload = names[0] if names else "width78"
        print(
            experiments.backend_speedup(
                workload_name=workload,
                queries=args.queries if args.queries is not None else 8,
            ).render()
        )
        return 0
    if args.artifact == "table1":
        workload = names[0] if names else "width78"
        for table in experiments.table1(
            workload_name=workload, queries=queries
        ):
            print(table.render())
            print()
        return 0
    if args.artifact == "throughput":
        workload = names[0] if names else "width78"
        print(
            experiments.throughput(
                workload_name=workload,
                queries=args.queries if args.queries is not None else 16,
            ).render()
        )
        return 0
    if args.artifact == "plan-speedup":
        workload = names[0] if names else "width78"
        print(
            experiments.plan_speedup(
                workload_name=workload,
                queries=args.queries if args.queries is not None else 2,
            ).render()
        )
        return 0
    if args.artifact == "tape-speedup":
        workload = names[0] if names else "width78"
        print(experiments.tape_speedup(workload_name=workload).render())
        return 0
    if args.artifact == "megakernel-speedup":
        workload = names[0] if names else "width78"
        print(
            experiments.megakernel_speedup(workload_name=workload).render()
        )
        return 0
    if args.artifact == "cluster-speedup":
        workload = names[0] if names else "width78"
        print(experiments.cluster_speedup(workload_name=workload).render())
        return 0
    if args.artifact == "autoscale":
        workload = names[0] if names else "width78"
        print(experiments.autoscale(workload_name=workload).render())
        return 0
    if args.artifact == "chaos":
        workload = names[0] if names else "width78"
        print(experiments.chaos(workload_name=workload).render())
        return 0
    if args.artifact == "trajectory":
        from repro.bench_harness.report_gen import (
            TRAJECTORY_JSON_PATH,
            generate_trajectory,
        )

        out = args.out if args.out is not None else TRAJECTORY_JSON_PATH
        path, table = generate_trajectory(json_path=out)
        print(table.render())
        print(f"wrote {path}")
        return 0
    if args.artifact == "report":
        from repro.bench_harness.report_gen import (
            BENCH_JSON_PATH,
            generate_report,
        )

        quick = args.quick or None  # None: honor $REPRO_BENCH_QUICK
        json_path = args.out if args.out is not None else BENCH_JSON_PATH
        paths = generate_report(quick=quick, json_path=json_path)
        for path in paths:
            print(f"wrote {path}")
        return 0
    if args.artifact == "fig10":
        for table in experiments.figure10(queries=queries):
            print(table.render())
            print()
        return 0
    if args.artifact == "table2":
        workload = names[0] if names else "width78"
        print(experiments.table2(workload_name=workload).render())
        return 0
    if args.artifact == "table6":
        print(experiments.table6().render())
        return 0

    fn = {
        "fig6": experiments.figure6,
        "fig7": experiments.figure7,
        "fig8": experiments.figure8,
        "fig9": experiments.figure9,
    }[args.artifact]
    print(fn(queries=queries, workload_names=names).render())
    return 0


def _cmd_sweep(_args) -> int:
    from repro.bench_harness import experiments

    print(experiments.table5().render())
    return 0


def _cmd_trace(args) -> int:
    if args.trace_kind == "tape":
        return _cmd_trace_tape(args)
    return _cmd_trace_sim(args)


def _cmd_trace_tape(args) -> int:
    import json

    import numpy as np

    from repro.fhe.context import FheContext
    from repro.ir.plan import bind_model_query
    from repro.obs.profiler import TapeProfiler
    from repro.serve.batched_runtime import encrypt_batch
    from repro.serve.registry import ModelRegistry

    if args.batch_size is not None and args.batch_size < 1:
        raise _FeatureParseError(
            f"--batch-size must be >= 1, got {args.batch_size}"
        )
    _, compiled = _load_compiled(args.model, args.precision)
    registered = ModelRegistry().register(
        "cli", compiled, max_batch_size=args.batch_size,
        backend=args.backend, engine="tape",
    )
    rng = np.random.default_rng(args.seed)
    limit = 1 << compiled.precision
    queries = [
        [int(v) for v in rng.integers(0, limit, compiled.n_features)]
        for _ in range(registered.layout.capacity)
    ]
    ctx = FheContext(registered.params, backend=registered.backend)
    query = encrypt_batch(ctx, registered.layout, queries, registered.keys)
    bindings = bind_model_query(
        ctx,
        registered.tape.input_widths,
        registered.tape.encrypted_model,
        registered.tape.model_fingerprint,
        registered.batched_model,
        query,
    )
    profiler = TapeProfiler()
    registered.tape.execute(ctx, bindings, profiler=profiler)
    print(
        f"tape profile: {registered.describe()}\n"
        f"({len(queries)}-query batch, backend {registered.backend})\n"
    )
    print(profiler.report())
    if args.json_out:
        record = profiler.as_dict()
        record["model"] = args.model
        record["backend"] = registered.backend
        with open(args.json_out, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote {args.json_out}")
    return 0


def _cmd_trace_sim(args) -> int:
    import json

    from repro.obs.trace import Tracer
    from repro.serve import (
        FaultPlan,
        ModelProfile,
        SimRunner,
        TenantSpec,
        generate_arrivals,
    )
    from repro.serve.registry import ModelRegistry
    from repro.serve.simclock import MS

    if args.queries < 1:
        raise _FeatureParseError(
            f"--queries must be >= 1, got {args.queries}"
        )
    if args.threads < 1:
        raise _FeatureParseError(
            f"--threads must be >= 1, got {args.threads}"
        )
    _, compiled = _load_compiled(args.model, args.precision)
    registered = ModelRegistry().register("cli", compiled)
    profile = ModelProfile.from_registered(
        registered, max_pending=max(64, 4 * registered.batch_capacity)
    )
    # The soak experiment's traffic shape: two Poisson tenants and one
    # bursty one at moderate load, with deadlines at 2x the batch cost.
    service_s = profile.service_ms * MS
    rate = 0.6 * args.threads * profile.capacity / service_s
    deadline_ms = 2.0 * profile.service_ms
    tenants = [
        TenantSpec(name="steady-a", model=profile.name,
                   rate_qps=rate * 0.5, deadline_ms=deadline_ms),
        TenantSpec(name="steady-b", model=profile.name,
                   rate_qps=rate * 0.35, deadline_ms=deadline_ms),
        TenantSpec(name="bursty", model=profile.name,
                   burst_every_s=40.0 * service_s,
                   burst_size=max(1, profile.capacity // 2),
                   deadline_ms=deadline_ms),
    ]
    arrivals = generate_arrivals(
        tenants, seed=args.seed, total_queries=args.queries
    )
    crash_at = arrivals[len(arrivals) // 2].time
    tracer = Tracer()
    runner = SimRunner([profile], threads=args.threads, tracer=tracer)
    report = runner.run(
        arrivals,
        FaultPlan(worker_crashes=(crash_at,), slow_every=13,
                  slow_factor=2.0),
    )
    spans = tracer.spans()
    if args.format == "chrome":
        from repro.obs.trace import chrome_json

        payload = chrome_json(spans)
    else:
        from repro.obs.trace import export_jsonl

        payload = export_jsonl(spans)
    with open(args.out, "w") as handle:
        handle.write(payload)
    stats = report.stats
    print(
        f"simulated {stats.submitted} submissions on {args.threads} "
        f"workers (seed {args.seed}): {stats.completed} completed, "
        f"{stats.rejected} rejected, {stats.failed} failed, "
        f"{stats.batches} batches"
    )
    print(
        f"wrote {len(spans)} spans ({args.format}, deterministic per "
        f"seed) to {args.out}"
    )
    return 0


def _render_metric_block(title: str, entries, fmt) -> List[str]:
    lines: List[str] = []
    if entries:
        lines.append(f"{title}:")
        width = max(len(name) for name in entries)
        for name in sorted(entries):
            lines.append(f"  {name:<{width}} : {fmt(entries[name])}")
    return lines


def _cmd_metrics(args) -> int:
    import json

    with open(args.snapshot) as handle:
        text = handle.read().strip()
    if not text:
        raise _FeatureParseError(f"{args.snapshot} is empty")
    # Accept a plain JSON object or JSONL (use the newest snapshot line).
    line = text.splitlines()[-1]
    try:
        snapshot = json.loads(line)
    except json.JSONDecodeError as exc:
        raise _FeatureParseError(
            f"{args.snapshot} is not a metrics snapshot: {exc}"
        )
    if not isinstance(snapshot, dict):
        raise _FeatureParseError(
            f"{args.snapshot} is not a metrics snapshot (expected a JSON "
            f"object)"
        )

    def fmt_number(value) -> str:
        if isinstance(value, float) and not value.is_integer():
            return f"{value:.6g}"
        return str(int(value)) if isinstance(value, (int, float)) else str(value)

    def fmt_histogram(value) -> str:
        if isinstance(value, dict):
            return (
                f"count={fmt_number(value.get('count', 0))} "
                f"sum={fmt_number(value.get('sum', 0.0))} "
                f"max={fmt_number(value.get('max', 0.0))} "
                f"p50={fmt_number(value.get('p50', 0.0))} "
                f"p99={fmt_number(value.get('p99', 0.0))}"
            )
        return str(value)

    lines: List[str] = [f"metrics snapshot ({args.snapshot})"]
    lines += _render_metric_block(
        "counters", snapshot.get("counters", {}), fmt_number
    )
    lines += _render_metric_block(
        "gauges", snapshot.get("gauges", {}), fmt_number
    )
    lines += _render_metric_block(
        "histograms", snapshot.get("histograms", {}), fmt_histogram
    )
    if len(lines) == 1:
        lines.append("(no instruments recorded)")
    print("\n".join(lines))
    return 0


def _cmd_dlq(args) -> int:
    import json

    with open(args.dump) as handle:
        text = handle.read().strip()
    if not text:
        raise _FeatureParseError(f"{args.dump} is empty")
    try:
        entries = json.loads(text)
    except json.JSONDecodeError as exc:
        raise _FeatureParseError(f"{args.dump} is not a DLQ dump: {exc}")
    if not isinstance(entries, list) or not all(
        isinstance(e, dict) for e in entries
    ):
        raise _FeatureParseError(
            f"{args.dump} is not a DLQ dump (expected a JSON array of "
            f"objects)"
        )
    print(f"dead-letter queue ({args.dump}): {len(entries)} entries")
    if not entries:
        print("(empty: no query was quarantined)")
        return 0
    for i, entry in enumerate(entries):
        print(
            f"  [{i}] model={entry.get('model')} "
            f"tenant={entry.get('tenant')} seq={entry.get('seq')} "
            f"origin_batch={entry.get('origin_batch')} "
            f"attempts={entry.get('attempts')} t={entry.get('time')}"
        )
        reason = entry.get("reason")
        if reason:
            print(f"      {reason}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "info": _cmd_info,
        "compile": _cmd_compile,
        "classify": _cmd_classify,
        "batch-classify": _cmd_batch_classify,
        "serve": _cmd_serve,
        "bench": _cmd_bench,
        "sweep": _cmd_sweep,
        "trace": _cmd_trace,
        "metrics": _cmd_metrics,
        "dlq": _cmd_dlq,
    }
    try:
        return handlers[args.command](args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except _FeatureParseError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except CopseError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
