"""Command-line interface for the COPSE reproduction.

Mirrors the workflow of the original system's compiler binary plus the
evaluation harness::

    python -m repro info model.txt             # model statistics + leakage
    python -m repro compile model.txt -o staged.py   # staging compiler
    python -m repro classify model.txt --features 40,200 --engine plan
    python -m repro batch-classify model.txt --features "40,200;17,3"
    python -m repro serve model.txt --queries 64 --threads 4 \
        --deadline-ms 250 --max-queue 128
    python -m repro bench fig6 --workloads depth4,width78
    python -m repro bench plan-speedup         # eager vs plan engine
    python -m repro bench tape-speedup         # plan vs compiled-tape engine
    python -m repro bench report               # regenerate benchmark_report.txt + BENCH_5.json
    python -m repro bench backend-speedup      # wall-clock per FHE backend
    python -m repro bench soak                 # simulated load vs deadlines
    python -m repro sweep                      # Table 5 parameter sweep

Every inference command accepts ``--backend`` (reference / vector /
plaintext — see ``repro.fhe.backend``); ``--precision``, ``--engine``,
``--seed``, and ``--backend`` are shared option groups declared once on
parent parsers and attached where they apply.

``model.txt`` is the paper's Section 5 serialization (see
``repro.forest.serialize``).  ``batch-classify`` and ``serve`` route
through :mod:`repro.serve`: the model is compiled and encrypted once and
the queries share ciphertext slots via cross-query SIMD packing.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import CopseError
from repro.core.codegen import generate_module_source
from repro.core.compiler import CopseCompiler
from repro.core.runtime import secure_inference
from repro.forest.serialize import loads_forest


def build_parser() -> argparse.ArgumentParser:
    from repro.fhe.backend import available_backends

    parser = argparse.ArgumentParser(
        prog="repro",
        description="COPSE: vectorized secure evaluation of decision forests",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared option groups (argparse parent parsers), so the knobs every
    # command repeats are declared once.  ``--engine`` defaults per
    # command via set_defaults: single-query classification interprets
    # eagerly, the batched service prefers the cached plan.
    model_opts = argparse.ArgumentParser(add_help=False)
    model_opts.add_argument(
        "--precision", type=int, default=8,
        help="fixed-point precision in bits (default: 8)",
    )

    backend_opts = argparse.ArgumentParser(add_help=False)
    backend_opts.add_argument(
        "--backend", choices=available_backends(), default=None,
        help="FHE backend to evaluate on (default: $REPRO_BACKEND or "
        "'reference'; 'vector' is the fast engine, 'plaintext' the "
        "no-noise debug engine)",
    )

    run_opts = argparse.ArgumentParser(add_help=False, parents=[backend_opts])
    run_opts.add_argument(
        "--engine", choices=["eager", "plan", "tape"], default=None,
        help="execution path: the eager Algorithm 1 interpreter, the "
        "optimized IR inference plan, or the compiled tape (linearized "
        "plan with register reuse and fused kernels; default: eager for "
        "classify, tape for the batched commands)",
    )

    seed_opts = argparse.ArgumentParser(add_help=False)
    seed_opts.add_argument(
        "--seed", type=int, default=1234,
        help="random seed for synthetic query generation",
    )

    info = sub.add_parser(
        "info", parents=[model_opts],
        help="print model statistics and leakage",
    )
    info.add_argument("model", help="serialized model file (Section 5 format)")

    compile_cmd = sub.add_parser(
        "compile", parents=[model_opts],
        help="stage a model into a specialized Python module",
    )
    compile_cmd.add_argument("model")
    compile_cmd.add_argument("-o", "--output", required=True)

    classify = sub.add_parser(
        "classify", parents=[model_opts, run_opts],
        help="run one secure inference end to end",
    )
    classify.set_defaults(engine="eager")
    classify.add_argument("model")
    classify.add_argument(
        "--features", required=True,
        help="comma-separated integer feature values",
    )
    classify.add_argument(
        "--plaintext-model", action="store_true",
        help="Maurice-equals-Sally configuration (model not encrypted)",
    )

    batch = sub.add_parser(
        "batch-classify", parents=[model_opts, run_opts],
        help="classify many queries at once via cross-query SIMD packing",
    )
    batch.set_defaults(engine="tape")
    batch.add_argument("model")
    batch.add_argument(
        "--features",
        help="semicolon-separated queries, each a comma-separated integer "
        "feature list, e.g. '40,200;17,3'",
    )
    batch.add_argument(
        "--features-file",
        help="file with one comma-separated feature list per line",
    )
    batch.add_argument("--threads", type=int, default=2)
    batch.add_argument(
        "--batch-size", type=int, default=None,
        help="cap queries packed per ciphertext (default: slot capacity)",
    )
    batch.add_argument(
        "--plaintext-model", action="store_true",
        help="keep the model in plaintext on the server (Maurice = Sally)",
    )

    serve = sub.add_parser(
        "serve", parents=[model_opts, run_opts, seed_opts],
        help="drive the batched inference service with a synthetic "
        "query stream and report throughput",
    )
    serve.set_defaults(engine="tape")
    serve.add_argument("model")
    serve.add_argument("--queries", type=int, default=32)
    serve.add_argument("--threads", type=int, default=2)
    serve.add_argument("--batch-size", type=int, default=None)
    serve.add_argument("--plaintext-model", action="store_true")
    serve.add_argument(
        "--deadline-ms", type=float, default=None,
        help="per-query deadline in ms: partial batches dispatch when "
        "the oldest query's slack runs out, and misses are reported "
        "(default: no deadlines, best-effort)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=None,
        help="bound the pending queue; over-admission is rejected with "
        "an explicit error instead of queueing without bound "
        "(default: unbounded)",
    )

    bench = sub.add_parser(
        "bench", parents=[backend_opts],
        help="regenerate a paper figure/table",
    )
    bench.add_argument(
        "artifact",
        choices=[
            "fig6", "fig7", "fig8", "fig9", "fig10",
            "table1", "table2", "table6", "throughput", "plan-speedup",
            "tape-speedup", "backend-speedup", "soak", "report",
        ],
    )
    bench.add_argument(
        "--workloads",
        help="comma-separated workload names (default: microbenchmarks "
        "for figures, width78 for table2)",
    )
    bench.add_argument(
        "--queries", type=int, default=None,
        help="queries per run (default: 1, or 16 for throughput)",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="for 'report': trim to the quick suite (also triggered by "
        "REPRO_BENCH_QUICK=1); annotated in the regenerated report",
    )

    sub.add_parser("sweep", help="run the Table 5 parameter sweep")

    return parser


def _load_compiled(path: str, precision: int):
    with open(path) as handle:
        forest = loads_forest(handle.read())
    compiled = CopseCompiler(precision=precision).compile(forest)
    return forest, compiled


def _cmd_info(args) -> int:
    forest, compiled = _load_compiled(args.model, args.precision)
    print(forest.describe())
    print(compiled.describe())
    params = CopseCompiler().select_parameters(compiled)
    print("selected parameters:", params.describe())
    print(
        "revealed to the evaluator: q="
        f"{compiled.quantized_branching} b={compiled.branching} "
        f"d={compiled.max_depth}; revealed to the client: "
        f"K={compiled.max_multiplicity}"
    )
    return 0


def _cmd_compile(args) -> int:
    _, compiled = _load_compiled(args.model, args.precision)
    source = generate_module_source(compiled)
    with open(args.output, "w") as handle:
        handle.write(source)
    print(
        f"staged {compiled.describe()}\n"
        f"-> {args.output} ({len(source.splitlines())} lines)"
    )
    return 0


def _cmd_classify(args) -> int:
    forest, compiled = _load_compiled(args.model, args.precision)
    try:
        features = [int(v) for v in args.features.split(",")]
    except ValueError:
        print(f"error: features must be integers, got {args.features!r}",
              file=sys.stderr)
        return 2
    outcome = secure_inference(
        compiled,
        features,
        encrypted_model=not args.plaintext_model,
        engine=args.engine,
        backend=args.backend,
    )
    result = outcome.result
    expected = forest.label_bitvector(features)
    print(f"features: {features}")
    print(f"engine: {args.engine}")
    print(f"backend: {outcome.backend}")
    print(f"per-tree labels: "
          f"{[result.label_names[l] for l in result.chosen_labels]}")
    print(f"plurality: {result.plurality_name()}")
    print(f"oracle agreement: "
          f"{'ok' if result.bitvector == expected else 'MISMATCH'}")
    return 0 if result.bitvector == expected else 1


def _parse_query_list(text: str) -> List[List[int]]:
    """Parse ``'40,200;17,3'`` into a list of integer feature vectors."""
    queries: List[List[int]] = []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        try:
            queries.append([int(v) for v in chunk.split(",")])
        except ValueError:
            raise _FeatureParseError(
                f"features must be integers, got {chunk!r}"
            )
    if not queries:
        raise _FeatureParseError("no queries given")
    return queries


class _FeatureParseError(ValueError):
    """Bad ``--features`` input (usage error: exit code 2)."""


def _load_queries(args) -> List[List[int]]:
    if bool(args.features) == bool(args.features_file):
        raise _FeatureParseError(
            "provide exactly one of --features or --features-file"
        )
    if args.features:
        return _parse_query_list(args.features)
    with open(args.features_file) as handle:
        return _parse_query_list(";".join(handle.read().splitlines()))


def _check_service_args(args) -> None:
    """Usage validation that must run before the model is compiled."""
    if args.threads < 1:
        raise _FeatureParseError(f"--threads must be >= 1, got {args.threads}")
    if args.batch_size is not None and args.batch_size < 1:
        raise _FeatureParseError(
            f"--batch-size must be >= 1, got {args.batch_size}"
        )
    deadline_ms = getattr(args, "deadline_ms", None)
    if deadline_ms is not None and deadline_ms <= 0:
        raise _FeatureParseError(
            f"--deadline-ms must be > 0, got {deadline_ms}"
        )
    max_queue = getattr(args, "max_queue", None)
    if max_queue is not None and max_queue < 1:
        raise _FeatureParseError(
            f"--max-queue must be >= 1, got {max_queue}"
        )


def _cmd_batch_classify(args) -> int:
    from repro.serve import CopseService

    # Usage errors are checked before the (expensive) model compilation.
    _check_service_args(args)
    queries = _load_queries(args)
    forest, compiled = _load_compiled(args.model, args.precision)
    with CopseService(
        threads=args.threads, engine=args.engine, backend=args.backend
    ) as service:
        service.register_model(
            "cli",
            compiled,
            max_batch_size=args.batch_size,
            encrypted_model=not args.plaintext_model,
        )
        results = service.classify_many("cli", queries)
        stats = service.stats()
    all_ok = True
    for features, res in zip(queries, results):
        ok = "ok" if res.oracle_ok else "MISMATCH"
        all_ok = all_ok and bool(res.oracle_ok)
        print(
            f"features {features} -> {res.plurality_name()} "
            f"(batch {res.batch_id}, fill {res.batch_fill}/"
            f"{res.batch_capacity}, oracle {ok})"
        )
    print(stats.render())
    return 0 if all_ok else 1


def _cmd_serve(args) -> int:
    import numpy as np

    from repro.errors import RejectedQuery
    from repro.serve import CopseService

    _check_service_args(args)
    if args.queries < 1:
        raise _FeatureParseError(f"--queries must be >= 1, got {args.queries}")
    forest, compiled = _load_compiled(args.model, args.precision)
    rng = np.random.default_rng(args.seed)
    limit = 1 << compiled.precision
    queries = [
        [int(v) for v in rng.integers(0, limit, compiled.n_features)]
        for _ in range(args.queries)
    ]
    rejected = 0
    with CopseService(
        threads=args.threads,
        engine=args.engine,
        backend=args.backend,
        default_deadline_ms=args.deadline_ms,
        max_queue=args.max_queue,
    ) as service:
        registered = service.register_model(
            "cli",
            compiled,
            max_batch_size=args.batch_size,
            encrypted_model=not args.plaintext_model,
        )
        print(f"serving {registered.describe()}")
        futures = []
        for features in queries:
            try:
                futures.append(service.submit("cli", features))
            except RejectedQuery:
                # Bounded queue at capacity: shed and keep driving (the
                # open-loop load generator's behavior).
                rejected += 1
        service.flush("cli")
        results = [f.result() for f in futures]
        stats = service.stats()
    failures = sum(1 for r in results if r.oracle_ok is False)
    print(stats.render())
    if rejected:
        print(f"admission control shed {rejected} queries (--max-queue "
              f"{args.max_queue})")
    print(
        f"oracle agreement: "
        f"{'ok' if failures == 0 else f'{failures} MISMATCHES'}"
    )
    return 0 if failures == 0 else 1


def _cmd_bench(args) -> int:
    import os

    from repro.fhe.backend import BACKEND_ENV_VAR

    if args.backend is None:
        return _cmd_bench_inner(args)
    # The figure/table pipelines build many contexts internally; the
    # process-default mechanism threads the choice everywhere.  Restored
    # afterwards so in-process callers (tests) see no leaked default.
    previous = os.environ.get(BACKEND_ENV_VAR)
    os.environ[BACKEND_ENV_VAR] = args.backend
    try:
        return _cmd_bench_inner(args)
    finally:
        if previous is None:
            os.environ.pop(BACKEND_ENV_VAR, None)
        else:
            os.environ[BACKEND_ENV_VAR] = previous


def _cmd_bench_inner(args) -> int:
    from repro.bench_harness import experiments

    names: Optional[List[str]] = None
    if args.workloads:
        names = args.workloads.split(",")
    queries = args.queries if args.queries is not None else 1

    if args.artifact == "soak":
        workload = names[0] if names else "width78"
        print(
            experiments.soak(
                workload_name=workload,
                queries=args.queries if args.queries is not None else 2000,
            ).render()
        )
        return 0
    if args.artifact == "backend-speedup":
        workload = names[0] if names else "width78"
        print(
            experiments.backend_speedup(
                workload_name=workload,
                queries=args.queries if args.queries is not None else 8,
            ).render()
        )
        return 0
    if args.artifact == "table1":
        workload = names[0] if names else "width78"
        for table in experiments.table1(
            workload_name=workload, queries=queries
        ):
            print(table.render())
            print()
        return 0
    if args.artifact == "throughput":
        workload = names[0] if names else "width78"
        print(
            experiments.throughput(
                workload_name=workload,
                queries=args.queries if args.queries is not None else 16,
            ).render()
        )
        return 0
    if args.artifact == "plan-speedup":
        workload = names[0] if names else "width78"
        print(
            experiments.plan_speedup(
                workload_name=workload,
                queries=args.queries if args.queries is not None else 2,
            ).render()
        )
        return 0
    if args.artifact == "tape-speedup":
        workload = names[0] if names else "width78"
        print(experiments.tape_speedup(workload_name=workload).render())
        return 0
    if args.artifact == "report":
        from repro.bench_harness.report_gen import generate_report

        quick = args.quick or None  # None: honor $REPRO_BENCH_QUICK
        paths = generate_report(quick=quick)
        for path in paths:
            print(f"wrote {path}")
        return 0
    if args.artifact == "fig10":
        for table in experiments.figure10(queries=queries):
            print(table.render())
            print()
        return 0
    if args.artifact == "table2":
        workload = names[0] if names else "width78"
        print(experiments.table2(workload_name=workload).render())
        return 0
    if args.artifact == "table6":
        print(experiments.table6().render())
        return 0

    fn = {
        "fig6": experiments.figure6,
        "fig7": experiments.figure7,
        "fig8": experiments.figure8,
        "fig9": experiments.figure9,
    }[args.artifact]
    print(fn(queries=queries, workload_names=names).render())
    return 0


def _cmd_sweep(_args) -> int:
    from repro.bench_harness import experiments

    print(experiments.table5().render())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "info": _cmd_info,
        "compile": _cmd_compile,
        "classify": _cmd_classify,
        "batch-classify": _cmd_batch_classify,
        "serve": _cmd_serve,
        "bench": _cmd_bench,
        "sweep": _cmd_sweep,
    }
    try:
        return handlers[args.command](args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except _FeatureParseError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except CopseError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
