"""Command-line interface for the COPSE reproduction.

Mirrors the workflow of the original system's compiler binary plus the
evaluation harness::

    python -m repro info model.txt             # model statistics + leakage
    python -m repro compile model.txt -o staged.py   # staging compiler
    python -m repro classify model.txt --features 40,200
    python -m repro bench fig6 --workloads depth4,width78
    python -m repro sweep                      # Table 5 parameter sweep

``model.txt`` is the paper's Section 5 serialization (see
``repro.forest.serialize``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import CopseError
from repro.core.codegen import generate_module_source
from repro.core.compiler import CopseCompiler
from repro.core.runtime import secure_inference
from repro.forest.serialize import loads_forest


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="COPSE: vectorized secure evaluation of decision forests",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="print model statistics and leakage")
    info.add_argument("model", help="serialized model file (Section 5 format)")
    info.add_argument("--precision", type=int, default=8)

    compile_cmd = sub.add_parser(
        "compile", help="stage a model into a specialized Python module"
    )
    compile_cmd.add_argument("model")
    compile_cmd.add_argument("-o", "--output", required=True)
    compile_cmd.add_argument("--precision", type=int, default=8)

    classify = sub.add_parser(
        "classify", help="run one secure inference end to end"
    )
    classify.add_argument("model")
    classify.add_argument(
        "--features", required=True,
        help="comma-separated integer feature values",
    )
    classify.add_argument("--precision", type=int, default=8)
    classify.add_argument(
        "--plaintext-model", action="store_true",
        help="Maurice-equals-Sally configuration (model not encrypted)",
    )

    bench = sub.add_parser("bench", help="regenerate a paper figure/table")
    bench.add_argument(
        "artifact",
        choices=["fig6", "fig7", "fig8", "fig9", "fig10", "table2", "table6"],
    )
    bench.add_argument(
        "--workloads",
        help="comma-separated workload names (default: microbenchmarks "
        "for figures, width78 for table2)",
    )
    bench.add_argument("--queries", type=int, default=1)

    sub.add_parser("sweep", help="run the Table 5 parameter sweep")

    return parser


def _load_compiled(path: str, precision: int):
    with open(path) as handle:
        forest = loads_forest(handle.read())
    compiled = CopseCompiler(precision=precision).compile(forest)
    return forest, compiled


def _cmd_info(args) -> int:
    forest, compiled = _load_compiled(args.model, args.precision)
    print(forest.describe())
    print(compiled.describe())
    params = CopseCompiler().select_parameters(compiled)
    print("selected parameters:", params.describe())
    print(
        "revealed to the evaluator: q="
        f"{compiled.quantized_branching} b={compiled.branching} "
        f"d={compiled.max_depth}; revealed to the client: "
        f"K={compiled.max_multiplicity}"
    )
    return 0


def _cmd_compile(args) -> int:
    _, compiled = _load_compiled(args.model, args.precision)
    source = generate_module_source(compiled)
    with open(args.output, "w") as handle:
        handle.write(source)
    print(
        f"staged {compiled.describe()}\n"
        f"-> {args.output} ({len(source.splitlines())} lines)"
    )
    return 0


def _cmd_classify(args) -> int:
    forest, compiled = _load_compiled(args.model, args.precision)
    try:
        features = [int(v) for v in args.features.split(",")]
    except ValueError:
        print(f"error: features must be integers, got {args.features!r}",
              file=sys.stderr)
        return 2
    outcome = secure_inference(
        compiled, features, encrypted_model=not args.plaintext_model
    )
    result = outcome.result
    expected = forest.label_bitvector(features)
    print(f"features: {features}")
    print(f"per-tree labels: "
          f"{[result.label_names[l] for l in result.chosen_labels]}")
    print(f"plurality: {result.plurality_name()}")
    print(f"oracle agreement: "
          f"{'ok' if result.bitvector == expected else 'MISMATCH'}")
    return 0 if result.bitvector == expected else 1


def _cmd_bench(args) -> int:
    from repro.bench_harness import experiments

    names: Optional[List[str]] = None
    if args.workloads:
        names = args.workloads.split(",")

    if args.artifact == "fig10":
        for table in experiments.figure10(queries=args.queries):
            print(table.render())
            print()
        return 0
    if args.artifact == "table2":
        workload = names[0] if names else "width78"
        print(experiments.table2(workload_name=workload).render())
        return 0
    if args.artifact == "table6":
        print(experiments.table6().render())
        return 0

    fn = {
        "fig6": experiments.figure6,
        "fig7": experiments.figure7,
        "fig8": experiments.figure8,
        "fig9": experiments.figure9,
    }[args.artifact]
    print(fn(queries=args.queries, workload_names=names).render())
    return 0


def _cmd_sweep(_args) -> int:
    from repro.bench_harness import experiments

    print(experiments.table5().render())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "info": _cmd_info,
        "compile": _cmd_compile,
        "classify": _cmd_classify,
        "bench": _cmd_bench,
        "sweep": _cmd_sweep,
    }
    try:
        return handlers[args.command](args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except CopseError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
