"""Guard rail: every proposal is verified against declared invariants.

Nothing the policies propose reaches the plant without passing this
layer, and the layer **fails closed**: a proposal the rail does not
recognize, a switch whose fingerprint it cannot vouch for, a scale-down
past the idle head-room — all rejected with a recorded reason, never
silently dropped.  The controller writes a ``guard ... rejected:reason``
record for each veto, so an audit of the decision log always explains
why an actuation did or did not happen.

Invariants enforced here (the declared contract, see DESIGN.md):

* worker count stays inside ``[workers_min, workers_max]``;
* a scale-down never exceeds the currently *idle* workers — in-flight
  epoch safety: a busy worker is never torn down under a running batch;
* weight changes are bounded per step (``max_weight_step`` ratio) and
  in absolute range ``[weight_min, weight_max]``;
* admission limits stay inside ``[admission_min, admission_max]``;
* engine/backend switches only when the proposal's fingerprint matches
  the one declared in the guard config for that model (a switch for an
  undeclared model is rejected — fail closed);
* at most one actuation per proposal kind per ``cooldown_s`` window.

The rail's only mutable state is the per-kind last-applied ledger that
implements the cooldown; everything else is a pure function of (config,
proposal, snapshot), so guard verdicts replay deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.errors import ValidationError
from repro.control.policy import (
    AdjustTenantWeight,
    Proposal,
    ScaleWorkers,
    SetAdmissionLimit,
    SwitchBackend,
    SwitchEngine,
)
from repro.control.signals import ControlSnapshot

__all__ = ["GuardConfig", "GuardRail"]

#: Engines a switch proposal may target (mirrors repro.core.runtime).
_ENGINES = ("eager", "plan", "tape", "megakernel")


@dataclass(frozen=True)
class GuardConfig:
    """The declared invariants one :class:`GuardRail` enforces."""

    workers_min: int = 1
    workers_max: int = 8
    weight_min: float = 0.125
    weight_max: float = 16.0
    #: Max multiplicative change per weight actuation (>= 1).
    max_weight_step: float = 4.0
    admission_min: int = 1
    admission_max: Optional[int] = None
    #: Seconds between actuations of the same proposal kind.
    cooldown_s: float = 5.0
    #: model -> compiled fingerprint engine/backend switches must match.
    #: A switch for a model absent here is rejected (fail closed).
    fingerprints: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.workers_min < 1:
            raise ValidationError("workers_min must be >= 1")
        if self.workers_max < self.workers_min:
            raise ValidationError(
                f"workers_max ({self.workers_max}) must be >= "
                f"workers_min ({self.workers_min})"
            )
        if self.weight_min <= 0 or self.weight_max < self.weight_min:
            raise ValidationError(
                "need 0 < weight_min <= weight_max"
            )
        if self.max_weight_step < 1.0:
            raise ValidationError("max_weight_step must be >= 1")
        if self.admission_min < 1:
            raise ValidationError("admission_min must be >= 1")
        if (
            self.admission_max is not None
            and self.admission_max < self.admission_min
        ):
            raise ValidationError(
                "admission_max must be >= admission_min"
            )
        if self.cooldown_s < 0:
            raise ValidationError("cooldown_s must be >= 0")


class GuardRail:
    """Stateful verifier: :meth:`check` vets, :meth:`record_applied` arms
    the cooldown.

    The controller calls ``check`` for every proposal and
    ``record_applied`` only after the plant actually applied it, so a
    rejected or failed actuation never consumes the cooldown window.
    """

    def __init__(self, config: Optional[GuardConfig] = None):
        self.config = config if config is not None else GuardConfig()
        #: proposal kind -> time of last *applied* actuation.
        self._last_applied: Dict[str, float] = {}

    # -- verdicts ------------------------------------------------------

    def check(self, proposal: Proposal, snapshot: ControlSnapshot,
              now: float) -> Optional[str]:
        """Vet one proposal; returns None to pass, else the rejection
        reason (recorded, never silently dropped)."""
        cfg = self.config
        last = self._last_applied.get(proposal.kind)
        if last is not None and now - last < cfg.cooldown_s:
            return (
                f"cooldown: {proposal.kind} applied at t={last}, "
                f"{cfg.cooldown_s}s window"
            )
        if isinstance(proposal, ScaleWorkers):
            return self._check_scale(proposal, snapshot)
        if isinstance(proposal, AdjustTenantWeight):
            return self._check_weight(proposal, snapshot)
        if isinstance(proposal, SetAdmissionLimit):
            return self._check_admission(proposal)
        if isinstance(proposal, SwitchEngine):
            return self._check_switch(
                proposal.model, proposal.expected_fingerprint,
                what=f"engine {proposal.engine!r}",
                valid=proposal.engine in _ENGINES,
            )
        if isinstance(proposal, SwitchBackend):
            return self._check_switch(
                proposal.model, proposal.expected_fingerprint,
                what=f"backend {proposal.backend!r}",
                valid=bool(proposal.backend),
            )
        return f"unknown proposal kind {proposal.kind!r}"  # fail closed

    def record_applied(self, proposal: Proposal, now: float) -> None:
        self._last_applied[proposal.kind] = now

    # -- per-kind invariants -------------------------------------------

    def _check_scale(self, p: ScaleWorkers,
                     s: ControlSnapshot) -> Optional[str]:
        cfg = self.config
        if p.delta == 0:
            return "scale delta is zero"
        target = s.live_workers + p.delta
        if target < cfg.workers_min:
            return (
                f"target {target} below workers_min {cfg.workers_min}"
            )
        if target > cfg.workers_max:
            return (
                f"target {target} above workers_max {cfg.workers_max}"
            )
        if p.delta < 0 and -p.delta > s.free_workers:
            return (
                f"scale-down of {-p.delta} exceeds {s.free_workers} "
                f"idle workers (in-flight epoch safety)"
            )
        return None

    def _check_weight(self, p: AdjustTenantWeight,
                      s: ControlSnapshot) -> Optional[str]:
        cfg = self.config
        q = s.queue(p.queue)
        if q is None:
            return f"unknown queue {p.queue!r}"
        if p.weight < cfg.weight_min or p.weight > cfg.weight_max:
            return (
                f"weight {p.weight} outside "
                f"[{cfg.weight_min}, {cfg.weight_max}]"
            )
        if q.weight > 0:
            ratio = max(p.weight / q.weight, q.weight / p.weight)
            if ratio > cfg.max_weight_step:
                return (
                    f"weight change {q.weight} -> {p.weight} exceeds "
                    f"max step ratio {cfg.max_weight_step}"
                )
        return None

    def _check_admission(self, p: SetAdmissionLimit) -> Optional[str]:
        cfg = self.config
        if p.limit is None:
            return (
                "removing the admission bound is not guardable; "
                "propose a finite limit"
            )
        if p.limit < cfg.admission_min:
            return (
                f"limit {p.limit} below admission_min "
                f"{cfg.admission_min}"
            )
        if cfg.admission_max is not None and p.limit > cfg.admission_max:
            return (
                f"limit {p.limit} above admission_max "
                f"{cfg.admission_max}"
            )
        return None

    def _check_switch(self, model: str, fingerprint: Optional[str],
                      what: str, valid: bool) -> Optional[str]:
        if not valid:
            return f"invalid switch target {what}"
        declared = self.config.fingerprints.get(model)
        if declared is None:
            return (
                f"no declared fingerprint for model {model!r}; "
                f"switches are fail-closed"
            )
        if fingerprint != declared:
            return (
                f"fingerprint {fingerprint} does not match declared "
                f"{declared} for model {model!r}"
            )
        return None
