"""Control policies: pure snapshot -> typed-proposal functions.

A policy never actuates anything.  It looks at one
:class:`~repro.control.signals.ControlSnapshot` (plus its own bounded
hysteresis state) and emits zero or more typed :class:`Proposal`s; the
guard rail (:mod:`repro.control.guards`) decides whether each one may be
applied, and the plant (:mod:`repro.control.actuator`) applies it.  That
split keeps policies free to be aggressive — a proposal is a *request*,
and everything unsafe about it is someone else's veto.

Determinism contract: ``propose`` must be a pure function of the
snapshot sequence it has seen (no clocks, no randomness, no ambient
reads), so the decision log replays byte-identically per seed.  All
built-in policies carry only sustain counters and previous-snapshot
values as state.

Hysteresis shows up twice, on purpose: policies require a condition to
*sustain* for N consecutive ticks before proposing (so one noisy sample
cannot flap the pool), and the guards enforce a per-kind cooldown after
every actuation (so even a sustained condition actuates at a bounded
rate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ValidationError
from repro.control.signals import ControlSnapshot

__all__ = [
    "Proposal",
    "ScaleWorkers",
    "AdjustTenantWeight",
    "SetAdmissionLimit",
    "SwitchEngine",
    "SwitchBackend",
    "Policy",
    "AutoscalePolicy",
    "WeightBalancePolicy",
    "AdmissionReliefPolicy",
    "EngineDriftPolicy",
    "DegradationPolicy",
]


# ---------------------------------------------------------------------------
# Typed proposals
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Proposal:
    """Base proposal: a typed, auditable request for one actuation."""

    reason: str

    #: Stable kind tag; keys the guards' cooldown ledger and the
    #: decision log.
    kind = "proposal"

    def log_fields(self) -> Tuple:
        """The deterministic fields recorded in the decision log."""
        return (self.kind,)


@dataclass(frozen=True)
class ScaleWorkers(Proposal):
    """Grow (+delta) or shrink (-delta) the worker pool."""

    delta: int = 0
    kind = "scale_workers"

    def log_fields(self) -> Tuple:
        return (self.kind, self.delta)


@dataclass(frozen=True)
class AdjustTenantWeight(Proposal):
    """Retune one model queue's fair-share weight."""

    queue: str = ""
    weight: float = 1.0
    kind = "adjust_weight"

    def log_fields(self) -> Tuple:
        return (self.kind, self.queue, round(self.weight, 9))


@dataclass(frozen=True)
class SetAdmissionLimit(Proposal):
    """Rebound one model queue's admission limit (None = unbounded)."""

    queue: str = ""
    limit: Optional[int] = None
    kind = "set_admission_limit"

    def log_fields(self) -> Tuple:
        return (self.kind, self.queue,
                -1 if self.limit is None else self.limit)


@dataclass(frozen=True)
class SwitchEngine(Proposal):
    """Flip one model's execution engine (megakernel / tape / plan /
    eager).

    ``expected_fingerprint`` is mandatory context: the guards refuse
    any switch whose fingerprint does not match their declared one, and
    the registry re-verifies it at apply time — fail closed twice.
    """

    model: str = ""
    engine: str = ""
    expected_fingerprint: Optional[str] = None
    kind = "switch_engine"

    def log_fields(self) -> Tuple:
        return (self.kind, self.model, self.engine)


@dataclass(frozen=True)
class SwitchBackend(Proposal):
    """Re-home one model onto a different FHE backend (re-encrypts)."""

    model: str = ""
    backend: str = ""
    expected_fingerprint: Optional[str] = None
    kind = "switch_backend"

    def log_fields(self) -> Tuple:
        return (self.kind, self.model, self.backend)


# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------

class Policy:
    """Base policy: override :meth:`propose`."""

    #: Stable name recorded with every proposal in the decision log.
    name = "policy"

    def propose(self, snapshot: ControlSnapshot) -> List[Proposal]:
        raise NotImplementedError


class AutoscalePolicy(Policy):
    """SLO/backlog-driven worker scaling with sustain hysteresis.

    Scale-up pressure: p99 latency above the SLO *while deadline misses
    are still accruing* (the latency histogram is cumulative, so the
    windowed miss counter is what distinguishes live overload from the
    historical tail a past burst left behind), or backlog per live
    worker at/above ``backlog_high``.  Scale-down pressure: backlog per
    worker at/below ``backlog_low`` **and** no new deadline misses this
    window **and** at least one idle worker.  Either condition must
    hold for ``sustain_up`` / ``sustain_down`` *consecutive* ticks
    before a proposal is emitted, and the counter resets after
    proposing — one noisy tick can neither flap the pool nor
    double-fire.  With no per-query deadlines in the workload the SLO
    gate never fires and the policy is backlog-driven.
    """

    name = "autoscale"

    def __init__(
        self,
        slo_p99_ms: Optional[float] = None,
        backlog_high: float = 4.0,
        backlog_low: float = 0.5,
        sustain_up: int = 2,
        sustain_down: int = 4,
        step: int = 1,
    ):
        if slo_p99_ms is not None and slo_p99_ms <= 0:
            raise ValidationError("slo_p99_ms must be > 0")
        if backlog_low >= backlog_high:
            raise ValidationError(
                f"backlog_low ({backlog_low}) must be < backlog_high "
                f"({backlog_high})"
            )
        if sustain_up < 1 or sustain_down < 1:
            raise ValidationError("sustain counts must be >= 1")
        if step < 1:
            raise ValidationError("step must be >= 1")
        self.slo_p99_ms = slo_p99_ms
        self.backlog_high = backlog_high
        self.backlog_low = backlog_low
        self.sustain_up = sustain_up
        self.sustain_down = sustain_down
        self.step = step
        self._up = 0
        self._down = 0
        self._last_misses: Optional[int] = None

    def propose(self, s: ControlSnapshot) -> List[Proposal]:
        prev_misses = self._last_misses
        self._last_misses = s.deadline_misses
        # Misses accrued since the previous tick: the windowed signal.
        # The first tick has no window and reads as healthy.
        new_misses = (
            0 if prev_misses is None
            else max(0, s.deadline_misses - prev_misses)
        )
        backlog = s.backlog_per_worker
        slo_miss = (
            self.slo_p99_ms is not None
            and s.latency_p99_ms > self.slo_p99_ms
            and new_misses > 0
        )
        over = slo_miss or backlog >= self.backlog_high
        under = (
            backlog <= self.backlog_low
            and s.free_workers > 0
            and new_misses == 0
        )
        if over:
            self._up += 1
            self._down = 0
        elif under:
            self._down += 1
            self._up = 0
        else:
            self._up = 0
            self._down = 0

        if self._up >= self.sustain_up:
            self._up = 0
            why = (
                f"p99 {s.latency_p99_ms}ms > slo {self.slo_p99_ms}ms"
                if slo_miss else
                f"backlog/worker {round(backlog, 9)} >= "
                f"{self.backlog_high}"
            )
            return [ScaleWorkers(
                delta=self.step,
                reason=f"sustained overload x{self.sustain_up}: {why}",
            )]
        if self._down >= self.sustain_down:
            self._down = 0
            return [ScaleWorkers(
                delta=-self.step,
                reason=(
                    f"sustained underload x{self.sustain_down}: "
                    f"backlog/worker {round(backlog, 9)} <= "
                    f"{self.backlog_low}"
                ),
            )]
        return []


class WeightBalancePolicy(Policy):
    """Boost the fair-share weight of a disproportionately backlogged queue.

    When one queue holds more than ``imbalance`` times the mean backlog
    for ``sustain`` consecutive ticks, propose multiplying its weight by
    ``boost`` (the guards bound the per-step change and the absolute
    range).  Only ever proposes for the single worst queue per tick.
    """

    name = "weight_balance"

    def __init__(self, imbalance: float = 3.0, boost: float = 2.0,
                 sustain: int = 3, max_weight: float = 8.0):
        if imbalance <= 1.0:
            raise ValidationError("imbalance must be > 1")
        if boost <= 1.0:
            raise ValidationError("boost must be > 1")
        self.imbalance = imbalance
        self.boost = boost
        self.sustain = sustain
        self.max_weight = max_weight
        self._streaks: dict = {}

    def propose(self, s: ControlSnapshot) -> List[Proposal]:
        if len(s.queues) < 2 or not s.total_depth:
            self._streaks.clear()
            return []
        mean = s.total_depth / len(s.queues)
        worst = max(s.queues, key=lambda q: (q.depth, q.name))
        hot = worst.depth > self.imbalance * mean
        for q in s.queues:
            if q.name == worst.name and hot:
                self._streaks[q.name] = self._streaks.get(q.name, 0) + 1
            else:
                self._streaks.pop(q.name, None)
        if not hot or self._streaks.get(worst.name, 0) < self.sustain:
            return []
        self._streaks.pop(worst.name, None)
        target = min(round(worst.weight * self.boost, 9), self.max_weight)
        if target <= worst.weight:
            return []
        return [AdjustTenantWeight(
            queue=worst.name,
            weight=target,
            reason=(
                f"queue {worst.name!r} backlog {worst.depth} > "
                f"{self.imbalance}x mean {round(mean, 9)} for "
                f"{self.sustain} ticks"
            ),
        )]


class AdmissionReliefPolicy(Policy):
    """Widen a queue's admission bound while rejections are the failure mode.

    If a queue rejected new work since the last tick while overall
    deadline misses stayed low, its bound is the bottleneck — propose
    doubling it (up to ``max_limit``).  The inverse (tightening under
    sustained misses) is deliberately left to operators: shrinking a
    bound sheds real traffic and should not happen autonomously.
    """

    name = "admission_relief"

    def __init__(self, max_limit: int = 4096,
                 miss_rate_ceiling: float = 0.05):
        if max_limit < 1:
            raise ValidationError("max_limit must be >= 1")
        self.max_limit = max_limit
        self.miss_rate_ceiling = miss_rate_ceiling
        self._last_rejected: Optional[int] = None

    def propose(self, s: ControlSnapshot) -> List[Proposal]:
        prev = self._last_rejected
        self._last_rejected = s.rejected
        if prev is None or s.rejected <= prev:
            return []
        if s.deadline_miss_rate > self.miss_rate_ceiling:
            return []  # latency is the failure mode; admitting more hurts
        proposals: List[Proposal] = []
        for q in s.queues:
            if q.limit is None:
                continue
            if q.depth < q.limit:
                continue  # this queue is not the one rejecting
            target = min(q.limit * 2, self.max_limit)
            if target <= q.limit:
                continue
            proposals.append(SetAdmissionLimit(
                queue=q.name,
                limit=target,
                reason=(
                    f"{s.rejected - prev} rejections since last tick "
                    f"with queue {q.name!r} at bound {q.limit}"
                ),
            ))
        return proposals


class EngineDriftPolicy(Policy):
    """Flip a model's engine when its live batch cost drifts from plan.

    Each watched model declares the cost the current engine was chosen
    for (``reference_ms``), the engine to fall over to, and the compiled
    fingerprint the decision was made about.  When the scheduler's
    EWMA-refined estimate exceeds ``drift_factor`` times the reference
    for ``sustain`` consecutive ticks, propose the switch — once (the
    model is then dropped from the watch list; flip-flopping engines on
    a noisy estimate is exactly what this must not do).
    """

    name = "engine_drift"

    def __init__(self, watch: dict, drift_factor: float = 1.5,
                 sustain: int = 3):
        """``watch``: model -> (reference_ms, target_engine, fingerprint)."""
        if drift_factor <= 1.0:
            raise ValidationError("drift_factor must be > 1")
        self.watch = dict(watch)
        self.drift_factor = drift_factor
        self.sustain = sustain
        self._streaks: dict = {}

    def propose(self, s: ControlSnapshot) -> List[Proposal]:
        proposals: List[Proposal] = []
        for model in sorted(self.watch):
            reference_ms, engine, fingerprint = self.watch[model]
            q = s.queue(model)
            if q is None or q.estimated_batch_ms <= 0:
                continue
            drifted = (
                q.estimated_batch_ms > self.drift_factor * reference_ms
            )
            if not drifted:
                self._streaks.pop(model, None)
                continue
            streak = self._streaks.get(model, 0) + 1
            self._streaks[model] = streak
            if streak < self.sustain:
                continue
            del self._streaks[model]
            del self.watch[model]
            proposals.append(SwitchEngine(
                model=model,
                engine=engine,
                expected_fingerprint=fingerprint,
                reason=(
                    f"estimated_batch_ms {q.estimated_batch_ms} > "
                    f"{self.drift_factor}x reference {reference_ms} "
                    f"for {self.sustain} ticks"
                ),
            ))
        return proposals


class DegradationPolicy(Policy):
    """Pin a model one rung down its engine ladder when workers keep
    falling off it.

    Workers already degrade per batch (megakernel -> tape -> plan ->
    eager) when an engine raises, and the router counts each audited
    fallback in the labeled ``cluster_degraded`` metric.  Per-batch
    degradation retries the broken rung on every batch, though — if the
    fast path stays broken, that is a steady tax of one failed attempt
    per batch.  This policy watches the counter and, once fallbacks for
    a model keep accruing for ``sustain`` consecutive ticks, proposes a
    guard-checked :class:`SwitchEngine` that re-registers the model one
    rung down — making the degradation sticky, auditable, and subject
    to the same fingerprint fail-closed checks as every other switch.
    Each watched model proposes at most once (recovery — climbing back
    up the ladder — is an operator decision, not an autonomous one).
    """

    name = "degradation"

    def __init__(self, watch: dict, sustain: int = 2):
        """``watch``: model -> (current_engine, fingerprint)."""
        from repro.serve.faults import degrade_engine

        if sustain < 1:
            raise ValidationError("sustain must be >= 1")
        for model, (engine, _) in sorted(watch.items()):
            if degrade_engine(engine) is None:
                raise ValidationError(
                    f"model {model!r} engine {engine!r} has no lower "
                    f"rung to degrade to"
                )
        self.watch = dict(watch)
        self.sustain = sustain
        self._streaks: dict = {}
        self._last_counts: dict = {}

    def propose(self, s: ControlSnapshot) -> List[Proposal]:
        from repro.serve.faults import degrade_engine

        proposals: List[Proposal] = []
        for model in sorted(self.watch):
            engine, fingerprint = self.watch[model]
            count = s.degraded_count(model)
            previous = self._last_counts.get(model, 0)
            self._last_counts[model] = count
            if count <= previous:
                self._streaks.pop(model, None)
                continue
            streak = self._streaks.get(model, 0) + 1
            self._streaks[model] = streak
            if streak < self.sustain:
                continue
            del self._streaks[model]
            del self.watch[model]
            target = degrade_engine(engine)
            proposals.append(SwitchEngine(
                model=model,
                engine=target,
                expected_fingerprint=fingerprint,
                reason=(
                    f"{count} batches degraded off engine {engine!r} "
                    f"({count - previous} new) for {self.sustain} "
                    f"consecutive ticks; pinning {target!r}"
                ),
            ))
        return proposals
