"""Plants: the actuation seams the controller drives.

A *plant* is whatever the controller observes and actuates — the
protocol is two methods:

* ``observe(now) -> ControlSnapshot`` — refresh the shared metrics
  registry (``stats()`` writes the point-in-time gauges) and capture it;
* ``apply(proposal, now)`` — perform one guard-approved actuation, or
  raise :class:`~repro.errors.ValidationError` if the mechanism itself
  refuses (the controller records that as a failed apply — the guards
  *and* the mechanism both fail closed).

Four adapters cover the serve stack: the threaded
:class:`~repro.serve.service.CopseService` and multi-process
:class:`~repro.serve.cluster.ClusterService` for production, and the
two discrete-event simulators for deterministic soaks.  Scale-downs
always retire the *highest-id* idle worker — a deterministic choice
that also keeps low worker ids (the crc32 placement anchors) stable.
"""

from __future__ import annotations

from typing import List

from repro.errors import ValidationError
from repro.control.policy import (
    AdjustTenantWeight,
    Proposal,
    ScaleWorkers,
    SetAdmissionLimit,
    SwitchBackend,
    SwitchEngine,
)
from repro.control.signals import ControlSnapshot

__all__ = [
    "ServicePlant",
    "ClusterPlant",
    "SimPlant",
    "ClusterSimPlant",
]


def _unsupported(proposal: Proposal, plant: str) -> ValidationError:
    return ValidationError(
        f"{plant} cannot apply {proposal.kind!r} proposals"
    )


class ServicePlant:
    """Actuate a threaded :class:`~repro.serve.service.CopseService`."""

    def __init__(self, service):
        self.service = service

    def observe(self, now: float) -> ControlSnapshot:
        self.service.scheduler.stats()  # refresh point-in-time gauges
        return ControlSnapshot.capture(self.service.metrics, now)

    def apply(self, proposal: Proposal, now: float) -> None:
        svc = self.service
        if isinstance(proposal, ScaleWorkers):
            if proposal.delta > 0:
                for _ in range(proposal.delta):
                    svc.add_worker()
            else:
                for _ in range(-proposal.delta):
                    svc.remove_worker()
        elif isinstance(proposal, AdjustTenantWeight):
            svc.set_tenant_weight(proposal.queue, proposal.weight)
        elif isinstance(proposal, SetAdmissionLimit):
            svc.set_admission_limit(proposal.queue, proposal.limit)
        elif isinstance(proposal, SwitchEngine):
            svc.set_model_engine(
                proposal.model, proposal.engine,
                expected_fingerprint=proposal.expected_fingerprint,
            )
        elif isinstance(proposal, SwitchBackend):
            svc.set_model_backend(
                proposal.model, proposal.backend,
                expected_fingerprint=proposal.expected_fingerprint,
            )
        else:
            raise _unsupported(proposal, "ServicePlant")


class ClusterPlant:
    """Actuate a multi-process :class:`~repro.serve.cluster.ClusterService`."""

    def __init__(self, service):
        self.service = service

    def observe(self, now: float) -> ControlSnapshot:
        self.service.stats()  # refresh point-in-time gauges
        return ControlSnapshot.capture(
            self.service.router.metrics, now
        )

    def apply(self, proposal: Proposal, now: float) -> None:
        svc = self.service
        if isinstance(proposal, ScaleWorkers):
            if proposal.delta > 0:
                for _ in range(proposal.delta):
                    svc.add_worker()
            else:
                for _ in range(-proposal.delta):
                    idle = svc.router.idle_live_workers()
                    if not idle:
                        raise ValidationError(
                            "no idle worker to retire"
                        )
                    svc.retire_worker(idle[-1])
        elif isinstance(proposal, AdjustTenantWeight):
            svc.set_tenant_weight(proposal.queue, proposal.weight)
        elif isinstance(proposal, SetAdmissionLimit):
            svc.set_admission_limit(proposal.queue, proposal.limit)
        elif isinstance(proposal, SwitchEngine):
            svc.set_model_engine(proposal.model, proposal.engine)
        else:
            # Backend switches re-encrypt the model; the cluster ships
            # compiled bundles and would need a coordinated re-ship +
            # re-key across every worker — not an autonomous actuation.
            raise _unsupported(proposal, "ClusterPlant")


class SimPlant:
    """Actuate the single-process :class:`~repro.serve.loadgen.SimRunner`."""

    def __init__(self, runner):
        self.runner = runner

    def observe(self, now: float) -> ControlSnapshot:
        self.runner.core.stats()  # refresh point-in-time gauges
        return ControlSnapshot.capture(self.runner.core.metrics, now)

    def apply(self, proposal: Proposal, now: float) -> None:
        runner = self.runner
        if isinstance(proposal, ScaleWorkers):
            if proposal.delta > 0:
                for _ in range(proposal.delta):
                    runner.add_worker()
            else:
                for _ in range(-proposal.delta):
                    idle: List[int] = runner.core.idle_workers()
                    if not idle:
                        raise ValidationError(
                            "no idle worker to retire"
                        )
                    runner.remove_worker(idle[-1])
        elif isinstance(proposal, AdjustTenantWeight):
            runner.core.set_weight(proposal.queue, proposal.weight)
        elif isinstance(proposal, SetAdmissionLimit):
            runner.core.set_max_pending(proposal.queue, proposal.limit)
        else:
            # The simulator has no real engines/backends to switch —
            # service times are fixed model profiles.
            raise _unsupported(proposal, "SimPlant")


class ClusterSimPlant:
    """Actuate the :class:`~repro.serve.cluster.ClusterSimRunner`."""

    def __init__(self, runner):
        self.runner = runner

    def observe(self, now: float) -> ControlSnapshot:
        self.runner.router.stats()  # refresh point-in-time gauges
        return ControlSnapshot.capture(
            self.runner.router.metrics, now
        )

    def apply(self, proposal: Proposal, now: float) -> None:
        runner = self.runner
        router = runner.router
        if isinstance(proposal, ScaleWorkers):
            if proposal.delta > 0:
                for _ in range(proposal.delta):
                    runner.add_worker(now)
            else:
                for _ in range(-proposal.delta):
                    idle = router.idle_live_workers()
                    if not idle:
                        raise ValidationError(
                            "no idle worker to retire"
                        )
                    runner.retire_worker(idle[-1], now)
        elif isinstance(proposal, AdjustTenantWeight):
            router.set_weight(proposal.queue, proposal.weight, now)
        elif isinstance(proposal, SetAdmissionLimit):
            router.set_admission_limit(proposal.queue, proposal.limit,
                                       now)
        else:
            raise _unsupported(proposal, "ClusterSimPlant")
