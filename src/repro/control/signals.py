"""Control-plane observations: one consistent snapshot per tick.

The controller never pokes scheduler internals.  Everything it can see
is read from the shared :class:`~repro.obs.metrics.MetricsRegistry` —
the same store ``repro metrics`` and the Prometheus export read — after
the plant has refreshed its point-in-time gauges (``stats()`` does
that).  This keeps one source of truth: if a signal is not a metric, the
controller cannot act on it, and anything the controller acted on can be
inspected after the fact with the standard observability tooling.

A :class:`ControlSnapshot` is frozen and built from sorted registry
families, so two runs that produced identical metric values produce
identical snapshots — the first link in the control loop's determinism
chain (snapshot -> policy -> guard -> actuation, each pure).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = ["QueueSignal", "ControlSnapshot"]


@dataclass(frozen=True)
class QueueSignal:
    """One model queue's control-relevant state at a tick."""

    name: str
    #: Queries currently pending (the backlog the policy reacts to).
    depth: int
    #: The scheduler's live (EWMA-refined) batch-cost estimate, ms.
    estimated_batch_ms: float
    #: Current fair-share weight.
    weight: float
    #: Current admission bound (None = unbounded).
    limit: Optional[int]


@dataclass(frozen=True)
class ControlSnapshot:
    """Everything the policies may react to, captured at one instant.

    Counter fields are cumulative (policies needing rates keep the
    previous snapshot and difference them); gauges and percentiles are
    point-in-time.  ``queues`` and ``tenant_p99_ms`` are sorted by name
    so iteration order — and therefore every downstream decision — is
    deterministic.
    """

    now: float
    live_workers: int
    free_workers: int
    submitted: int
    completed: int
    rejected: int
    failed: int
    deadline_misses: int
    worker_crashes: int
    latency_p50_ms: float
    latency_p99_ms: float
    queues: Tuple[QueueSignal, ...] = ()
    #: tenant name -> windowed p99 completion latency, ms (sorted).
    tenant_p99_ms: Tuple[Tuple[str, float], ...] = ()
    #: Queries isolated as poison by quarantine bisection (cumulative).
    dead_lettered: int = 0
    #: model -> batches that fell down the engine degradation ladder
    #: (cumulative, sorted by model name).
    degraded: Tuple[Tuple[str, int], ...] = ()

    @classmethod
    def capture(cls, metrics, now: float) -> "ControlSnapshot":
        """Read the registry into a snapshot.

        The caller must refresh point-in-time gauges first (the plants'
        ``observe`` call ``stats()`` before capturing, which is what
        writes ``sched_queue_depth`` / ``sched_live_workers`` / the
        per-queue EWMA cost gauges).
        """
        def gauge(name: str) -> float:
            family = metrics.family(name)
            inst = family.get(())
            return inst.value if inst is not None else 0.0

        def counter(name: str) -> int:
            return int(metrics.counter_value(name))

        depths = metrics.labeled_values("sched_queue_depth")
        costs = metrics.labeled_values("sched_estimated_batch_ms")
        weights = metrics.labeled_values("sched_queue_weight")
        limits = metrics.labeled_values("sched_queue_limit")
        queues = tuple(
            QueueSignal(
                name=name,
                depth=int(depth),
                estimated_batch_ms=costs.get(name, 0.0),
                weight=weights.get(name, 1.0),
                limit=(
                    None
                    if limits.get(name, -1.0) < 0
                    else int(limits[name])
                ),
            )
            for name, depth in sorted(depths.items())
        )

        degraded = tuple(
            sorted(
                (model, int(count))
                for model, count in metrics.labeled_values(
                    "cluster_degraded"
                ).items()
            )
        )
        latency = metrics.family("sched_latency_ms").get(())
        tenant_p99 = tuple(
            sorted(
                (key[0].split("=", 1)[1], round(hist.percentile(0.99), 9))
                for key, hist in metrics.family(
                    "sched_tenant_latency_ms"
                ).items()
                if key
            )
        )
        return cls(
            now=round(now, 9),
            live_workers=int(gauge("sched_live_workers")),
            free_workers=int(gauge("sched_free_workers")),
            submitted=counter("sched_submitted"),
            completed=counter("sched_completed"),
            rejected=counter("sched_rejected"),
            failed=counter("sched_failed"),
            deadline_misses=counter("sched_deadline_misses"),
            worker_crashes=counter("sched_worker_crashes"),
            latency_p50_ms=(
                round(latency.percentile(0.5), 9) if latency else 0.0
            ),
            latency_p99_ms=(
                round(latency.percentile(0.99), 9) if latency else 0.0
            ),
            queues=queues,
            tenant_p99_ms=tenant_p99,
            dead_lettered=counter("sched_dead_lettered"),
            degraded=degraded,
        )

    # -- derived views -------------------------------------------------

    @property
    def total_depth(self) -> int:
        """Queries pending across every queue."""
        return sum(q.depth for q in self.queues)

    @property
    def backlog_per_worker(self) -> float:
        """Pending queries per live worker — the scale pressure signal."""
        return self.total_depth / max(1, self.live_workers)

    @property
    def deadline_miss_rate(self) -> float:
        if not self.completed:
            return 0.0
        return self.deadline_misses / self.completed

    def queue(self, name: str) -> Optional[QueueSignal]:
        for q in self.queues:
            if q.name == name:
                return q
        return None

    def tenant_p99(self, tenant: str) -> Optional[float]:
        for name, p99 in self.tenant_p99_ms:
            if name == tenant:
                return p99
        return None

    def degraded_count(self, model: str) -> int:
        for name, count in self.degraded:
            if name == model:
                return count
        return 0
