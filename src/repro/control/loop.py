"""The controller: observe -> propose -> guard -> actuate, audited.

:class:`Controller` owns no clock and no thread.  The caller drives it —
the discrete-event simulators schedule a ``_CONTROL`` event every
interval of virtual time, ``repro serve --autoscale`` ticks it from the
stats loop — and passes ``now`` explicitly, exactly like the scheduler
and router cores.  Given the same snapshot sequence, the same policies,
and the same guard config, every tick appends the same records to
:attr:`decision_log`; the seeded autoscale soak compares the log
byte-for-byte (via ``json.dumps``) across runs.

Decision-log grammar (one tuple per record, in order)::

    ("proposed", tick, policy, kind, *fields, reason, t)
    ("guard",    tick, kind, "passed", t)
    ("guard",    tick, kind, "rejected", reason, t)
    ("applied",  tick, kind, *fields, t)
    ("apply_failed", tick, kind, reason, t)

Every ``applied`` record is preceded by its ``guard ... passed`` record
— an actuation that skipped the guards cannot be expressed.  A
mechanism-level refusal at apply time (the plant raising
:class:`~repro.errors.ValidationError`) is recorded as ``apply_failed``
and does **not** arm the guard cooldown, so the next tick may retry.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import ValidationError
from repro.control.guards import GuardRail
from repro.control.policy import Policy
from repro.control.signals import ControlSnapshot

__all__ = ["Controller"]


class Controller:
    """One control loop over one plant.

    ``policies`` are consulted in the given order each tick; their
    proposals are vetted and applied in that same order, against the
    snapshot taken at the top of the tick (one observation per tick —
    policies never see each other's effects until the next tick, which
    keeps a tick's decisions a pure function of its snapshot).
    """

    def __init__(
        self,
        plant,
        policies: Sequence[Policy],
        guards: Optional[GuardRail] = None,
        tracer=None,
        metrics=None,
    ):
        if not policies:
            raise ValidationError(
                "a Controller needs at least one policy"
            )
        self.plant = plant
        self.policies = list(policies)
        self.guards = guards if guards is not None else GuardRail()
        self.tracer = tracer
        self.metrics = metrics
        #: The auditable, replayable record of every decision.
        self.decision_log: List[Tuple] = []
        #: Snapshot observed at the most recent tick (for inspection).
        self.last_snapshot: Optional[ControlSnapshot] = None
        self._tick = 0

    # -- bookkeeping ---------------------------------------------------

    def _record(self, *fields) -> None:
        self.decision_log.append(fields)

    def _count(self, name: str, kind: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name, {"kind": kind}).inc()

    # -- the loop body -------------------------------------------------

    def tick(self, now: float) -> List[Tuple]:
        """Run one control cycle; returns the records it appended."""
        span = None
        if self.tracer is not None:
            span = self.tracer.begin(
                "control_tick", now, track="controller",
                tick=self._tick,
            )
        start = len(self.decision_log)
        t = round(now, 9)
        tick = self._tick
        self._tick += 1
        if self.metrics is not None:
            self.metrics.counter("control_ticks").inc()

        snapshot = self.plant.observe(now)
        self.last_snapshot = snapshot
        applied = 0
        rejected = 0
        for policy in self.policies:
            for proposal in policy.propose(snapshot):
                self._record(
                    "proposed", tick, policy.name,
                    *proposal.log_fields(), proposal.reason, t,
                )
                self._count("control_proposed", proposal.kind)
                reason = self.guards.check(proposal, snapshot, now)
                if reason is not None:
                    self._record(
                        "guard", tick, proposal.kind, "rejected",
                        reason, t,
                    )
                    self._count("control_rejected", proposal.kind)
                    rejected += 1
                    continue
                self._record("guard", tick, proposal.kind, "passed", t)
                try:
                    self.plant.apply(proposal, now)
                except ValidationError as exc:
                    # The mechanism refused (fail closed): recorded,
                    # and the cooldown is NOT armed — next tick retries.
                    self._record(
                        "apply_failed", tick, proposal.kind, str(exc), t,
                    )
                    self._count("control_apply_failed", proposal.kind)
                    rejected += 1
                    continue
                self.guards.record_applied(proposal, now)
                self._record(
                    "applied", tick, *proposal.log_fields(), t,
                )
                self._count("control_applied", proposal.kind)
                applied += 1

        if span is not None:
            self.tracer.end(
                span, now, applied=applied, rejected=rejected,
            )
        return self.decision_log[start:]

    # -- audit views ---------------------------------------------------

    @property
    def ticks(self) -> int:
        return self._tick

    def applied(self) -> List[Tuple]:
        """Every ``applied`` record."""
        return [r for r in self.decision_log if r[0] == "applied"]

    def rejections(self) -> List[Tuple]:
        """Every ``guard ... rejected`` and ``apply_failed`` record."""
        return [
            r for r in self.decision_log
            if (r[0] == "guard" and r[3] == "rejected")
            or r[0] == "apply_failed"
        ]
