"""repro.control: the self-tuning control plane over live serve stats.

PR 4-7 built observability (scheduler stats, the metrics registry,
per-worker cluster accounting); this package closes the loop and *acts*
on it.  Split in the established pure-core style:

* :mod:`repro.control.signals` — :class:`ControlSnapshot`: one frozen,
  deterministic observation per tick, read exclusively from the shared
  metrics registry (the same source of truth ``repro metrics`` reads);
* :mod:`repro.control.policy` — pluggable policies producing typed
  :class:`Proposal`\\ s (:class:`ScaleWorkers`,
  :class:`AdjustTenantWeight`, :class:`SetAdmissionLimit`,
  :class:`SwitchEngine`/:class:`SwitchBackend`), each with sustain-count
  hysteresis so decisions do not flap;
* :mod:`repro.control.guards` — :class:`GuardRail`: every proposal is
  verified against declared invariants (worker bounds, in-flight epoch
  safety, bounded weight steps, fingerprint-matched switches, per-kind
  cooldowns) before actuation; rejections are recorded with reasons,
  never dropped — the rail fails closed;
* :mod:`repro.control.actuator` — plants: the actuation seams over
  :class:`~repro.serve.service.CopseService`,
  :class:`~repro.serve.cluster.ClusterService`, and both simulators;
* :mod:`repro.control.loop` — :class:`Controller`: the caller-clocked
  observe -> propose -> guard -> actuate cycle, emitting the ordered
  auditable decision log that is the determinism witness (byte-identical
  per seed against the discrete-event simulators).

Quickstart (simulated)::

    from repro.control import (
        AutoscalePolicy, ClusterSimPlant, Controller, GuardConfig,
        GuardRail,
    )
    from repro.serve import ClusterSimRunner

    runner = ClusterSimRunner(profiles, workers=2)
    controller = Controller(
        ClusterSimPlant(runner),
        [AutoscalePolicy(slo_p99_ms=250.0)],
        GuardRail(GuardConfig(workers_min=1, workers_max=6)),
    )
    runner.controller = controller
    report = runner.run(arrivals, faults)
    print(controller.decision_log)

``repro serve --autoscale`` wires the same controller over the real
service; ``repro bench autoscale`` replays the three-phase ramp
experiment.  See DESIGN.md ("Control plane") for the dataflow and the
determinism contract.
"""

from repro.control.signals import ControlSnapshot, QueueSignal
from repro.control.policy import (
    AdjustTenantWeight,
    AdmissionReliefPolicy,
    AutoscalePolicy,
    DegradationPolicy,
    EngineDriftPolicy,
    Policy,
    Proposal,
    ScaleWorkers,
    SetAdmissionLimit,
    SwitchBackend,
    SwitchEngine,
    WeightBalancePolicy,
)
from repro.control.guards import GuardConfig, GuardRail
from repro.control.actuator import (
    ClusterPlant,
    ClusterSimPlant,
    ServicePlant,
    SimPlant,
)
from repro.control.loop import Controller

__all__ = [
    "ControlSnapshot",
    "QueueSignal",
    "Proposal",
    "ScaleWorkers",
    "AdjustTenantWeight",
    "SetAdmissionLimit",
    "SwitchEngine",
    "SwitchBackend",
    "Policy",
    "AutoscalePolicy",
    "WeightBalancePolicy",
    "AdmissionReliefPolicy",
    "EngineDriftPolicy",
    "DegradationPolicy",
    "GuardConfig",
    "GuardRail",
    "ServicePlant",
    "ClusterPlant",
    "SimPlant",
    "ClusterSimPlant",
    "Controller",
]
