"""The COPSE runtime: parties, encryption, and Algorithm 1.

Three notional parties (Section 3.1):

* :class:`ModelOwner` (Maurice) — holds a :class:`CompiledModel`; can
  encrypt it (offloading and three-party configurations) or expose it as
  plaintext packed vectors (the Maurice-equals-Sally configuration of
  Section 8.3, where the model never leaves the server);
* :class:`DataOwner` (Diane) — replicates and pads her feature vector
  using only the public query spec (maximum multiplicity ``K``, feature
  count, precision), encrypts it, and decrypts the classification result
  with her secret key;
* :class:`CopseServer` (Sally) — executes the four-stage vectorized
  inference of Algorithm 1 over encrypted data.  She owns no keys; any
  attempt to decrypt with a key that did not encrypt raises.

Phases recorded by the tracker — ``model_encrypt``, ``data_encrypt``,
``comparison``, ``reshuffle``, ``levels``, ``accumulate`` — drive both the
Figure 10 per-stage breakdowns and the Table 1 count validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.errors import RuntimeProtocolError
from repro.core.compiler import CompiledModel
from repro.core.matmul import halevi_shoup_matvec
from repro.core.seccomp import VARIANT_ALOUFI, secure_compare
from repro.fhe.ciphertext import Ciphertext, PlainVector
from repro.fhe.context import FheContext, Vector
from repro.fhe.keys import KeyPair, PublicKey, SecretKey
from repro.fhe.params import EncryptionParams
from repro.fhe.simd import replicate, to_bitplanes

#: Tracker phase names, in execution order.
PHASE_MODEL_ENCRYPT = "model_encrypt"
PHASE_DATA_ENCRYPT = "data_encrypt"
PHASE_COMPARISON = "comparison"
PHASE_BOOTSTRAP = "bootstrap"
PHASE_RESHUFFLE = "reshuffle"
PHASE_LEVELS = "levels"
PHASE_ACCUMULATE = "accumulate"

#: Phase recorded by the plan engine: the whole optimized pipeline (plus
#: the Aloufi all-ones helper encryption) executes as one IR graph, so it
#: cannot be split across the four eager stage phases.
PHASE_PLAN = "plan_inference"

#: Phase recorded by the tape engine (the compiled, register-allocated
#: execution tier of :mod:`repro.ir.tape`), mirroring ``plan_inference``.
PHASE_TAPE = "tape_inference"

#: Phase recorded by the megakernel engine (the zero-dispatch compiled
#: tier of :mod:`repro.ir.megakernel`), mirroring ``tape_inference``.
PHASE_MEGAKERNEL = "megakernel_inference"

INFERENCE_PHASES = (
    PHASE_COMPARISON,
    PHASE_BOOTSTRAP,
    PHASE_RESHUFFLE,
    PHASE_LEVELS,
    PHASE_ACCUMULATE,
)

#: Execution engines: ``eager`` interprets Algorithm 1 stage by stage;
#: ``plan`` executes a cached, optimizer-processed
#: :class:`~repro.ir.plan.InferencePlan` lowering of the same pipeline;
#: ``tape`` executes the plan's compiled
#: :class:`~repro.ir.tape.CompiledTape` — linearized instructions with
#: register reuse, scheduled rotations, and fused kernels (the serve
#: default); ``megakernel`` executes the tape's
#: :class:`~repro.ir.megakernel.MegaKernel` compilation — the whole
#: instruction stream as precomputed gather/mask planes with no
#: per-instruction Python dispatch, falling back to the tape loop on
#: backends without the ``megakernel_ops`` capability.
ENGINE_EAGER = "eager"
ENGINE_PLAN = "plan"
ENGINE_TAPE = "tape"
ENGINE_MEGAKERNEL = "megakernel"
ENGINES = (ENGINE_EAGER, ENGINE_PLAN, ENGINE_TAPE, ENGINE_MEGAKERNEL)


@dataclass(frozen=True)
class QuerySpec:
    """The public information Diane needs to form a query (Step 0).

    Only ``max_multiplicity`` reveals anything about the model; the other
    fields (feature count, labels, precision, codebook) are public by the
    paper's threat model.
    """

    precision: int
    n_features: int
    max_multiplicity: int
    codebook: List[int]
    label_names: List[str]


@dataclass
class EncryptedModel:
    """Maurice's model as packed vectors (ciphertext or plaintext).

    The structure widths — one vector per threshold plane, one per
    reshuffle diagonal, one per level-matrix diagonal plus one mask per
    level — are exactly what Section 7.1 says the evaluator learns: ``q``
    from the reshuffle, ``b`` from the level matrices, ``d`` from their
    count.
    """

    precision: int
    branching: int
    quantized_branching: int
    max_depth: int
    num_labels: int
    threshold_planes: List[Vector]
    reshuffle_diagonals: List[Vector]
    level_diagonals: List[List[Vector]]
    level_masks: List[Vector]
    #: Source :meth:`CompiledModel.fingerprint`, so cached inference
    #: plans can refuse to execute against a different model.
    fingerprint: Optional[str] = None

    @property
    def is_encrypted(self) -> bool:
        return isinstance(self.threshold_planes[0], Ciphertext)


@dataclass
class EncryptedQuery:
    """Diane's replicated, padded, bit-sliced, encrypted feature vector.

    The public key travels with the query (it is public by definition);
    the server needs it to encrypt helper constants such as the all-ones
    vector the Aloufi SecComp variant adds for its homomorphic NOT.
    """

    planes: List[Ciphertext]
    public_key: Optional[PublicKey] = None

    @property
    def precision(self) -> int:
        return len(self.planes)

    @property
    def width(self) -> int:
        return self.planes[0].length


@dataclass
class InferenceResult:
    """Decrypted classification: the N-hot label bitvector, decoded."""

    bitvector: List[int]
    codebook: List[int]
    label_names: List[str]

    @property
    def chosen_slots(self) -> List[int]:
        return [i for i, bit in enumerate(self.bitvector) if bit]

    @property
    def chosen_labels(self) -> List[int]:
        """Class-label index chosen by each tree (slot order)."""
        return [self.codebook[slot] for slot in self.chosen_slots]

    def plurality(self) -> int:
        """Single classification by plurality vote; ties to smaller index."""
        if not self.chosen_labels:
            raise RuntimeProtocolError(
                "result bitvector has no set slots; decryption or "
                "evaluation went wrong"
            )
        counts = {}
        for label in self.chosen_labels:
            counts[label] = counts.get(label, 0) + 1
        return max(counts.items(), key=lambda kv: (kv[1], -kv[0]))[0]

    def plurality_name(self) -> str:
        return self.label_names[self.plurality()]


# ---------------------------------------------------------------------------
# Parties
# ---------------------------------------------------------------------------


class ModelOwner:
    """Maurice: owns the compiled model and controls its representation."""

    def __init__(self, model: CompiledModel):
        self.model = model

    def query_spec(self) -> QuerySpec:
        """The public data revealed to enable queries (Step 0)."""
        return QuerySpec(
            precision=self.model.precision,
            n_features=self.model.n_features,
            max_multiplicity=self.model.max_multiplicity,
            codebook=list(self.model.codebook),
            label_names=list(self.model.label_names),
        )

    def encrypt_model(self, ctx: FheContext, public_key: PublicKey) -> EncryptedModel:
        """Encrypt every structure (offloading / three-party setups)."""
        with ctx.tracker.phase(PHASE_MODEL_ENCRYPT):
            thresholds = [
                ctx.encrypt(plane, public_key)
                for plane in self.model.threshold_planes
            ]
            reshuffle = [
                ctx.encrypt(self.model.reshuffle.diagonal(i), public_key)
                for i in range(self.model.reshuffle.num_diagonals)
            ]
            levels = [
                [
                    ctx.encrypt(matrix.diagonal(i), public_key)
                    for i in range(matrix.num_diagonals)
                ]
                for matrix in self.model.level_matrices
            ]
            masks = [
                ctx.encrypt(mask, public_key) for mask in self.model.level_masks
            ]
        return self._bundle(thresholds, reshuffle, levels, masks)

    def plaintext_model(self, ctx: FheContext) -> EncryptedModel:
        """Expose the model as plaintext packed vectors (Maurice = Sally)."""
        thresholds = [
            ctx.encode(plane) for plane in self.model.threshold_planes
        ]
        reshuffle = [
            ctx.encode(self.model.reshuffle.diagonal(i))
            for i in range(self.model.reshuffle.num_diagonals)
        ]
        levels = [
            [ctx.encode(matrix.diagonal(i)) for i in range(matrix.num_diagonals)]
            for matrix in self.model.level_matrices
        ]
        masks = [ctx.encode(mask) for mask in self.model.level_masks]
        return self._bundle(thresholds, reshuffle, levels, masks)

    def _bundle(self, thresholds, reshuffle, levels, masks) -> EncryptedModel:
        return EncryptedModel(
            precision=self.model.precision,
            branching=self.model.branching,
            quantized_branching=self.model.quantized_branching,
            max_depth=self.model.max_depth,
            num_labels=self.model.num_labels,
            threshold_planes=thresholds,
            reshuffle_diagonals=reshuffle,
            level_diagonals=levels,
            level_masks=masks,
            fingerprint=self.model.fingerprint(),
        )


class DataOwner:
    """Diane: prepares encrypted queries and decrypts results."""

    def __init__(self, spec: QuerySpec, keys: KeyPair):
        self.spec = spec
        self.keys = keys

    def prepare_query(
        self, ctx: FheContext, features: Sequence[int]
    ) -> EncryptedQuery:
        """Step 0: replicate, pad, bit-slice, and encrypt the features."""
        if len(features) != self.spec.n_features:
            raise RuntimeProtocolError(
                f"model expects {self.spec.n_features} features, "
                f"got {len(features)}"
            )
        limit = 1 << self.spec.precision
        for value in features:
            if not 0 <= int(value) < limit:
                raise RuntimeProtocolError(
                    f"feature value {value} does not fit in "
                    f"{self.spec.precision} unsigned bits"
                )
        replicated = replicate(
            [int(v) for v in features], self.spec.max_multiplicity
        )
        planes = to_bitplanes(replicated, self.spec.precision)
        with ctx.tracker.phase(PHASE_DATA_ENCRYPT):
            encrypted = [
                ctx.encrypt(planes[i], self.keys.public)
                for i in range(planes.shape[0])
            ]
        return EncryptedQuery(planes=encrypted, public_key=self.keys.public)

    def decrypt_result(self, ctx: FheContext, result: Ciphertext) -> InferenceResult:
        """Decrypt the N-hot classification bitvector."""
        bits = ctx.decrypt_bits(result, self.keys.secret)
        return InferenceResult(
            bitvector=bits,
            codebook=list(self.spec.codebook),
            label_names=list(self.spec.label_names),
        )


class CopseServer:
    """Sally: executes the vectorized inference of Algorithm 1.

    ``seccomp_variant`` selects the comparison circuit: ``"aloufi"``
    (default — the paper runs Aloufi et al.'s SecComp in both systems) or
    ``"optimized"`` (our cheaper rewrite, kept as an ablation).

    ``auto_bootstrap`` re-encrypts the decision vector after the
    comparison when the remaining modulus-chain headroom cannot cover the
    reshuffle/levels/accumulation pipeline — letting deep circuits run on
    short chains at the (steep) price of a bootstrap per query.

    ``engine="plan"`` executes a cached
    :class:`~repro.ir.plan.InferencePlan` (a single-query lowering from
    :func:`~repro.ir.plan.lower_inference`) instead of interpreting the
    stages eagerly — same bits, fewer rotations, recorded under the
    ``plan_inference`` phase.  ``engine="tape"`` executes the plan's
    compiled :class:`~repro.ir.tape.CompiledTape` (linearized, register
    reused, rotation-scheduled) under ``tape_inference`` — same bits,
    strictly fewer rotations again.  ``engine="megakernel"`` executes
    the tape's :class:`~repro.ir.megakernel.MegaKernel` compilation
    under ``megakernel_inference`` — no per-instruction Python
    dispatch on capable backends, the tape loop elsewhere, same bits
    and counts everywhere.
    """

    def __init__(
        self,
        ctx: FheContext,
        seccomp_variant: str = VARIANT_ALOUFI,
        auto_bootstrap: bool = False,
        engine: str = ENGINE_EAGER,
        plan=None,
        tape=None,
        megakernel=None,
    ):
        if engine not in ENGINES:
            raise RuntimeProtocolError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        if engine != ENGINE_EAGER and auto_bootstrap:
            raise RuntimeProtocolError(
                "the plan/tape/megakernel engines have no bootstrap node; "
                "use engine='eager' with auto_bootstrap, or parameters "
                "deep enough to avoid it"
            )
        self.ctx = ctx
        self.seccomp_variant = seccomp_variant
        self.auto_bootstrap = auto_bootstrap
        self.engine = engine
        self.plan = plan
        self.tape = tape
        self.megakernel = megakernel

    def classify(self, model: EncryptedModel, query: EncryptedQuery) -> Ciphertext:
        """Run Algorithm 1: compare, reshuffle, process levels, accumulate."""
        ctx = self.ctx
        if query.precision != model.precision:
            raise RuntimeProtocolError(
                f"query precision {query.precision} does not match the "
                f"model precision {model.precision}"
            )
        if query.width != model.quantized_branching:
            raise RuntimeProtocolError(
                f"query width {query.width} does not match the model's "
                f"quantized branching {model.quantized_branching}; was the "
                f"feature vector replicated with the right multiplicity?"
            )
        if self.engine == ENGINE_PLAN:
            return self._classify_plan(model, query)
        if self.engine == ENGINE_TAPE:
            return self._classify_tape(model, query)
        if self.engine == ENGINE_MEGAKERNEL:
            return self._classify_megakernel(model, query)

        with ctx.tracker.phase(PHASE_COMPARISON):
            not_one = None
            if self.seccomp_variant == VARIANT_ALOUFI:
                if query.public_key is None:
                    raise RuntimeProtocolError(
                        "the Aloufi SecComp variant needs the query's "
                        "public key to encrypt the all-ones helper"
                    )
                not_one = ctx.encrypt(
                    ctx.ones(query.width).to_array(), query.public_key
                )
            decisions = secure_compare(
                ctx,
                query.planes,
                model.threshold_planes,
                variant=self.seccomp_variant,
                not_one=not_one,
            )

        if self.auto_bootstrap:
            import math

            log_d = (
                int(math.ceil(math.log2(model.max_depth)))
                if model.max_depth > 1
                else 0
            )
            remaining_depth = 2 + log_d  # reshuffle + level + accumulation
            if ctx.depth_headroom(decisions) < remaining_depth:
                with ctx.tracker.phase(PHASE_BOOTSTRAP):
                    decisions = ctx.bootstrap(decisions)

        with ctx.tracker.phase(PHASE_RESHUFFLE):
            branches = halevi_shoup_matvec(
                ctx,
                model.reshuffle_diagonals,
                rows=model.branching,
                cols=model.quantized_branching,
                vector=decisions,
            )

        with ctx.tracker.phase(PHASE_LEVELS):
            level_results = self._process_levels(model, branches)

        with ctx.tracker.phase(PHASE_ACCUMULATE):
            result = ctx.multiply_all(level_results)

        if not isinstance(result, Ciphertext):  # pragma: no cover
            raise RuntimeProtocolError("inference result must be encrypted")
        return result

    def _classify_plan(
        self, model: EncryptedModel, query: EncryptedQuery
    ) -> Ciphertext:
        """Execute the cached single-query plan against this query."""
        plan = self.plan
        if plan is None:
            raise RuntimeProtocolError(
                "engine='plan' needs an InferencePlan; lower one with "
                "repro.ir.plan.lower_inference (or call "
                "secure_inference(engine='plan'), which does)"
            )
        if plan.batched:
            raise RuntimeProtocolError(
                "a batched plan cannot serve the single-query server; "
                "lower with lower_inference instead"
            )
        if plan.variant != self.seccomp_variant:
            raise RuntimeProtocolError(
                f"plan was lowered with SecComp variant {plan.variant!r} "
                f"but the server runs {self.seccomp_variant!r}"
            )
        return plan.run(self.ctx, model, query)

    def _classify_tape(
        self, model: EncryptedModel, query: EncryptedQuery
    ) -> Ciphertext:
        """Execute the cached single-query compiled tape."""
        tape = self.tape
        if tape is None:
            raise RuntimeProtocolError(
                "engine='tape' needs a CompiledTape; compile one with "
                "InferencePlan.compile_tape (or call "
                "secure_inference(engine='tape'), which does)"
            )
        if tape.batched:
            raise RuntimeProtocolError(
                "a batched tape cannot serve the single-query server; "
                "compile from a lower_inference plan instead"
            )
        if tape.variant != self.seccomp_variant:
            raise RuntimeProtocolError(
                f"tape was compiled with SecComp variant {tape.variant!r} "
                f"but the server runs {self.seccomp_variant!r}"
            )
        return tape.run(self.ctx, model, query)

    def _classify_megakernel(
        self, model: EncryptedModel, query: EncryptedQuery
    ) -> Ciphertext:
        """Execute the cached single-query megakernel."""
        kernel = self.megakernel
        if kernel is None:
            raise RuntimeProtocolError(
                "engine='megakernel' needs a MegaKernel; compile one with "
                "repro.ir.megakernel.compile_megakernel over a "
                "InferencePlan.compile_tape tape (or call "
                "secure_inference(engine='megakernel'), which does)"
            )
        if kernel.batched:
            raise RuntimeProtocolError(
                "a batched megakernel cannot serve the single-query "
                "server; compile from a lower_inference plan instead"
            )
        if kernel.variant != self.seccomp_variant:
            raise RuntimeProtocolError(
                f"megakernel was compiled with SecComp variant "
                f"{kernel.variant!r} but the server runs "
                f"{self.seccomp_variant!r}"
            )
        return kernel.run(self.ctx, model, query)

    def _process_levels(
        self, model: EncryptedModel, branches: Vector
    ) -> List[Vector]:
        """All levels against shared pre-rotated branch vectors.

        The rotations of the branch-decision vector are identical across
        levels, so they are computed once and reused — this is what keeps
        the per-level rotation count at ``b`` (the cyclic extensions) and
        the total at ``d*b + b - 1``, matching Table 2's ``q + d*b`` up to
        the elided zero-rotation.
        """
        ctx = self.ctx
        if not isinstance(branches, Ciphertext):  # pragma: no cover
            raise RuntimeProtocolError("branch decisions must be encrypted")
        b = model.branching
        rotated = [branches if i == 0 else ctx.rotate(branches, i) for i in range(b)]
        num_labels = model.num_labels

        results: List[Vector] = []
        for level_index in range(model.max_depth):
            diagonals = model.level_diagonals[level_index]
            mask = model.level_masks[level_index]
            products: List[Vector] = []
            for i, diagonal in enumerate(diagonals):
                extended = ctx.cyclic_extend(rotated[i], num_labels)
                products.append(ctx.and_any(diagonal, extended))
            level_decisions = ctx.xor_all(products)
            results.append(ctx.xor_any(level_decisions, mask))
        return results


# ---------------------------------------------------------------------------
# One-call convenience API
# ---------------------------------------------------------------------------


@dataclass
class SecureInferenceOutcome:
    """Everything a caller needs from one end-to-end secure inference."""

    result: InferenceResult
    context: FheContext
    model: EncryptedModel

    @property
    def tracker(self):
        return self.context.tracker

    @property
    def backend(self) -> str:
        """Registry name of the FHE backend the inference ran on."""
        return getattr(self.context, "backend_name", "unknown")


def secure_inference(
    compiled: CompiledModel,
    features: Sequence[int],
    params: Optional[EncryptionParams] = None,
    encrypted_model: bool = True,
    ctx: Optional[FheContext] = None,
    keys: Optional[KeyPair] = None,
    seccomp_variant: str = VARIANT_ALOUFI,
    auto_bootstrap: bool = False,
    engine: str = ENGINE_EAGER,
    plan=None,
    tape=None,
    megakernel=None,
    backend: Optional[str] = None,
) -> SecureInferenceOutcome:
    """Run one full secure inference end to end.

    ``encrypted_model=True`` is the offloading configuration (Maurice =
    Diane, the model travels encrypted); ``False`` is the
    Maurice-equals-Sally configuration where the model stays in plaintext
    on the server.  ``auto_bootstrap`` lets circuits deeper than the
    modulus chain run by re-encrypting mid-circuit.  ``engine="plan"``
    routes Sally through an optimized :class:`~repro.ir.plan.InferencePlan`
    (lowered here when ``plan`` is not supplied; pass a prebuilt plan to
    amortize the lowering across queries); ``engine="tape"`` additionally
    compiles the plan into a :class:`~repro.ir.tape.CompiledTape`
    (rotation-scheduled, register-reused, fused) — pass a prebuilt
    ``tape`` to amortize compilation; ``engine="megakernel"`` compiles
    that tape once more into a zero-dispatch
    :class:`~repro.ir.megakernel.MegaKernel` (pass a prebuilt
    ``megakernel`` to amortize).  ``backend`` selects the FHE
    backend the context is built on (a registered name from
    :func:`repro.fhe.available_backends`; default ``$REPRO_BACKEND`` or
    ``"reference"``) — ignored when an explicit ``ctx`` is supplied,
    since a context *is* a backend instance.
    """
    if params is None:
        params = EncryptionParams.paper_defaults()
    compiled.check_parameters(params, allow_bootstrapping=auto_bootstrap)
    if ctx is None:
        ctx = FheContext(params, backend=backend)
    elif backend is not None and getattr(ctx, "backend_name", None) != backend:
        raise RuntimeProtocolError(
            f"explicit ctx implements backend "
            f"{getattr(ctx, 'backend_name', 'unknown')!r}, but "
            f"backend={backend!r} was requested; pass one or the other"
        )
    if keys is None:
        keys = ctx.keygen()

    needs_tape = (
        engine == ENGINE_TAPE and tape is None
    ) or (engine == ENGINE_MEGAKERNEL and megakernel is None and tape is None)
    needs_plan = engine == ENGINE_PLAN or needs_tape
    if needs_plan and plan is None:
        # Imported lazily: repro.ir.plan stages through this module.
        from repro.ir.plan import lower_inference

        plan = lower_inference(
            compiled, encrypted_model=encrypted_model, variant=seccomp_variant
        )
    if needs_tape:
        tape = plan.compile_tape()
    if engine == ENGINE_MEGAKERNEL and megakernel is None:
        from repro.ir.megakernel import compile_megakernel

        megakernel = compile_megakernel(tape)

    maurice = ModelOwner(compiled)
    diane = DataOwner(maurice.query_spec(), keys)
    sally = CopseServer(
        ctx,
        seccomp_variant=seccomp_variant,
        auto_bootstrap=auto_bootstrap,
        engine=engine,
        plan=plan,
        tape=tape,
        megakernel=megakernel,
    )

    if encrypted_model:
        enc_model = maurice.encrypt_model(ctx, keys.public)
    else:
        enc_model = maurice.plaintext_model(ctx)
    query = diane.prepare_query(ctx, features)
    encrypted_result = sally.classify(enc_model, query)
    result = diane.decrypt_result(ctx, encrypted_result)
    return SecureInferenceOutcome(result=result, context=ctx, model=enc_model)
