"""The COPSE compiler: decision forest -> vectorizable compiled model.

The paper's compiler (Section 5) is a *staging metacompiler*: stage one
translates a serialized forest into a C++ program embedding the
vectorizable structures, which then links against the runtime.  Here,
stage one produces a :class:`CompiledModel` — the same structures as
first-class objects — and :mod:`repro.core.codegen` optionally renders it
into a specialized Python module (the staging artifact).

A compiled model contains exactly the data of Section 4.2:

* the padded threshold vector as ``p`` MSB-first bit planes,
* the ``b x q`` reshuffling matrix in generalized-diagonal form,
* ``d`` level matrices (``labels x b``) in generalized-diagonal form,
* ``d`` level masks,
* the codebook mapping result slots to class labels (Section 7.2.2), and
* the model statistics (``b``, ``q``, ``K``, ``d``) that Section 7.1's
  leakage analysis tracks.

Compilation also selects encryption parameters for the model (the staging
specialization of Section 5): it checks the chosen parameters support the
circuit's multiplicative depth and vector widths, and can search the sweep
grid for the cheapest feasible set (the Table 5 experiment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import CompileError
from repro.core.analysis import ModelAnalysis
from repro.core.complexity import copse_total_depth
from repro.core.structures import (
    DiagonalMatrix,
    build_all_levels,
    build_all_masks,
    build_reshuffle_matrix,
    build_threshold_planes,
)
from repro.fhe.params import EncryptionParams
from repro.forest.forest import DecisionForest
from repro.forest.serialize import loads_forest
from repro.forest.validate import validate_forest


@dataclass
class CompiledModel:
    """A decision forest compiled to COPSE's vectorizable structures."""

    precision: int
    n_features: int
    branching: int  # b
    quantized_branching: int  # q
    max_multiplicity: int  # K
    max_depth: int  # d
    num_labels: int  # leaves (classification-bitvector width)
    label_names: List[str]
    codebook: List[int]  # result slot -> class-label index
    threshold_planes: np.ndarray  # (p, q) uint8, MSB first
    reshuffle: DiagonalMatrix  # b x q
    level_matrices: List[DiagonalMatrix]  # d entries, labels x b
    level_masks: List[np.ndarray]  # d entries, length labels
    source_forest: Optional[DecisionForest] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        p, q = self.threshold_planes.shape
        if p != self.precision or q != self.quantized_branching:
            raise CompileError(
                f"threshold planes {self.threshold_planes.shape} inconsistent "
                f"with precision {self.precision} and q {self.quantized_branching}"
            )
        if len(self.level_matrices) != self.max_depth:
            raise CompileError(
                f"{len(self.level_matrices)} level matrices for depth "
                f"{self.max_depth}"
            )
        if len(self.level_masks) != self.max_depth:
            raise CompileError(
                f"{len(self.level_masks)} level masks for depth {self.max_depth}"
            )

    @property
    def multiplicative_depth(self) -> int:
        """Depth of the full inference circuit (our implementation)."""
        return copse_total_depth(self.precision, self.max_depth)

    def required_width(self) -> int:
        """Widest packed vector the circuit manipulates."""
        return max(self.quantized_branching, self.num_labels, self.branching)

    def check_parameters(
        self, params: EncryptionParams, allow_bootstrapping: bool = False
    ) -> None:
        """Raise unless ``params`` can evaluate this model's circuit.

        With ``allow_bootstrapping`` the depth requirement drops to the
        deepest *segment* between bootstrap points (the comparison
        circuit on one side, the reshuffle/levels/accumulation pipeline
        on the other) instead of the whole circuit.
        """
        needed = self.multiplicative_depth
        if allow_bootstrapping:
            needed = self.segment_depth()
        if not params.supports_depth(needed):
            raise CompileError(
                f"model needs multiplicative depth {needed}"
                f"{' (with bootstrapping)' if allow_bootstrapping else ''} "
                f"but {params.describe()} supports only {params.depth_capacity}"
            )
        width = self.required_width()
        if not params.supports_width(width):
            raise CompileError(
                f"model needs {width} SIMD slots but {params.describe()} "
                f"provides {params.slot_count}"
            )

    def segment_depth(self) -> int:
        """Deepest circuit segment when bootstrapping after comparison."""
        import math

        from repro.core.seccomp import seccomp_depth

        log_d = int(math.ceil(math.log2(self.max_depth))) if self.max_depth > 1 else 0
        return max(seccomp_depth(self.precision), 2 + log_d)

    def fingerprint(self) -> str:
        """Stable identity of the compiled structures.

        Two models get the same fingerprint iff every packed structure
        (threshold planes, reshuffle/level diagonals, masks, codebook)
        is identical.  Runtime bundles and inference plans both carry
        it, so a cached plan refuses to execute against a different —
        even shape-identical — model.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is None:
            import hashlib

            digest = hashlib.sha256()
            digest.update(repr((
                self.precision,
                self.n_features,
                self.branching,
                self.quantized_branching,
                self.max_multiplicity,
                self.max_depth,
                self.num_labels,
                tuple(self.codebook),
            )).encode())
            digest.update(self.threshold_planes.tobytes())
            for matrix in [self.reshuffle] + list(self.level_matrices):
                for i in range(matrix.num_diagonals):
                    digest.update(
                        np.asarray(matrix.diagonal(i), dtype=np.uint8).tobytes()
                    )
            for mask in self.level_masks:
                digest.update(np.asarray(mask, dtype=np.uint8).tobytes())
            cached = digest.hexdigest()[:16]
            self._fingerprint = cached
        return cached

    def describe(self) -> str:
        return (
            f"compiled model: p={self.precision} b={self.branching} "
            f"q={self.quantized_branching} K={self.max_multiplicity} "
            f"d={self.max_depth} labels={self.num_labels} "
            f"depth={self.multiplicative_depth}"
        )


@dataclass
class CopseCompiler:
    """Forest-to-structures compiler front end.

    Parameters
    ----------
    precision:
        Fixed-point precision ``p`` (bits per threshold/feature).
    multiplicity_bound:
        Optional upper bound to reveal instead of the exact maximum
        multiplicity ``K`` (the Section 7.2.1 privacy knob).  Must be at
        least the true ``K``; extra slots are filled with sentinels and
        removed by the reshuffling matrix like any other padding.
    """

    precision: int = 8
    multiplicity_bound: Optional[int] = None

    def compile(self, forest: DecisionForest) -> CompiledModel:
        """Compile a forest into the vectorizable structures."""
        if self.precision < 1:
            raise CompileError(f"precision must be >= 1, got {self.precision}")
        validate_forest(forest, precision=self.precision)
        analysis = ModelAnalysis(forest)
        if self.multiplicity_bound is not None:
            true_k = analysis.max_multiplicity
            if self.multiplicity_bound < true_k:
                raise CompileError(
                    f"multiplicity bound {self.multiplicity_bound} is below "
                    f"the model's true maximum multiplicity {true_k}"
                )
            analysis = _BoundedAnalysis(forest, self.multiplicity_bound)

        return CompiledModel(
            precision=self.precision,
            n_features=forest.n_features,
            branching=analysis.branching,
            quantized_branching=analysis.quantized_branching,
            max_multiplicity=analysis.max_multiplicity,
            max_depth=analysis.max_depth,
            num_labels=analysis.num_labels,
            label_names=list(forest.label_names),
            codebook=analysis.codebook(),
            threshold_planes=build_threshold_planes(analysis, self.precision),
            reshuffle=build_reshuffle_matrix(analysis),
            level_matrices=build_all_levels(analysis),
            level_masks=build_all_masks(analysis),
            source_forest=forest,
        )

    def compile_serialized(self, text: str) -> CompiledModel:
        """Compile directly from the Section 5 text format."""
        return self.compile(loads_forest(text))

    def select_parameters(
        self,
        model: CompiledModel,
        grid: Optional[Sequence[EncryptionParams]] = None,
        min_security: int = 128,
    ) -> EncryptionParams:
        """Choose the cheapest feasible parameters for a compiled model.

        This is the staging compiler's parameter autotuning (Section 5 /
        Table 5): every grid point that meets the security floor and can
        evaluate the circuit is ranked by ciphertext size, and the
        cheapest wins.
        """
        from repro.fhe.params import parameter_grid

        candidates = list(grid) if grid is not None else list(parameter_grid())
        feasible = []
        for params in candidates:
            if params.security < min_security:
                continue
            try:
                model.check_parameters(params)
            except CompileError:
                continue
            feasible.append(params)
        if not feasible:
            raise CompileError(
                f"no feasible encryption parameters for {model.describe()} "
                f"at security >= {min_security}"
            )
        return min(feasible, key=lambda p: (p.size_factor, p.bits, p.columns))


class _BoundedAnalysis(ModelAnalysis):
    """Analysis that reports an inflated maximum multiplicity.

    Implements the Section 7.2.1 option of revealing only an upper bound
    on ``K``: the threshold vector is padded to ``bound`` per feature, so
    Diane learns ``bound`` rather than the true maximum multiplicity, at
    the cost of a slightly wider reshuffling matrix.
    """

    def __init__(self, forest: DecisionForest, bound: int):
        self._bound = bound
        super().__init__(forest)

    @property
    def max_multiplicity(self) -> int:
        return self._bound

    @property
    def quantized_branching(self) -> int:
        return self._bound * self.forest.n_features
