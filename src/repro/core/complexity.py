"""Analytic complexity of the COPSE circuit (Tables 1 and 2).

Two families of formulas live here:

* ``paper_*`` — the counts exactly as printed in the paper's Table 1/2,
  parameterized on branches ``b``, levels ``d``, precision ``p``, and
  quantized branching ``q``;
* ``impl_*`` — the counts of *this implementation's* circuit, which the
  tests assert against measured tracker counts operation-for-operation.
  They are parameterized on the SecComp variant (the paper-faithful
  Aloufi circuit, the default, or our optimized ablation) and on whether
  the model is encrypted (offloading) or plaintext (Maurice = Sally).

Differences between ``impl_`` and ``paper_`` (documented in DESIGN.md):
the Aloufi SecComp multiply count is ``p log p + 2p - 1`` versus the
paper's ``p log p + 3p - 2`` (our OR tree saves ``p - 1`` ANDs); our
balanced accumulation uses ``d - 1`` multiplies versus the paper's
``2d - 2``; zero-slot rotations are elided, so an ``n``-diagonal product
rotates ``n - 1`` times; and the Aloufi variant encrypts one all-ones
helper vector per inference.  The Table 1/2 benchmark prints paper and
implementation columns side by side.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.core.seccomp import (
    VARIANT_ALOUFI,
    VARIANT_OPTIMIZED,
    seccomp_add_count,
    seccomp_const_add_count,
    seccomp_depth,
    seccomp_multiply_count,
)

OpCounts = Dict[str, int]


def _ceil_log2(n: int) -> int:
    if n <= 1:
        return 0
    return int(math.ceil(math.log2(n)))


def copse_total_depth(
    precision: int,
    max_depth: int,
    variant: str = VARIANT_ALOUFI,
    encrypted_model: bool = True,
) -> int:
    """Multiplicative depth of our full inference circuit.

    SecComp contributes its variant depth; the reshuffle and per-level
    Halevi-Shoup products contribute 1 each *when the model is encrypted*
    (plaintext-model products are constant multiplies, which consume no
    level); balanced accumulation over ``d`` level results contributes
    ``ceil(log2 d)``.
    """
    matmul_depth = 2 if encrypted_model else 0
    return seccomp_depth(precision, variant) + matmul_depth + _ceil_log2(max_depth)


def paper_total_depth(precision: int, max_depth: int) -> int:
    """Table 2's depth formula: ``2 log p + log d + 2``."""
    return 2 * _ceil_log2(precision) + _ceil_log2(max_depth) + 2


# ---------------------------------------------------------------------------
# Paper formulas (Table 1)
# ---------------------------------------------------------------------------


def paper_comparison(p: int) -> OpCounts:
    """Table 1(a): secure comparison."""
    log_p = _ceil_log2(p)
    return {
        "add": 4 * p - 2,
        "const_add": p,
        "multiply": p * log_p + 3 * p - 2,
    }


def paper_single_level(b: int) -> OpCounts:
    """Table 1(b): processing one level (repeats d times)."""
    return {"rotate": b, "add": b + 1, "multiply": b}


def paper_accumulation(d: int) -> OpCounts:
    """Table 1(c): accumulating the level results."""
    return {"multiply": 2 * d - 2}


def paper_model_encryption(p: int, q: int, d: int, b: int) -> OpCounts:
    """Table 1(d): encrypting the model."""
    return {"encrypt": p + q + d * (b + 1)}


def paper_data_encryption() -> OpCounts:
    """Table 1(e): encrypting the data (one logical vector)."""
    return {"encrypt": 1}


def paper_total(p: int, q: int, d: int, b: int) -> OpCounts:
    """Table 2: total evaluation complexity."""
    log_p = _ceil_log2(p)
    return {
        "encrypt": 1 + p + q + d * (b + 1),
        "rotate": q + d * b,
        "add": 4 * p - 2 + q + d * (b + 1),
        "const_add": p,
        "multiply": p * log_p + 3 * p + q + d * b + 2 * d - 4,
    }


# ---------------------------------------------------------------------------
# Implementation formulas (asserted exactly by the tests)
# ---------------------------------------------------------------------------


def impl_comparison(
    p: int, variant: str = VARIANT_ALOUFI, encrypted_model: bool = True
) -> OpCounts:
    """Our comparison-phase counts, including the Aloufi helper encrypt."""
    if encrypted_model:
        counts: OpCounts = {
            "add": seccomp_add_count(p, variant),
            "const_add": seccomp_const_add_count(p, variant),
            "multiply": seccomp_multiply_count(p, variant),
        }
        if variant == VARIANT_ALOUFI:
            counts["encrypt"] = 1
        return counts
    return _plain_comparison(p, variant)


def _plain_comparison(p: int, variant: str) -> OpCounts:
    """Comparison counts when the thresholds stay in plaintext.

    Operations touching the (plaintext) thresholds become constant ops:
    ``diff`` is a constant add, the ``lt`` AND is a constant multiply.
    The eq NOTs, the scan, and the guard/combine stay ciphertext ops.
    """
    scan = _scan_multiplies_count(p)
    if variant == VARIANT_ALOUFI:
        if p == 1:
            return {"add": 1, "const_add": 2, "const_mult": 1, "encrypt": 1}
        uniform_scan = p * _ceil_log2(p)
        return {
            "add": p + 2 * (p - 1),  # NOT-x adds + OR-tree XORs
            "const_add": 2 * p,  # diffs + eq NOTs
            "const_mult": p,  # lt ANDs against plaintext y
            "multiply": uniform_scan + (p - 1) + (p - 1),  # scan+guards+ORs
            "encrypt": 1,  # the encrypted all-ones helper
        }
    if variant == VARIANT_OPTIMIZED:
        if p == 1:
            return {"const_add": 3, "const_mult": 1}
        return {
            "add": p - 1,  # final XOR combine
            "const_add": 3 * p,  # diffs + eq NOTs + lt combines
            "const_mult": p,  # x AND y_plain
            "multiply": scan + (p - 1),  # scan + guards
        }
    raise ValueError(f"unknown SecComp variant {variant!r}")


def _scan_multiplies_count(p: int) -> int:
    total = 0
    offset = 1
    while offset < p:
        total += p - offset
        offset *= 2
    return total


def impl_reshuffle(b: int, q: int, encrypted_model: bool = True) -> OpCounts:
    """Our reshuffle product: a ``b x q`` Halevi-Shoup multiply.

    ``q`` diagonals; the zero-slot rotation is elided; the rotated vector
    is truncated (free) because ``b <= q``.
    """
    mult_key = "multiply" if encrypted_model else "const_mult"
    return {"rotate": q - 1, mult_key: q, "add": q - 1}


def impl_single_level(b: int, encrypted_model: bool = True) -> OpCounts:
    """One level's product against pre-rotated branch vectors.

    The ``b`` rotations of the branch vector are shared across all levels
    (counted by :func:`impl_levels_shared`); each level still pays ``b``
    cyclic extensions (recorded as rotations), ``b`` multiplies, and ``b``
    additions (``b - 1`` to sum diagonals plus one mask XOR).
    """
    mult_key = "multiply" if encrypted_model else "const_mult"
    counts: OpCounts = {"rotate": b, mult_key: b, "add": b - 1}
    # The mask XOR is a ciphertext add when the model (and hence mask) is
    # encrypted, and a constant add otherwise.
    if encrypted_model:
        counts["add"] += 1
    else:
        counts["const_add"] = 1
    return counts


def impl_levels_shared(b: int) -> OpCounts:
    """Rotations of the branch vector shared by every level matrix."""
    return {"rotate": b - 1}


def impl_accumulation(d: int) -> OpCounts:
    """Balanced product tree over ``d`` level results."""
    return {"multiply": max(0, d - 1)}


def impl_model_encryption(p: int, q: int, d: int, b: int) -> OpCounts:
    """Encrypting thresholds (p), reshuffle diagonals (q), level matrices
    and masks (d * (b + 1)) — identical to the paper's Table 1(d)."""
    return {"encrypt": p + q + d * (b + 1)}


def impl_data_encryption(p: int) -> OpCounts:
    """One ciphertext per feature bit plane (the paper counts 1)."""
    return {"encrypt": p}


def merge_counts(*counts: OpCounts) -> OpCounts:
    """Sum several op-count dictionaries (zero entries dropped)."""
    total: OpCounts = {}
    for c in counts:
        for k, v in c.items():
            total[k] = total.get(k, 0) + v
    return {k: v for k, v in total.items() if v}


def impl_total(
    p: int,
    q: int,
    d: int,
    b: int,
    encrypted_model: bool = True,
    variant: str = VARIANT_ALOUFI,
) -> OpCounts:
    """Our total inference counts (excluding model/data encryption)."""
    parts = [
        impl_comparison(p, variant, encrypted_model),
        impl_reshuffle(b, q, encrypted_model),
        impl_levels_shared(b),
        impl_accumulation(d),
    ]
    for _ in range(d):
        parts.append(impl_single_level(b, encrypted_model))
    return merge_counts(*parts)


# ---------------------------------------------------------------------------
# Baseline (Aloufi et al.) analytic counts
# ---------------------------------------------------------------------------


def baseline_comparison(
    p: int, b: int, variant: str = VARIANT_ALOUFI, encrypted_model: bool = True
) -> OpCounts:
    """The baseline's comparison phase: one SecComp per branch.

    The encrypted all-ones helper (Aloufi variant) is encrypted once and
    reused across all ``b`` invocations.
    """
    one = impl_comparison(p, variant, encrypted_model)
    scaled = {k: v * b for k, v in one.items() if k != "encrypt"}
    if "encrypt" in one:
        scaled["encrypt"] = 1
    return scaled


def baseline_polynomial(
    path_lengths, false_edges: int, leaves: int, trees: int
) -> OpCounts:
    """The baseline's polynomial phase.

    ``path_lengths`` is the list of per-leaf path lengths across the whole
    forest; ``false_edges`` the total count of complemented factors;
    ``leaves`` the total leaf count; ``trees`` the tree count.  Per leaf:
    ``len(path) - 1`` pairwise multiplies, one constant multiply against
    the label bits; per complemented factor one constant add; per tree
    ``leaves_t - 1`` XOR sums.
    """
    lengths = list(path_lengths)
    return merge_counts(
        {"multiply": sum(max(0, n - 1) for n in lengths)},
        {"const_mult": leaves},
        {"const_add": false_edges},
        {"add": leaves - trees},
    )


# ---------------------------------------------------------------------------
# Bundled view
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CopseComplexity:
    """Analytic counts for one model's parameters."""

    precision: int
    branching: int
    quantized_branching: int
    max_depth: int
    encrypted_model: bool = True
    variant: str = VARIANT_ALOUFI

    def paper_counts(self) -> OpCounts:
        return paper_total(
            self.precision, self.quantized_branching, self.max_depth, self.branching
        )

    def impl_counts(self) -> OpCounts:
        return impl_total(
            self.precision,
            self.quantized_branching,
            self.max_depth,
            self.branching,
            self.encrypted_model,
            self.variant,
        )

    def impl_depth(self) -> int:
        return copse_total_depth(self.precision, self.max_depth, self.variant)

    def paper_depth(self) -> int:
        return paper_total_depth(self.precision, self.max_depth)
