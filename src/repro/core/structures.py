"""The vectorizable structures of Section 4.2.

* :func:`build_threshold_planes` — the padded threshold vector as ``p``
  MSB-first bit planes (Section 4.2.1);
* :class:`DiagonalMatrix` — a boolean matrix stored as its generalized
  diagonals, the representation the Halevi-Shoup product consumes
  (Section 4.1.2): the ``i``-th generalized diagonal of an ``m x n``
  matrix ``A`` is ``d_i[j] = A[j][(j + i) mod n]``, so there are ``n``
  diagonals of length ``m``;
* :func:`build_reshuffle_matrix` — the ``b x q`` matrix routing padded
  threshold slots to preorder branch positions and dropping sentinels
  (Section 4.2.2);
* :func:`build_level_matrix` / :func:`build_level_mask` — the per-level
  label-to-branch selection matrices and true/false-side masks
  (Sections 4.2.3 and 4.2.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import CompileError
from repro.core.analysis import ModelAnalysis
from repro.fhe.simd import to_bitplanes


@dataclass(frozen=True)
class DiagonalMatrix:
    """A boolean matrix in generalized-diagonal representation."""

    rows: int
    cols: int
    diagonals: np.ndarray  # shape (cols, rows), dtype uint8

    def __post_init__(self) -> None:
        if self.diagonals.shape != (self.cols, self.rows):
            raise CompileError(
                f"diagonal array shape {self.diagonals.shape} inconsistent "
                f"with a {self.rows}x{self.cols} matrix"
            )

    @staticmethod
    def from_dense(dense: np.ndarray) -> "DiagonalMatrix":
        """Convert a dense 0/1 matrix to generalized diagonals."""
        dense = np.asarray(dense, dtype=np.uint8)
        if dense.ndim != 2:
            raise CompileError(f"expected a matrix, got shape {dense.shape}")
        m, n = dense.shape
        diagonals = np.empty((n, m), dtype=np.uint8)
        rows = np.arange(m)
        for i in range(n):
            diagonals[i] = dense[rows, (rows + i) % n]
        return DiagonalMatrix(rows=m, cols=n, diagonals=diagonals)

    def to_dense(self) -> np.ndarray:
        """Reconstruct the dense matrix (inverse of :meth:`from_dense`)."""
        dense = np.zeros((self.rows, self.cols), dtype=np.uint8)
        rows = np.arange(self.rows)
        for i in range(self.cols):
            dense[rows, (rows + i) % self.cols] = self.diagonals[i]
        return dense

    def diagonal(self, i: int) -> np.ndarray:
        return self.diagonals[i]

    @property
    def num_diagonals(self) -> int:
        return self.cols

    def matvec_plain(self, v: np.ndarray) -> np.ndarray:
        """Reference (insecure) product over GF(2), used as a test oracle."""
        dense = self.to_dense()
        return (dense @ np.asarray(v, dtype=np.uint64)) % 2


# ---------------------------------------------------------------------------
# Structure builders
# ---------------------------------------------------------------------------


def build_threshold_planes(analysis: ModelAnalysis, precision: int) -> np.ndarray:
    """Padded threshold vector as a ``(p, q)`` MSB-first bit-plane array."""
    values = analysis.padded_thresholds()
    limit = 1 << precision
    for v in values:
        if v >= limit:
            raise CompileError(
                f"threshold {v} does not fit in {precision} unsigned bits; "
                f"increase the compiler precision"
            )
    return to_bitplanes(values, precision)


def build_reshuffle_dense(analysis: ModelAnalysis) -> np.ndarray:
    """Dense ``b x q`` reshuffling matrix (Section 4.2.2).

    Row ``i`` has its single 1 in the padded-threshold-vector column that
    carries branch ``i``'s comparison result; sentinel columns stay empty.
    """
    b = analysis.branching
    q = analysis.quantized_branching
    dense = np.zeros((b, q), dtype=np.uint8)
    for branch_idx in range(b):
        dense[branch_idx, analysis.threshold_slot(branch_idx)] = 1
    return dense


def build_reshuffle_matrix(analysis: ModelAnalysis) -> DiagonalMatrix:
    return DiagonalMatrix.from_dense(build_reshuffle_dense(analysis))


def build_level_dense(analysis: ModelAnalysis, level: int) -> np.ndarray:
    """Dense ``labels x b`` level matrix (Section 4.2.3).

    Row ``i`` selects the branch controlling label ``i`` at this level;
    each row has exactly one 1, and column ``j``'s popcount equals the
    width of branch ``j`` at its own level.
    """
    num_labels = analysis.num_labels
    dense = np.zeros((num_labels, analysis.branching), dtype=np.uint8)
    for label_idx, selected in enumerate(analysis.selected_branches(level)):
        dense[label_idx, selected.branch_index] = 1
    return dense


def build_level_matrix(analysis: ModelAnalysis, level: int) -> DiagonalMatrix:
    return DiagonalMatrix.from_dense(build_level_dense(analysis, level))


def build_level_mask(analysis: ModelAnalysis, level: int) -> np.ndarray:
    """Level mask (Section 4.2.4): 0 for labels on the true path, 1 on the
    false path, so ``decision XOR mask`` is 1 exactly when the label is
    still feasible given that level's decision."""
    selections = analysis.selected_branches(level)
    return np.array(
        [0 if sel.under_true else 1 for sel in selections], dtype=np.uint8
    )


def build_all_levels(analysis: ModelAnalysis) -> List[DiagonalMatrix]:
    """Level matrices for levels ``1..d`` (index 0 holds level 1)."""
    return [
        build_level_matrix(analysis, level)
        for level in range(1, analysis.max_depth + 1)
    ]


def build_all_masks(analysis: ModelAnalysis) -> List[np.ndarray]:
    """Level masks for levels ``1..d``."""
    return [
        build_level_mask(analysis, level)
        for level in range(1, analysis.max_depth + 1)
    ]
