"""Model analysis: the Section 4.1.1 structure extraction.

Everything the compiler needs to build the vectorizable structures comes
out of one pass over the forest:

* the forest-wide *preorder enumeration* of branches and of labels;
* the *level* of every branch (branches on the longest branch-to-leaf
  path, inclusive; labels are level 0);
* the *threshold-vector slot assignment*: thresholds grouped by feature,
  each feature's group padded with sentinels to the maximum multiplicity
  ``K``, giving the quantized width ``q = K * n_features``;
* for every forest level ``1..d`` and every label, the *selected branch*
  controlling that label at that level, and which side (true/false) the
  label lies on — the data behind level matrices and masks (Section 4.2.3
  and 4.2.4).

Branch selection rule (Section 4.2.3): the unique ancestor branch at
exactly that level when one exists; otherwise the highest ancestor branch
*not exceeding* the level; otherwise (a label so shallow that even its
parent is above the level... impossible, but also when every ancestor sits
above the level) the lowest ancestor — the paper notes the choice is
arbitrary as long as every branch appears in at least one level, which the
exact-match case guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import CompileError
from repro.forest.forest import DecisionForest
from repro.forest.node import Branch, Leaf, Node

#: Sentinel threshold value used to pad feature groups (Section 4.2.1).
#: The exact value is irrelevant — sentinel comparison results are removed
#: by the reshuffling matrix — and 0 makes ``x < 0`` identically false.
SENTINEL_THRESHOLD = 0


@dataclass(frozen=True)
class SelectedBranch:
    """The branch controlling one label at one level."""

    branch_index: int  # forest-wide preorder index
    under_true: bool  # whether the label lies under the branch's true child


class ModelAnalysis:
    """One-pass structural analysis of a decision forest."""

    def __init__(self, forest: DecisionForest):
        self.forest = forest
        self._branches: List[Branch] = forest.all_branches()
        self._leaves: List[Leaf] = forest.all_leaves()
        self._branch_index: Dict[int, int] = {
            id(b): i for i, b in enumerate(self._branches)
        }
        self._leaf_index: Dict[int, int] = {
            id(l): i for i, l in enumerate(self._leaves)
        }
        self._levels: Dict[int, int] = {}
        for tree in forest.trees:
            self._compute_levels(tree.root)
        self._ancestors = self._compute_ancestors()
        self._slot_of_branch = self._assign_threshold_slots()

    # ------------------------------------------------------------------
    # Basic statistics
    # ------------------------------------------------------------------

    @property
    def branching(self) -> int:
        """``b`` — total branch count."""
        return len(self._branches)

    @property
    def num_labels(self) -> int:
        """Total leaf count: the width of the classification bitvector."""
        return len(self._leaves)

    @property
    def max_multiplicity(self) -> int:
        """``K``."""
        return self.forest.max_multiplicity

    @property
    def quantized_branching(self) -> int:
        """``q = K * n_features``."""
        return self.forest.quantized_branching

    @property
    def max_depth(self) -> int:
        """``d`` — maximum level over the forest."""
        return max(self.branch_level(i) for i in range(self.branching))

    def branch_level(self, branch_index: int) -> int:
        """Level of a branch by forest-wide preorder index."""
        return self._levels[id(self._branches[branch_index])]

    def branch(self, branch_index: int) -> Branch:
        return self._branches[branch_index]

    def leaf_label(self, leaf_index: int) -> int:
        """Class-label index of a leaf by forest-wide preorder index."""
        return self._leaves[leaf_index].label_index

    def codebook(self) -> List[int]:
        """Map from result-bitvector slot to class-label index."""
        return [leaf.label_index for leaf in self._leaves]

    def branch_width(self, branch_index: int) -> int:
        """Width = size of the branch's downstream label set."""
        return len(self._downstream(branch_index))

    # ------------------------------------------------------------------
    # Threshold-vector slot assignment (Section 4.2.1)
    # ------------------------------------------------------------------

    def _assign_threshold_slots(self) -> Dict[int, int]:
        """Grouped-by-feature slot for every branch index.

        Feature ``f`` owns slots ``[f*K, (f+1)*K)``; its branches fill the
        group in preorder; remaining slots hold sentinels.
        """
        K = self.max_multiplicity
        cursor: Dict[int, int] = {f: 0 for f in range(self.forest.n_features)}
        slots: Dict[int, int] = {}
        for i, branch in enumerate(self._branches):
            f = branch.feature
            position = cursor[f]
            if position >= K:
                raise CompileError(
                    f"feature {f} appears more than K={K} times; "
                    f"multiplicity accounting is inconsistent"
                )
            slots[i] = f * K + position
            cursor[f] = position + 1
        return slots

    def threshold_slot(self, branch_index: int) -> int:
        """Padded-threshold-vector slot holding this branch's threshold."""
        return self._slot_of_branch[branch_index]

    def padded_thresholds(self) -> List[int]:
        """The padded threshold vector (length ``q``), sentinel-filled."""
        q = self.quantized_branching
        values = [SENTINEL_THRESHOLD] * q
        for i, branch in enumerate(self._branches):
            values[self._slot_of_branch[i]] = branch.threshold
        return values

    def replicated_features(self, features: Sequence[int]) -> List[int]:
        """Diane's Step 0: replicate each feature ``K`` times."""
        if len(features) != self.forest.n_features:
            raise CompileError(
                f"expected {self.forest.n_features} features, got {len(features)}"
            )
        K = self.max_multiplicity
        out: List[int] = []
        for value in features:
            out.extend([int(value)] * K)
        return out

    # ------------------------------------------------------------------
    # Level selection (Sections 4.2.3, 4.2.4)
    # ------------------------------------------------------------------

    def selected_branches(self, level: int) -> List[SelectedBranch]:
        """For every label, the branch controlling it at ``level``."""
        if not 1 <= level <= self.max_depth:
            raise CompileError(
                f"level {level} outside the forest's range 1..{self.max_depth}"
            )
        out: List[SelectedBranch] = []
        for leaf_idx in range(self.num_labels):
            out.append(self._select_for_label(leaf_idx, level))
        return out

    def _select_for_label(self, leaf_idx: int, level: int) -> SelectedBranch:
        ancestors = self._ancestors[leaf_idx]  # root -> parent order
        exact = None
        below = None  # highest level strictly less than `level`
        above = None  # lowest level strictly greater than `level`
        for branch_idx, under_true in ancestors:
            lvl = self.branch_level(branch_idx)
            if lvl == level:
                exact = SelectedBranch(branch_idx, under_true)
            elif lvl < level:
                if below is None or lvl > self.branch_level(below.branch_index):
                    below = SelectedBranch(branch_idx, under_true)
            else:
                if above is None or lvl < self.branch_level(above.branch_index):
                    above = SelectedBranch(branch_idx, under_true)
        chosen = exact or below or above
        if chosen is None:  # pragma: no cover - every leaf has >= 1 ancestor
            raise CompileError(f"label {leaf_idx} has no ancestor branches")
        return chosen

    # ------------------------------------------------------------------
    # Internal traversals
    # ------------------------------------------------------------------

    def _compute_levels(self, node: Node) -> int:
        if isinstance(node, Leaf):
            self._levels[id(node)] = 0
            return 0
        t = self._compute_levels(node.true_child)
        f = self._compute_levels(node.false_child)
        level = 1 + max(t, f)
        self._levels[id(node)] = level
        return level

    def _compute_ancestors(self) -> List[List[Tuple[int, bool]]]:
        """For every leaf, its ancestor branches with side flags."""
        ancestors: List[List[Tuple[int, bool]]] = [
            [] for _ in range(len(self._leaves))
        ]

        def walk(node: Node, path: List[Tuple[int, bool]]) -> None:
            if isinstance(node, Leaf):
                ancestors[self._leaf_index[id(node)]] = list(path)
                return
            branch_idx = self._branch_index[id(node)]
            path.append((branch_idx, True))
            walk(node.true_child, path)
            path.pop()
            path.append((branch_idx, False))
            walk(node.false_child, path)
            path.pop()

        for tree in self.forest.trees:
            walk(tree.root, [])
        return ancestors

    def _downstream(self, branch_index: int) -> List[int]:
        branch_id_target = branch_index
        out: List[int] = []
        for leaf_idx, ancestors in enumerate(self._ancestors):
            if any(bi == branch_id_target for bi, _ in ancestors):
                out.append(leaf_idx)
        return out
