"""Fixed-point codec: real-valued data -> the unsigned integer domain.

Section 4.1.2: "Rather than try to securely perform bit operations on
floating point numbers, we instead represent decision thresholds as
fixed-point values with the precision p known at compile-time."

The codec maps a real interval ``[lo, hi]`` affinely onto ``[0, 2^p - 1]``.
Order is preserved, so a threshold comparison in the fixed-point domain
agrees with the real-valued comparison up to quantization — and because
*both* the model thresholds and the query features pass through the same
codec, the plaintext oracle and the secure evaluation agree exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import PrecisionError


@dataclass(frozen=True)
class FixedPointCodec:
    """Affine quantizer onto ``p``-bit unsigned fixed point."""

    precision: int
    lo: float = 0.0
    hi: float = 255.0

    def __post_init__(self) -> None:
        if self.precision < 1 or self.precision > 62:
            raise PrecisionError(
                f"precision must be between 1 and 62 bits, got {self.precision}"
            )
        if not self.hi > self.lo:
            raise PrecisionError(
                f"invalid codec range [{self.lo}, {self.hi}]"
            )

    @property
    def max_code(self) -> int:
        return (1 << self.precision) - 1

    def encode(self, value: float) -> int:
        """Quantize one real value; raise if it falls outside the range."""
        if not self.lo <= value <= self.hi:
            raise PrecisionError(
                f"value {value} outside the codec range [{self.lo}, {self.hi}]"
            )
        scaled = (value - self.lo) / (self.hi - self.lo) * self.max_code
        return int(round(scaled))

    def encode_many(self, values: Sequence[float]) -> List[int]:
        return [self.encode(v) for v in values]

    def decode(self, code: int) -> float:
        """Map a fixed-point code back to the midpoint real value."""
        if not 0 <= code <= self.max_code:
            raise PrecisionError(
                f"code {code} outside [0, {self.max_code}] for "
                f"{self.precision}-bit fixed point"
            )
        return self.lo + code / self.max_code * (self.hi - self.lo)

    def check_code(self, code: int) -> int:
        """Validate an already-quantized value fits the precision."""
        if not 0 <= code <= self.max_code:
            raise PrecisionError(
                f"fixed-point value {code} does not fit in "
                f"{self.precision} unsigned bits"
            )
        return int(code)

    @staticmethod
    def for_data(precision: int, *columns: Sequence[float]) -> "FixedPointCodec":
        """Build a codec spanning the range of the provided data columns."""
        values = np.concatenate([np.asarray(c, dtype=float) for c in columns])
        lo = float(values.min())
        hi = float(values.max())
        if hi <= lo:
            hi = lo + 1.0
        return FixedPointCodec(precision=precision, lo=lo, hi=hi)
