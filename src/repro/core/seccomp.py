"""SecComp: packed lexicographic comparison (Section 4.1.2).

Compares two fixed-point vectors held in the "transposed" bit-plane
representation: operand ``x`` (Diane's replicated features) is ``p``
ciphertexts, operand ``y`` (the padded thresholds) is ``p`` plaintext or
ciphertext vectors, each of width ``k`` (one slot per padded branch).
The output is a single packed vector whose slot ``j`` holds the decision
bit ``x[j] < y[j]``.

Both circuits implement the standard lexicographic comparator

    lt = OR_i ( NOT x_i AND y_i ) AND PROD_{j < i} eq_j
    eq_j = NOT (x_j XOR y_j)

with Hillis-Steele prefix products (depth ``log p`` instead of ``p``).
Two variants are provided:

* ``VARIANT_ALOUFI`` (default) — faithful to Aloufi et al.'s circuit as
  the paper counts it (Table 1a): ``NOT x`` is a homomorphic addition
  with an *encrypted* all-ones vector (their multi-key setting cannot
  fold constants), the prefix scan runs *uniform* rounds (every round
  multiplies all ``p`` planes, identity-multiplying the low positions by
  the ones vector — the natural packed-SIMD formulation), and the final
  combine is a genuine OR tree (``a OR b = a XOR b XOR ab``).  Counts:

      Add        = 4p - 2                    (diffs, NOTs, OR-tree XORs)
      Const Add  = p                         (the eq NOTs)
      Multiply   = p ceil(log2 p) + 3p - 2   (scan + lts + guards + ORs)
      depth      = 2 ceil(log2 p) + 1

  matching the paper's Table 1a exactly.

* ``VARIANT_OPTIMIZED`` — our cheaper rewrite used as an ablation:
  ``NOT x AND y`` becomes ``y XOR (x AND y)`` (no encrypted ones needed)
  and the OR collapses to XOR because the first-difference terms are
  mutually exclusive:

      Add        = 3p - 1
      Const Add  = p
      Multiply   = p log2 p + p
      depth      = ceil(log2 p) + 1

The Aloufi variant needs an encrypted all-ones vector (``not_one``);
callers hold the public key and pass it in (the runtimes encrypt it once
and reuse it across invocations).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.errors import CompileError
from repro.fhe.ciphertext import Ciphertext
from repro.fhe.context import FheContext, Vector

VARIANT_ALOUFI = "aloufi"
VARIANT_OPTIMIZED = "optimized"
SECCOMP_VARIANTS = (VARIANT_ALOUFI, VARIANT_OPTIMIZED)


def secure_compare(
    ctx: FheContext,
    x_planes: Sequence[Ciphertext],
    y_planes: Sequence[Vector],
    variant: str = VARIANT_OPTIMIZED,
    not_one: Optional[Ciphertext] = None,
) -> Ciphertext:
    """Packed ``x < y`` over MSB-first bit planes.

    ``x_planes`` must be ciphertexts (the features are always encrypted);
    ``y_planes`` may be plaintext (Maurice = Sally) or ciphertext.  For
    ``VARIANT_ALOUFI``, ``not_one`` must be an encrypted all-ones vector
    of the operand width.
    """
    p = len(x_planes)
    if p == 0 or len(y_planes) != p:
        raise CompileError(
            f"operands disagree on precision: {p} vs {len(y_planes)} planes"
        )
    width = x_planes[0].length
    for plane in list(x_planes) + list(y_planes):
        if len(plane) != width:
            raise CompileError(
                f"all bit planes must share width {width}, got {len(plane)}"
            )
    if variant == VARIANT_ALOUFI:
        if not_one is None:
            raise CompileError(
                "the Aloufi SecComp variant needs an encrypted all-ones "
                "vector (not_one); encrypt ctx.ones(width) under the "
                "query key and pass it in"
            )
        if not_one.length != width:
            raise CompileError(
                f"not_one has width {not_one.length}, operands have {width}"
            )
        return _compare_aloufi(ctx, x_planes, y_planes, not_one)
    if variant == VARIANT_OPTIMIZED:
        return _compare_optimized(ctx, x_planes, y_planes)
    raise CompileError(
        f"unknown SecComp variant {variant!r}; choose from {SECCOMP_VARIANTS}"
    )


def _compare_aloufi(
    ctx: FheContext,
    x_planes: Sequence[Ciphertext],
    y_planes: Sequence[Vector],
    not_one: Ciphertext,
) -> Ciphertext:
    p = len(x_planes)
    # diff_i = x_i XOR y_i ; eq_i = NOT diff_i (plaintext NOT)
    diffs = [ctx.xor_any(x_planes[i], y_planes[i]) for i in range(p)]
    eqs = [ctx.negate(d) for d in diffs]
    # NOT x_i via the encrypted ones vector (multi-key style), then AND y_i.
    not_xs = [ctx.add(x_planes[i], not_one) for i in range(p)]
    lts = [ctx.and_any(not_xs[i], y_planes[i]) for i in range(p)]

    prefixes = _uniform_prefix_products(ctx, eqs, not_one)
    terms: List[Vector] = [lts[0]]
    for i in range(1, p):
        terms.append(ctx.and_any(lts[i], prefixes[i]))

    result = _or_tree(ctx, terms)
    if not isinstance(result, Ciphertext):  # pragma: no cover - x is cipher
        raise CompileError("comparison of ciphertext features must be encrypted")
    return result


def _compare_optimized(
    ctx: FheContext,
    x_planes: Sequence[Ciphertext],
    y_planes: Sequence[Vector],
) -> Ciphertext:
    p = len(x_planes)
    diffs = [ctx.xor_any(x_planes[i], y_planes[i]) for i in range(p)]
    eqs = [ctx.negate(d) for d in diffs]
    # lt_i = (NOT x_i) AND y_i = y_i XOR (x_i AND y_i)
    lts = [
        ctx.xor_any(y_planes[i], ctx.and_any(x_planes[i], y_planes[i]))
        for i in range(p)
    ]
    prefixes = _exclusive_prefix_products(ctx, eqs)
    terms: List[Vector] = [lts[0]]
    for i in range(1, p):
        terms.append(ctx.and_any(lts[i], prefixes[i]))
    # The terms are mutually exclusive (only the first differing bit can
    # fire), so OR degenerates to XOR.
    result = ctx.xor_all(terms)
    if not isinstance(result, Ciphertext):  # pragma: no cover - x is cipher
        raise CompileError("comparison of ciphertext features must be encrypted")
    return result


def _exclusive_prefix_products(
    ctx: FheContext, eqs: Sequence[Vector]
) -> List[Vector]:
    """``prefix[i] = eq_0 AND ... AND eq_{i-1}`` via a Hillis-Steele scan.

    ``prefix[0]`` is never used by the callers (the first term has no
    guard); the inclusive scan is shifted by one position.  This is the
    triangle-optimized scan of the optimized variant: positions below the
    round's offset are copied, not multiplied.
    """
    p = len(eqs)
    scan: List[Vector] = list(eqs)
    offset = 1
    while offset < p:
        nxt = list(scan)
        for i in range(offset, p):
            nxt[i] = ctx.and_any(scan[i], scan[i - offset])
        scan = nxt
        offset *= 2
    return [scan[0]] + scan[: p - 1]


def _uniform_prefix_products(
    ctx: FheContext, eqs: Sequence[Vector], not_one: Ciphertext
) -> List[Vector]:
    """Inclusive prefix scan with uniform rounds (the Aloufi formulation).

    Every round multiplies all ``p`` positions; positions whose shifted
    partner falls off the front are multiplied by the encrypted all-ones
    vector instead of being copied.  This is how the scan looks when each
    round is one packed SIMD step, and it is what makes the multiply
    count ``p ceil(log2 p)`` rather than ``p log2 p - p + 1``.
    """
    p = len(eqs)
    scan: List[Vector] = list(eqs)
    offset = 1
    while offset < p:
        nxt: List[Vector] = []
        for i in range(p):
            partner = scan[i - offset] if i >= offset else not_one
            nxt.append(ctx.and_any(scan[i], partner))
        scan = nxt
        offset *= 2
    return [scan[0]] + scan[: p - 1]


def _or_tree(ctx: FheContext, terms: Sequence[Vector]) -> Vector:
    """Balanced OR: ``a OR b = a XOR b XOR (a AND b)``, depth log n."""
    layer = list(terms)
    while len(layer) > 1:
        nxt: List[Vector] = []
        for i in range(0, len(layer) - 1, 2):
            a, b = layer[i], layer[i + 1]
            nxt.append(ctx.xor_any(ctx.xor_any(a, b), ctx.and_any(a, b)))
        if len(layer) % 2 == 1:
            nxt.append(layer[-1])
        layer = nxt
    return layer[0]


# ---------------------------------------------------------------------------
# Analytic counts (asserted exactly by the tests; see complexity.py)
# ---------------------------------------------------------------------------


def _scan_offsets(p: int) -> List[int]:
    offsets = []
    offset = 1
    while offset < p:
        offsets.append(offset)
        offset *= 2
    return offsets


def _scan_multiplies(p: int) -> int:
    return sum(p - offset for offset in _scan_offsets(p))


def _or_tree_internal_nodes(p: int) -> int:
    """Number of pairwise ORs in a balanced OR over ``p`` terms."""
    return max(0, p - 1)


def seccomp_multiply_count(p: int, variant: str = VARIANT_ALOUFI) -> int:
    """Packed multiplies per SecComp invocation for precision ``p``."""
    if p <= 0:
        raise CompileError(f"precision must be positive, got {p}")
    if p == 1:
        return 1  # the single lt term in both variants
    if variant == VARIANT_ALOUFI:
        # Uniform scan (p per round) + lts + guards + OR-tree ANDs; for a
        # power-of-two p this is the paper's p log p + 3p - 2 exactly.
        rounds = len(_scan_offsets(p))
        return p * rounds + p + (p - 1) + _or_tree_internal_nodes(p)
    if variant == VARIANT_OPTIMIZED:
        return _scan_multiplies(p) + p + (p - 1)  # scan + lts + guards
    raise CompileError(f"unknown SecComp variant {variant!r}")


def seccomp_add_count(p: int, variant: str = VARIANT_ALOUFI) -> int:
    """Packed additions per SecComp invocation for precision ``p``."""
    if variant == VARIANT_ALOUFI:
        if p == 1:
            return 2  # diff, NOT x
        return 4 * p - 2  # p diffs, p NOTs, 2(p-1) OR-tree XORs
    if variant == VARIANT_OPTIMIZED:
        if p == 1:
            return 2  # diff, lt combine
        return 3 * p - 1  # p diffs, p lt combines, p-1 final XORs
    raise CompileError(f"unknown SecComp variant {variant!r}")


def seccomp_const_add_count(p: int, variant: str = VARIANT_ALOUFI) -> int:
    """Constant additions (the eq NOTs) per invocation."""
    return p


def seccomp_depth(p: int, variant: str = VARIANT_ALOUFI) -> int:
    """Multiplicative depth of one SecComp invocation."""
    if p == 1:
        return 1
    log_p = int(math.ceil(math.log2(p)))
    if variant == VARIANT_ALOUFI:
        return 2 * log_p + 1  # scan + guard + OR tree
    if variant == VARIANT_OPTIMIZED:
        return log_p + 1
    raise CompileError(f"unknown SecComp variant {variant!r}")
